//! Reference MIMD execution: every processor has its own program counter
//! and walks the MIMD state graph directly, in lock-step cycle simulation.
//!
//! This is the *golden semantics* the meta-state-converted SIMD program
//! must reproduce (§1.2: the meta-state automaton "is a SIMD program that
//! preserves the relative timing properties of MIMD execution"), and the
//! idealized-MIMD timing baseline for the experiments.

use msc_ir::{CostModel, MimdGraph, Op, Space, StateId, Terminator};
use std::fmt;

/// Per-processor execution state.
#[derive(Debug, Clone, PartialEq)]
enum Proc {
    /// Executing op `op_idx` of `state`, with `remaining` cycles to go on
    /// it (0 remaining = about to apply its effect).
    Running {
        state: StateId,
        op_idx: usize,
        remaining: u32,
    },
    /// Reached a barrier-entry state; waiting for everyone (§2.6).
    AtBarrier { state: StateId },
    /// Process ended.
    Halted,
    /// Never started / returned to the pool.
    Idle,
}

/// Run-time failures of the reference simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum MimdError {
    /// Operand stack underflow.
    StackUnderflow {
        /// The processor.
        proc: usize,
    },
    /// Return-site stack underflow.
    RetStackUnderflow {
        /// The processor.
        proc: usize,
    },
    /// Multiway-branch selector out of range.
    BadSelector {
        /// The processor.
        proc: usize,
        /// The selector.
        selector: i64,
    },
    /// No idle processor available for a `spawn`.
    SpawnOverflow {
        /// The spawning processor.
        proc: usize,
    },
    /// Cycle budget exceeded.
    Watchdog {
        /// The limit.
        max_cycles: u64,
    },
}

impl fmt::Display for MimdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MimdError::StackUnderflow { proc } => write!(f, "stack underflow on proc {proc}"),
            MimdError::RetStackUnderflow { proc } => {
                write!(f, "return stack underflow on proc {proc}")
            }
            MimdError::BadSelector { proc, selector } => {
                write!(f, "bad return selector {selector} on proc {proc}")
            }
            MimdError::SpawnOverflow { proc } => {
                write!(f, "no idle processor for spawn from proc {proc}")
            }
            MimdError::Watchdog { max_cycles } => {
                write!(f, "exceeded {max_cycles} cycles")
            }
        }
    }
}

impl std::error::Error for MimdError {}

/// Metrics from a reference run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MimdMetrics {
    /// Wall-clock cycles until the last processor finished.
    pub cycles: u64,
    /// Σ over processors of cycles spent actually executing (not waiting
    /// at barriers, not idle, not halted).
    pub busy_cycles: u64,
    /// Σ over processors of cycles spent waiting at barriers.
    pub barrier_wait_cycles: u64,
}

impl MimdMetrics {
    /// Busy fraction of the processors that were ever started.
    pub fn utilization(&self, started: usize) -> f64 {
        if self.cycles == 0 || started == 0 {
            return 0.0;
        }
        self.busy_cycles as f64 / (self.cycles as f64 * started as f64)
    }
}

/// Configuration for a reference run.
#[derive(Debug, Clone)]
pub struct MimdConfig {
    /// Processor count.
    pub n_proc: usize,
    /// How many start in the graph's start state; the rest are idle.
    pub active_at_start: usize,
    /// Cycle budget.
    pub max_cycles: u64,
    /// Cost model.
    pub costs: CostModel,
}

impl MimdConfig {
    /// All processors start live (SPMD).
    pub fn spmd(n_proc: usize) -> Self {
        MimdConfig {
            n_proc,
            active_at_start: n_proc,
            max_cycles: 100_000_000,
            costs: CostModel::default(),
        }
    }
}

/// The reference multi-processor machine.
#[derive(Debug, Clone)]
pub struct MimdReference {
    /// Processor count.
    pub n_proc: usize,
    /// Per-processor private memory.
    pub poly: Vec<Vec<i64>>,
    /// Shared memory (kept as one copy; `mono` stores update it).
    pub mono: Vec<i64>,
    stack: Vec<Vec<i64>>,
    ret_stack: Vec<Vec<i64>>,
    procs: Vec<Proc>,
    /// Metrics of the last run.
    pub metrics: MimdMetrics,
}

impl MimdReference {
    /// Build a machine sized for `graph`'s memory needs.
    pub fn new(poly_words: u32, mono_words: u32, config: &MimdConfig) -> Self {
        let n = config.n_proc;
        MimdReference {
            n_proc: n,
            poly: vec![vec![0; poly_words as usize]; n],
            mono: vec![0; mono_words as usize],
            stack: vec![Vec::new(); n],
            ret_stack: vec![Vec::new(); n],
            procs: vec![Proc::Idle; n],
            metrics: MimdMetrics::default(),
        }
    }

    /// Read processor `p`'s view of `addr`.
    pub fn poly_at(&self, p: usize, addr: msc_ir::Addr) -> i64 {
        match addr.space {
            Space::Poly => self.poly[p][addr.index as usize],
            Space::Mono => self.mono[addr.index as usize],
        }
    }

    /// Run `graph` to completion.
    pub fn run(
        &mut self,
        graph: &MimdGraph,
        config: &MimdConfig,
    ) -> Result<MimdMetrics, MimdError> {
        let costs = &config.costs;
        for p in 0..config.active_at_start.min(self.n_proc) {
            self.procs[p] = self.enter_state(graph, graph.start);
        }
        loop {
            // Termination: nobody running or waiting.
            let any_active = self
                .procs
                .iter()
                .any(|p| matches!(p, Proc::Running { .. } | Proc::AtBarrier { .. }));
            if !any_active {
                return Ok(self.metrics);
            }
            if self.metrics.cycles > config.max_cycles {
                return Err(MimdError::Watchdog {
                    max_cycles: config.max_cycles,
                });
            }

            // Barrier release: every non-halted, non-idle processor waiting.
            let all_at_barrier = self
                .procs
                .iter()
                .filter(|p| matches!(p, Proc::Running { .. } | Proc::AtBarrier { .. }))
                .all(|p| matches!(p, Proc::AtBarrier { .. }));
            if all_at_barrier {
                for i in 0..self.n_proc {
                    if let Proc::AtBarrier { state } = self.procs[i] {
                        self.procs[i] = self.resume_barrier(graph, state);
                    }
                }
                continue;
            }

            // One lock-step cycle.
            self.metrics.cycles += 1;
            for p in 0..self.n_proc {
                match &mut self.procs[p] {
                    Proc::Idle | Proc::Halted => {}
                    Proc::AtBarrier { .. } => {
                        self.metrics.barrier_wait_cycles += 1;
                    }
                    Proc::Running { remaining, .. } => {
                        self.metrics.busy_cycles += 1;
                        if *remaining > 1 {
                            *remaining -= 1;
                        } else {
                            self.complete_op(graph, p, costs)?;
                        }
                    }
                }
            }
        }
    }

    /// Entering `state`: either start its first op, or (empty block) go
    /// straight to its terminator. Barrier-entry states park the process.
    fn enter_state(&mut self, graph: &MimdGraph, state: StateId) -> Proc {
        if graph.state(state).barrier {
            return Proc::AtBarrier { state };
        }
        self.resume_barrier(graph, state)
    }

    /// Start executing `state`'s body (used both on normal entry and on
    /// barrier release).
    fn resume_barrier(&mut self, _graph: &MimdGraph, state: StateId) -> Proc {
        Proc::Running {
            state,
            op_idx: 0,
            remaining: 0,
        }
    }

    /// The current op of processor `p` finished its cycles: apply its
    /// effect and advance (possibly through the terminator).
    fn complete_op(
        &mut self,
        graph: &MimdGraph,
        p: usize,
        costs: &CostModel,
    ) -> Result<(), MimdError> {
        let Proc::Running {
            state,
            op_idx,
            remaining,
        } = self.procs[p].clone()
        else {
            unreachable!()
        };
        let st = graph.state(state);
        if remaining == 0 {
            // Starting a new op (or the terminator): charge its time.
            if op_idx < st.ops.len() {
                let cost = costs.op_cost(&st.ops[op_idx]).max(1);
                if cost > 1 {
                    self.procs[p] = Proc::Running {
                        state,
                        op_idx,
                        remaining: cost - 1,
                    };
                    return Ok(());
                }
            }
            // cost 1 (or terminator): fall through to apply now.
        }
        if op_idx < st.ops.len() {
            self.apply_op(&st.ops[op_idx].clone(), p)?;
            self.procs[p] = Proc::Running {
                state,
                op_idx: op_idx + 1,
                remaining: 0,
            };
            // If that was the last op, the terminator runs next cycle.
            return Ok(());
        }
        // Terminator.
        match st.term.clone() {
            Terminator::Halt => {
                self.procs[p] = Proc::Halted;
                self.stack[p].clear();
                self.ret_stack[p].clear();
            }
            Terminator::Jump(next) => {
                self.procs[p] = self.enter_state(graph, next);
            }
            Terminator::Branch { t, f } => {
                let c = self.pop(p)?;
                self.procs[p] = self.enter_state(graph, if c != 0 { t } else { f });
            }
            Terminator::Multi(targets) => {
                let sel = self.pop(p)?;
                let t = *targets.get(sel as usize).ok_or(MimdError::BadSelector {
                    proc: p,
                    selector: sel,
                })?;
                self.procs[p] = self.enter_state(graph, t);
            }
            Terminator::Spawn { child, next } => {
                let idle = (0..self.n_proc)
                    .find(|&q| matches!(self.procs[q], Proc::Idle))
                    .ok_or(MimdError::SpawnOverflow { proc: p })?;
                self.poly[idle] = self.poly[p].clone();
                self.stack[idle].clear();
                self.ret_stack[idle].clear();
                self.procs[idle] = self.enter_state(graph, child);
                self.procs[p] = self.enter_state(graph, next);
            }
        }
        Ok(())
    }

    fn pop(&mut self, p: usize) -> Result<i64, MimdError> {
        self.stack[p]
            .pop()
            .ok_or(MimdError::StackUnderflow { proc: p })
    }

    fn apply_op(&mut self, op: &Op, p: usize) -> Result<(), MimdError> {
        match op {
            Op::Push(v) => self.stack[p].push(*v),
            Op::PushF(b) => self.stack[p].push(*b as i64),
            Op::Dup => {
                let v = *self.stack[p]
                    .last()
                    .ok_or(MimdError::StackUnderflow { proc: p })?;
                self.stack[p].push(v);
            }
            Op::Pop(n) => {
                for _ in 0..*n {
                    self.pop(p)?;
                }
            }
            Op::Ld(a) => {
                let v = match a.space {
                    Space::Poly => self.poly[p][a.index as usize],
                    Space::Mono => self.mono[a.index as usize],
                };
                self.stack[p].push(v);
            }
            Op::St(a) => {
                let v = self.pop(p)?;
                match a.space {
                    Space::Poly => self.poly[p][a.index as usize] = v,
                    Space::Mono => self.mono[a.index as usize] = v,
                }
            }
            Op::LdRemote(a) => {
                let idx = self.pop(p)?;
                let src = (idx.rem_euclid(self.n_proc as i64)) as usize;
                let v = self.poly[src][a.index as usize];
                self.stack[p].push(v);
            }
            Op::StRemote(a) => {
                let idx = self.pop(p)?;
                let v = self.pop(p)?;
                let dst = (idx.rem_euclid(self.n_proc as i64)) as usize;
                self.poly[dst][a.index as usize] = v;
            }
            Op::Bin(b) => {
                let rhs = self.pop(p)?;
                let lhs = self.pop(p)?;
                self.stack[p].push(b.apply(lhs, rhs));
            }
            Op::Un(u) => {
                let v = self.pop(p)?;
                self.stack[p].push(u.apply(v));
            }
            Op::PeId => self.stack[p].push(p as i64),
            Op::NProc => self.stack[p].push(self.n_proc as i64),
            Op::PushRet => {
                let v = self.pop(p)?;
                self.ret_stack[p].push(v);
            }
            Op::PopRet => {
                let v = self.ret_stack[p]
                    .pop()
                    .ok_or(MimdError::RetStackUnderflow { proc: p })?;
                self.stack[p].push(v);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_lang::compile;

    fn run_src(src: &str, n: usize) -> (MimdReference, msc_lang::Program) {
        let p = compile(src).unwrap();
        let cfg = MimdConfig::spmd(n);
        let mut m = MimdReference::new(p.layout.poly_words, p.layout.mono_words, &cfg);
        m.run(&p.graph, &cfg).unwrap();
        (m, p)
    }

    #[test]
    fn straight_line_per_pe() {
        let (m, p) = run_src("main() { poly int x; x = pe_id() * 3 + 1; return(x); }", 5);
        let ret = p.layout.main_ret.unwrap();
        for pe in 0..5 {
            assert_eq!(m.poly_at(pe, ret), pe as i64 * 3 + 1);
        }
    }

    #[test]
    fn divergent_branches() {
        let (m, p) = run_src(
            r#"
            main() {
                poly int x;
                if (pe_id() % 2) { x = 100; } else { x = 200; }
                return(x);
            }
            "#,
            4,
        );
        let ret = p.layout.main_ret.unwrap();
        assert_eq!(m.poly_at(0, ret), 200);
        assert_eq!(m.poly_at(1, ret), 100);
        assert_eq!(m.poly_at(2, ret), 200);
        assert_eq!(m.poly_at(3, ret), 100);
    }

    #[test]
    fn loops_with_different_trip_counts() {
        let (m, p) = run_src(
            r#"
            main() {
                poly int i, acc = 0;
                for (i = 0; i < pe_id(); i += 1) { acc += i; }
                return(acc);
            }
            "#,
            6,
        );
        let ret = p.layout.main_ret.unwrap();
        for pe in 0..6i64 {
            let expect = (0..pe).sum::<i64>();
            assert_eq!(m.poly_at(pe as usize, ret), expect, "PE {pe}");
        }
    }

    #[test]
    fn barrier_synchronizes() {
        // Fast PEs must observe the mono value written by the slow PE
        // before the barrier.
        let (m, p) = run_src(
            r#"
            mono int shared;
            main() {
                poly int i, x = 0;
                if (pe_id() == 0) {
                    for (i = 0; i < 50; i += 1) { x += 1; }
                    shared = 777;
                }
                wait;
                return(shared);
            }
            "#,
            4,
        );
        let ret = p.layout.main_ret.unwrap();
        for pe in 0..4 {
            assert_eq!(
                m.poly_at(pe, ret),
                777,
                "PE {pe} ran past the barrier early"
            );
        }
        assert!(
            m.metrics.barrier_wait_cycles > 0,
            "fast PEs must have waited"
        );
    }

    #[test]
    fn recursion_executes() {
        let (m, p) = run_src(
            r#"
            int fact(int n) {
                if (n <= 1) return 1;
                return n * fact(n - 1);
            }
            main() { poly int x; x = fact(pe_id() + 1); return(x); }
            "#,
            5,
        );
        let ret = p.layout.main_ret.unwrap();
        let facts = [1i64, 2, 6, 24, 120];
        for (pe, want) in facts.iter().enumerate() {
            assert_eq!(m.poly_at(pe, ret), *want, "fact({})", pe + 1);
        }
    }

    #[test]
    fn spawn_on_reference_machine() {
        let src = r#"
            void worker(int v) { poly int r; r = v * 2; }
            main() { spawn worker(21); }
        "#;
        let p = compile(src).unwrap();
        let cfg = MimdConfig {
            n_proc: 4,
            active_at_start: 2,
            ..MimdConfig::spmd(4)
        };
        let mut m = MimdReference::new(p.layout.poly_words, p.layout.mono_words, &cfg);
        m.run(&p.graph, &cfg).unwrap();
        let r = p.layout.var("r").unwrap().addr;
        let spawned_results: Vec<i64> = (0..4).map(|pe| m.poly_at(pe, r)).collect();
        assert_eq!(spawned_results.iter().filter(|&&v| v == 42).count(), 2);
    }

    #[test]
    fn watchdog_catches_nontermination() {
        let p = compile("main() { poly int x = 1; do { x = 1; } while (x); }").unwrap();
        let mut cfg = MimdConfig::spmd(2);
        cfg.max_cycles = 5_000;
        let mut m = MimdReference::new(p.layout.poly_words, p.layout.mono_words, &cfg);
        assert_eq!(
            m.run(&p.graph, &cfg),
            Err(MimdError::Watchdog { max_cycles: 5_000 })
        );
    }

    #[test]
    fn utilization_reflects_imbalance() {
        let (m, _) = run_src(
            r#"
            main() {
                poly int i, x = 0;
                for (i = 0; i < pe_id() * 20 + 1; i += 1) { x += i; }
                wait;
                return(x);
            }
            "#,
            8,
        );
        let u = m.metrics.utilization(8);
        assert!(
            u > 0.0 && u < 1.0,
            "imbalanced loops + barrier ⇒ some waiting, got {u}"
        );
    }
}
