//! The MIMD-emulation-by-interpretation baseline of §1.1.
//!
//! "Perhaps the most obvious way to make SIMD hardware mimic MIMD
//! execution is to write a SIMD program that will interpretively execute a
//! MIMD instruction set":
//!
//! 1. each PE fetches an "instruction" into its IR and updates its PC;
//! 2. each PE decodes the instruction;
//! 3. for each instruction type present: disable non-matching PEs,
//!    simulate the instruction on the enabled PEs, re-enable;
//! 4. go to 1.
//!
//! The paper lists the three overheads this repository's experiments
//! measure (C1 in EXPERIMENTS.md):
//!
//! * instructions must be fetched and decoded every round;
//! * **each PE holds a copy of the entire MIMD program** — on a 16K-PE
//!   MP-1 with 16KB of PE memory this "severely restricts the size of MIMD
//!   programs" ([`InterpProgram::per_pe_program_words`] measures it);
//! * the interpreter loop itself costs cycles every round.
//!
//! The interpreter here is a faithful cost simulation of that algorithm:
//! the MIMD state graph is flattened to a linear instruction image
//! (replicated per PE for the memory metric), and each round charges
//! fetch+decode, one issue per *distinct instruction type present* (the
//! step-3 serialization), and the loop-back overhead.

use msc_ir::util::FxHashMap;
use msc_ir::{CostModel, MimdGraph, Op, Terminator};
use msc_simd::RunError;
use std::fmt;

/// One interpreted MIMD instruction (the "instruction set" of §1.1's
/// emulated machine).
#[derive(Debug, Clone, PartialEq)]
pub enum InterpInstr {
    /// A straight-line stack op.
    Op(Op),
    /// Conditional branch to image addresses.
    JumpF {
        /// TRUE target address.
        t: usize,
        /// FALSE target address.
        f: usize,
    },
    /// Unconditional branch.
    Jump(usize),
    /// Process end.
    Halt,
    /// Multiway return branch (image addresses).
    RetMulti(Vec<usize>),
    /// Barrier wait.
    Wait,
    /// Dynamic process creation.
    Spawn {
        /// Child entry address.
        child: usize,
        /// Continuation address.
        next: usize,
    },
}

impl InterpInstr {
    /// Encoded size in memory words (opcode + operands), for the per-PE
    /// program-copy metric.
    pub fn encoded_words(&self) -> usize {
        match self {
            InterpInstr::Op(op) => match op {
                Op::Push(_) | Op::PushF(_) => 2,
                Op::Ld(_) | Op::St(_) | Op::LdRemote(_) | Op::StRemote(_) => 2,
                Op::Pop(_) => 2,
                _ => 1,
            },
            InterpInstr::JumpF { .. } | InterpInstr::Spawn { .. } => 3,
            InterpInstr::Jump(_) => 2,
            InterpInstr::Halt | InterpInstr::Wait => 1,
            InterpInstr::RetMulti(v) => 1 + v.len(),
        }
    }

    /// Dispatch key: the instruction *type* (step 3 serializes over these).
    /// Operands like immediates and addresses are per-PE data and do not
    /// split the type; distinct ALU operators do (they decode to different
    /// execution routines).
    fn type_key(&self) -> u32 {
        match self {
            InterpInstr::Op(op) => match op {
                Op::Push(_) => 0,
                Op::PushF(_) => 1,
                Op::Dup => 2,
                Op::Pop(_) => 3,
                Op::Ld(a) => 4 + (a.space as u32),
                Op::St(a) => 6 + (a.space as u32),
                Op::LdRemote(_) => 8,
                Op::StRemote(_) => 9,
                Op::Bin(b) => 10 + *b as u32,
                Op::Un(u) => 40 + *u as u32,
                Op::PeId => 50,
                Op::NProc => 51,
                Op::PushRet => 52,
                Op::PopRet => 53,
            },
            InterpInstr::JumpF { .. } => 60,
            InterpInstr::Jump(_) => 61,
            InterpInstr::Halt => 62,
            InterpInstr::RetMulti(_) => 63,
            InterpInstr::Wait => 64,
            InterpInstr::Spawn { .. } => 65,
        }
    }

    /// Execution cost of this instruction type's handler.
    fn cost(&self, costs: &CostModel) -> u32 {
        match self {
            InterpInstr::Op(op) => costs.op_cost(op),
            InterpInstr::JumpF { .. } | InterpInstr::Jump(_) => costs.int_simple,
            InterpInstr::Halt | InterpInstr::Wait => costs.stack,
            InterpInstr::RetMulti(_) => costs.control,
            InterpInstr::Spawn { .. } => costs.dispatch,
        }
    }
}

/// The flattened MIMD program image.
#[derive(Debug, Clone)]
pub struct InterpProgram {
    /// The instruction image (replicated into every PE's memory).
    pub image: Vec<InterpInstr>,
    /// Image address each process starts at.
    pub entry: usize,
    /// Words of poly memory the program needs.
    pub poly_words: u32,
    /// Words of mono memory.
    pub mono_words: u32,
}

impl InterpProgram {
    /// Flatten a MIMD state graph into a linear image. Blocks are laid out
    /// in id order; every terminator becomes an explicit branch
    /// instruction (no fall-through), which is what a simple MIMD
    /// instruction set would require anyway.
    pub fn flatten(graph: &MimdGraph, poly_words: u32, mono_words: u32) -> Self {
        let mut addr_of_state = vec![0usize; graph.len()];
        let mut image = Vec::new();
        for id in graph.ids() {
            addr_of_state[id.idx()] = image.len();
            let st = graph.state(id);
            if st.barrier {
                image.push(InterpInstr::Wait);
            }
            for op in &st.ops {
                image.push(InterpInstr::Op(op.clone()));
            }
            // Terminator placeholder; patched below once all addresses are
            // known.
            image.push(InterpInstr::Halt);
        }
        // Patch terminators.
        let mut cursor = 0usize;
        for id in graph.ids() {
            let st = graph.state(id);
            let len = st.ops.len() + 1 + st.barrier as usize;
            let term_at = cursor + len - 1;
            image[term_at] = match &st.term {
                Terminator::Halt => InterpInstr::Halt,
                Terminator::Jump(b) => InterpInstr::Jump(addr_of_state[b.idx()]),
                Terminator::Branch { t, f } => InterpInstr::JumpF {
                    t: addr_of_state[t.idx()],
                    f: addr_of_state[f.idx()],
                },
                Terminator::Multi(v) => {
                    InterpInstr::RetMulti(v.iter().map(|s| addr_of_state[s.idx()]).collect())
                }
                Terminator::Spawn { child, next } => InterpInstr::Spawn {
                    child: addr_of_state[child.idx()],
                    next: addr_of_state[next.idx()],
                },
            };
            cursor += len;
        }
        InterpProgram {
            image,
            entry: addr_of_state[graph.start.idx()],
            poly_words,
            mono_words,
        }
    }

    /// Words of program memory **each PE** must hold (§1.1 problem 2).
    pub fn per_pe_program_words(&self) -> usize {
        self.image.iter().map(InterpInstr::encoded_words).sum()
    }
}

/// Interpreter run metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InterpMetrics {
    /// Total cycles.
    pub cycles: u64,
    /// Cycles in fetch+decode (§1.1 problem 1).
    pub fetch_decode_cycles: u64,
    /// Cycles executing instruction handlers (incl. the serialization over
    /// distinct types present).
    pub execute_cycles: u64,
    /// Cycles in interpreter loop overhead (§1.1 problem 3).
    pub loop_cycles: u64,
    /// Interpreter rounds (one fetch-decode-dispatch-execute iteration).
    pub rounds: u64,
    /// Σ distinct instruction types per round — the serialization factor.
    pub types_dispatched: u64,
}

/// Interpreter failure modes (shared with the SIMD machine's error type
/// where the conditions coincide).
pub type InterpError = RunError;

/// Per-PE interpreter state.
#[derive(Debug, Clone, PartialEq)]
enum PeState {
    Running { pc: usize },
    Waiting { pc: usize }, // at a Wait, pc = address of the Wait
    Halted,
    Idle,
}

/// The interpreter machine: N PEs interpreting their own copy of the MIMD
/// program image under SIMD control.
#[derive(Debug, Clone)]
pub struct InterpMachine {
    /// PE count.
    pub n_pe: usize,
    /// Per-PE poly memory.
    pub poly: Vec<Vec<i64>>,
    /// Replicated mono memory.
    pub mono: Vec<i64>,
    stack: Vec<Vec<i64>>,
    ret_stack: Vec<Vec<i64>>,
    pes: Vec<PeState>,
    /// Metrics of the last run.
    pub metrics: InterpMetrics,
}

impl InterpMachine {
    /// Build an interpreter machine: `active` PEs start at the program
    /// entry, the rest idle.
    pub fn new(program: &InterpProgram, n_pe: usize, active: usize) -> Self {
        let mut pes = vec![PeState::Idle; n_pe];
        for p in pes.iter_mut().take(active.min(n_pe)) {
            *p = PeState::Running { pc: program.entry };
        }
        InterpMachine {
            n_pe,
            poly: vec![vec![0; program.poly_words as usize]; n_pe],
            mono: vec![0; program.mono_words as usize],
            stack: vec![Vec::new(); n_pe],
            ret_stack: vec![Vec::new(); n_pe],
            pes,
            metrics: InterpMetrics::default(),
        }
    }

    /// Read a PE's view of an address.
    pub fn poly_at(&self, pe: usize, addr: msc_ir::Addr) -> i64 {
        match addr.space {
            msc_ir::Space::Poly => self.poly[pe][addr.index as usize],
            msc_ir::Space::Mono => self.mono[addr.index as usize],
        }
    }

    /// Run the interpreter loop to completion.
    pub fn run(
        &mut self,
        program: &InterpProgram,
        costs: &CostModel,
        max_cycles: u64,
    ) -> Result<InterpMetrics, InterpError> {
        loop {
            if self.metrics.cycles > max_cycles {
                return Err(RunError::Watchdog { max_cycles });
            }
            let running: Vec<usize> = (0..self.n_pe)
                .filter(|&pe| matches!(self.pes[pe], PeState::Running { .. }))
                .collect();
            if running.is_empty() {
                // Barrier release or true termination.
                let waiting: Vec<usize> = (0..self.n_pe)
                    .filter(|&pe| matches!(self.pes[pe], PeState::Waiting { .. }))
                    .collect();
                if waiting.is_empty() {
                    return Ok(self.metrics);
                }
                for pe in waiting {
                    if let PeState::Waiting { pc } = self.pes[pe] {
                        self.pes[pe] = PeState::Running { pc: pc + 1 };
                    }
                }
                continue;
            }

            // Round: fetch + decode on all PEs simultaneously (one issue).
            self.metrics.rounds += 1;
            self.metrics.cycles += costs.interp_fetch_decode as u64;
            self.metrics.fetch_decode_cycles += costs.interp_fetch_decode as u64;

            // Step 3: serialize over the distinct instruction types present.
            let mut groups: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
            for &pe in &running {
                let PeState::Running { pc } = self.pes[pe] else {
                    unreachable!()
                };
                groups
                    .entry(program.image[pc].type_key())
                    .or_default()
                    .push(pe);
            }
            let mut keys: Vec<u32> = groups.keys().copied().collect();
            keys.sort_unstable();
            self.metrics.types_dispatched += keys.len() as u64;
            for key in keys {
                let pes = &groups[&key];
                // One representative instruction gives the handler cost;
                // all PEs in the group execute simultaneously.
                let PeState::Running { pc: pc0 } = self.pes[pes[0]] else {
                    unreachable!()
                };
                let cost = program.image[pc0].cost(costs) as u64;
                self.metrics.cycles += cost;
                self.metrics.execute_cycles += cost;
                for &pe in pes {
                    self.step_pe(pe, program)?;
                }
            }

            // Step 4: loop back.
            self.metrics.cycles += costs.interp_loop as u64;
            self.metrics.loop_cycles += costs.interp_loop as u64;
        }
    }

    fn step_pe(&mut self, pe: usize, program: &InterpProgram) -> Result<(), InterpError> {
        let PeState::Running { pc } = self.pes[pe] else {
            unreachable!()
        };
        let instr = &program.image[pc];
        match instr {
            InterpInstr::Op(op) => {
                self.exec_op(op, pe)?;
                self.pes[pe] = PeState::Running { pc: pc + 1 };
            }
            InterpInstr::Jump(t) => {
                self.pes[pe] = PeState::Running { pc: *t };
            }
            InterpInstr::JumpF { t, f } => {
                let c = self.pop(pe)?;
                self.pes[pe] = PeState::Running {
                    pc: if c != 0 { *t } else { *f },
                };
            }
            InterpInstr::Halt => {
                self.pes[pe] = PeState::Halted;
                self.stack[pe].clear();
                self.ret_stack[pe].clear();
            }
            InterpInstr::Wait => {
                self.pes[pe] = PeState::Waiting { pc };
            }
            InterpInstr::RetMulti(targets) => {
                let sel = self.pop(pe)?;
                let t = *targets
                    .get(sel as usize)
                    .ok_or(RunError::BadSelector { pe, selector: sel })?;
                self.pes[pe] = PeState::Running { pc: t };
            }
            InterpInstr::Spawn { child, next } => {
                let idle = (0..self.n_pe).find(|&q| matches!(self.pes[q], PeState::Idle));
                let Some(idle) = idle else {
                    return Err(RunError::SpawnOverflow {
                        block: msc_simd::BlockId(0),
                        requested: 1,
                        available: 0,
                    });
                };
                self.poly[idle] = self.poly[pe].clone();
                self.stack[idle].clear();
                self.ret_stack[idle].clear();
                self.pes[idle] = PeState::Running { pc: *child };
                self.pes[pe] = PeState::Running { pc: *next };
            }
        }
        Ok(())
    }

    fn pop(&mut self, pe: usize) -> Result<i64, InterpError> {
        self.stack[pe].pop().ok_or(RunError::StackUnderflow { pe })
    }

    fn exec_op(&mut self, op: &Op, pe: usize) -> Result<(), InterpError> {
        match op {
            Op::Push(v) => self.stack[pe].push(*v),
            Op::PushF(b) => self.stack[pe].push(*b as i64),
            Op::Dup => {
                let v = *self.stack[pe]
                    .last()
                    .ok_or(RunError::StackUnderflow { pe })?;
                self.stack[pe].push(v);
            }
            Op::Pop(n) => {
                for _ in 0..*n {
                    self.pop(pe)?;
                }
            }
            Op::Ld(a) => {
                let v = match a.space {
                    msc_ir::Space::Poly => self.poly[pe][a.index as usize],
                    msc_ir::Space::Mono => self.mono[a.index as usize],
                };
                self.stack[pe].push(v);
            }
            Op::St(a) => {
                let v = self.pop(pe)?;
                match a.space {
                    msc_ir::Space::Poly => self.poly[pe][a.index as usize] = v,
                    msc_ir::Space::Mono => self.mono[a.index as usize] = v,
                }
            }
            Op::LdRemote(a) => {
                let idx = self.pop(pe)?;
                let src = (idx.rem_euclid(self.n_pe as i64)) as usize;
                let v = self.poly[src][a.index as usize];
                self.stack[pe].push(v);
            }
            Op::StRemote(a) => {
                let idx = self.pop(pe)?;
                let v = self.pop(pe)?;
                let dst = (idx.rem_euclid(self.n_pe as i64)) as usize;
                self.poly[dst][a.index as usize] = v;
            }
            Op::Bin(b) => {
                let rhs = self.pop(pe)?;
                let lhs = self.pop(pe)?;
                self.stack[pe].push(b.apply(lhs, rhs));
            }
            Op::Un(u) => {
                let v = self.pop(pe)?;
                self.stack[pe].push(u.apply(v));
            }
            Op::PeId => self.stack[pe].push(pe as i64),
            Op::NProc => self.stack[pe].push(self.n_pe as i64),
            Op::PushRet => {
                let v = self.pop(pe)?;
                self.ret_stack[pe].push(v);
            }
            Op::PopRet => {
                let v = self.ret_stack[pe]
                    .pop()
                    .ok_or(RunError::RetStackUnderflow { pe })?;
                self.stack[pe].push(v);
            }
        }
        Ok(())
    }
}

impl fmt::Display for InterpProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, instr) in self.image.iter().enumerate() {
            writeln!(f, "{i:4}: {instr:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_lang::compile;

    fn run_src(src: &str, n: usize) -> (InterpMachine, msc_lang::Program, InterpProgram) {
        let p = compile(src).unwrap();
        let ip = InterpProgram::flatten(&p.graph, p.layout.poly_words, p.layout.mono_words);
        let mut m = InterpMachine::new(&ip, n, n);
        m.run(&ip, &CostModel::default(), 100_000_000).unwrap();
        (m, p, ip)
    }

    #[test]
    fn interprets_straight_line() {
        let (m, p, _) = run_src("main() { poly int x; x = pe_id() + 100; return(x); }", 4);
        let ret = p.layout.main_ret.unwrap();
        for pe in 0..4 {
            assert_eq!(m.poly_at(pe, ret), pe as i64 + 100);
        }
    }

    #[test]
    fn interprets_divergent_control_flow() {
        let (m, p, _) = run_src(
            r#"
            main() {
                poly int x, i;
                x = 0;
                for (i = 0; i < pe_id() + 1; i += 1) { x += 2; }
                return(x);
            }
            "#,
            4,
        );
        let ret = p.layout.main_ret.unwrap();
        for pe in 0..4 {
            assert_eq!(m.poly_at(pe, ret), 2 * (pe as i64 + 1));
        }
    }

    #[test]
    fn serialization_counts_types() {
        let (m, _, _) = run_src(
            r#"
            main() {
                poly int x;
                if (pe_id() % 2) { x = 1 + 2; } else { x = 3 * 4; }
                return(x);
            }
            "#,
            4,
        );
        // Divergent paths force rounds where several instruction types are
        // present at once.
        assert!(m.metrics.types_dispatched > m.metrics.rounds);
    }

    #[test]
    fn per_pe_program_memory_grows_with_program() {
        let (_, _, small) = run_src("main() { poly int x = 1; return(x); }", 2);
        let (_, _, large) = run_src(
            r#"
            main() {
                poly int x = 1;
                x += 1; x += 2; x += 3; x += 4; x += 5;
                x += 6; x += 7; x += 8; x += 9; x += 10;
                return(x);
            }
            "#,
            2,
        );
        assert!(large.per_pe_program_words() > small.per_pe_program_words());
        assert!(
            small.per_pe_program_words() > 0,
            "§1.1: every PE holds the program"
        );
    }

    #[test]
    fn barrier_in_interpreter() {
        let (m, p, _) = run_src(
            r#"
            mono int shared;
            main() {
                poly int i, x = 0;
                if (pe_id() == 0) {
                    for (i = 0; i < 20; i += 1) { x += 1; }
                    shared = 55;
                }
                wait;
                return(shared);
            }
            "#,
            3,
        );
        let ret = p.layout.main_ret.unwrap();
        for pe in 0..3 {
            assert_eq!(m.poly_at(pe, ret), 55);
        }
    }

    #[test]
    fn fetch_decode_overhead_accrues_every_round() {
        let (m, _, _) = run_src("main() { poly int x = 1; return(x); }", 2);
        assert!(m.metrics.fetch_decode_cycles > 0);
        assert!(m.metrics.loop_cycles > 0);
        assert_eq!(
            m.metrics.cycles,
            m.metrics.fetch_decode_cycles + m.metrics.execute_cycles + m.metrics.loop_cycles
        );
    }
}
