//! # msc-mimd — MIMD execution baselines
//!
//! Two reference points for the meta-state-converted SIMD program:
//!
//! * [`mod@reference`] — a true multi-processor (MIMD) simulator walking the
//!   MIMD state graph directly, one program counter per processor. This is
//!   the golden semantics every other execution mode must match, and the
//!   idealized-MIMD timing baseline.
//! * [`interp`] — the §1.1 baseline: MIMD emulation by interpretation on
//!   SIMD hardware, with its three overheads (fetch/decode, per-PE program
//!   copies, interpreter loop) explicitly accounted so the C1 experiment
//!   can reproduce the paper's motivation for meta-state conversion.

pub mod interp;
pub mod reference;

pub use interp::{InterpInstr, InterpMachine, InterpMetrics, InterpProgram};
pub use reference::{MimdConfig, MimdError, MimdMetrics, MimdReference};

use msc_ir::{CostModel, MimdGraph};

/// Convenience wrapper: interpret `graph` on `n_pe` PEs (all live) and
/// return the machine + metrics.
pub fn interpret_on_simd(
    graph: &MimdGraph,
    poly_words: u32,
    mono_words: u32,
    n_pe: usize,
    costs: &CostModel,
) -> Result<(InterpMachine, InterpMetrics), interp::InterpError> {
    let program = InterpProgram::flatten(graph, poly_words, mono_words);
    let mut m = InterpMachine::new(&program, n_pe, n_pe);
    let metrics = m.run(&program, costs, 100_000_000)?;
    Ok((m, metrics))
}
