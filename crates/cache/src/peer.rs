//! The peer-fetch tier: pull artifacts from sibling daemons before
//! compiling locally.
//!
//! Robustness is the point, not an afterthought. Every network step is
//! bounded — per-peer connect and read deadlines, a bounded retry with
//! doubling backoff, and a *total* peer-path deadline after which the
//! caller just compiles locally, so a dead fleet is never slower than
//! no fleet beyond one timeout. Each peer sits behind a circuit
//! breaker: consecutive failures open it (the peer is skipped
//! entirely), a cooldown later one half-open probe is admitted, and its
//! outcome closes or re-opens the breaker. Every fetched body is
//! re-hash verified ([`crate::wire`]) before it is trusted; corrupt or
//! truncated bodies degrade to a miss and are counted
//! (`cache.peer_verify_fail`).

use crate::{wire, CacheKey, CacheLayer, CacheTier, Codec, TierStatus};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::marker::PhantomData;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables for the peer tier. The defaults suit LAN siblings; tests
/// shrink them to keep failure paths fast.
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// TCP connect budget per attempt.
    pub connect_timeout: Duration,
    /// Socket read/write budget per attempt.
    pub read_timeout: Duration,
    /// Extra attempts per peer after the first (so `retries + 1` tries).
    pub retries: u32,
    /// Initial sleep between attempts; doubles per retry.
    pub backoff: Duration,
    /// Budget for the whole peer path (all peers, all retries). Once
    /// exhausted the caller compiles locally.
    pub total_deadline: Duration,
    /// Consecutive failures that open a peer's breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before admitting one half-open
    /// probe.
    pub open_cooldown: Duration,
    /// Largest response body accepted from a peer.
    pub max_body: usize,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(2),
            retries: 1,
            backoff: Duration::from_millis(50),
            total_deadline: Duration::from_secs(3),
            failure_threshold: 3,
            open_cooldown: Duration::from_secs(5),
            max_body: 16 << 20,
        }
    }
}

/// Circuit-breaker position for one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Sick: requests are skipped until the cooldown elapses.
    Open,
    /// One probe is in flight; its outcome decides Closed vs Open.
    HalfOpen,
}

impl BreakerState {
    /// Lowercase rendering for `/healthz` and metrics.
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    /// When the breaker opened, or when the half-open probe was
    /// admitted.
    since: Option<Instant>,
}

/// Per-peer circuit breaker. Time is passed in by the caller so the
/// state machine is testable with synthetic clocks.
pub(crate) struct Breaker {
    inner: Mutex<BreakerInner>,
}

impl Breaker {
    fn new() -> Self {
        Breaker {
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                since: None,
            }),
        }
    }

    /// May a request be sent to this peer right now? Transitions
    /// Open → HalfOpen (admitting the caller as the probe) once the
    /// cooldown has elapsed.
    fn allow(&self, now: Instant, cfg: &PeerConfig) -> bool {
        let mut b = self.inner.lock();
        match b.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let opened = b.since.expect("open breaker records when it opened");
                if now.saturating_duration_since(opened) >= cfg.open_cooldown {
                    b.state = BreakerState::HalfOpen;
                    b.since = Some(now);
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                // One probe at a time — but if the admitted probe
                // stalled past the whole peer-path budget (its thread
                // died mid-request, say), admit a replacement rather
                // than wedging half-open forever.
                let admitted = b.since.expect("half-open breaker records its probe");
                if now.saturating_duration_since(admitted) >= cfg.total_deadline {
                    b.since = Some(now);
                    true
                } else {
                    false
                }
            }
        }
    }

    fn on_success(&self) {
        let mut b = self.inner.lock();
        b.state = BreakerState::Closed;
        b.consecutive_failures = 0;
        b.since = None;
    }

    fn on_failure(&self, now: Instant, cfg: &PeerConfig) {
        let mut b = self.inner.lock();
        b.consecutive_failures += 1;
        if b.state == BreakerState::HalfOpen || b.consecutive_failures >= cfg.failure_threshold {
            b.state = BreakerState::Open;
            b.since = Some(now);
        }
    }

    fn snapshot(&self) -> (BreakerState, u32) {
        let b = self.inner.lock();
        (b.state, b.consecutive_failures)
    }
}

/// One peer's `/healthz` snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerStatus {
    /// `host:port` as configured.
    pub addr: String,
    /// Current breaker position.
    pub breaker: BreakerState,
    /// Failures since the last success.
    pub consecutive_failures: u32,
}

struct Peer {
    addr: String,
    breaker: Breaker,
}

/// The peer tier: an ordered list of sibling daemons tried in turn.
/// [`CacheTier::store`] is a no-op — peers are read-through only; a
/// node shares what it compiled by serving `GET /artifact/{key}`, not
/// by pushing.
pub struct PeerTier<A> {
    peers: Vec<Peer>,
    cfg: PeerConfig,
    _artifact: PhantomData<fn() -> A>,
}

impl<A> PeerTier<A> {
    /// A tier consulting `addrs` (each `host:port`) in order.
    pub fn new(addrs: Vec<String>, cfg: PeerConfig) -> Self {
        PeerTier {
            peers: addrs
                .into_iter()
                .map(|addr| Peer {
                    addr,
                    breaker: Breaker::new(),
                })
                .collect(),
            cfg,
            _artifact: PhantomData,
        }
    }

    /// Per-peer breaker snapshots, in configured order.
    pub fn statuses(&self) -> Vec<PeerStatus> {
        self.peers
            .iter()
            .map(|p| {
                let (breaker, consecutive_failures) = p.breaker.snapshot();
                PeerStatus {
                    addr: p.addr.clone(),
                    breaker,
                    consecutive_failures,
                }
            })
            .collect()
    }

    /// The active tunables.
    pub fn config(&self) -> &PeerConfig {
        &self.cfg
    }
}

impl<A: Send + Sync> CacheTier<A> for PeerTier<A> {
    fn layer(&self) -> CacheLayer {
        CacheLayer::Peer
    }

    fn fetch(&self, key: CacheKey, codec: &dyn Codec<A>) -> Option<Arc<A>> {
        let deadline = Instant::now() + self.cfg.total_deadline;
        for peer in &self.peers {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if !peer.breaker.allow(now, &self.cfg) {
                continue;
            }
            let mut backoff = self.cfg.backoff;
            for attempt in 0..=self.cfg.retries {
                if attempt > 0 {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    std::thread::sleep(backoff.min(deadline - now));
                    backoff = backoff.saturating_mul(2);
                }
                if Instant::now() >= deadline {
                    break;
                }
                match http_get_artifact(&peer.addr, key, &self.cfg, deadline) {
                    Ok(Some(body)) => {
                        msc_obs::count("cache.peer_bytes", body.len() as u64);
                        match wire::open(key, &body).and_then(|text| codec.decode(&text)) {
                            Some(artifact) => {
                                peer.breaker.on_success();
                                return Some(Arc::new(artifact));
                            }
                            None => {
                                // The peer answered confidently with a
                                // body that does not verify — retrying
                                // will not un-corrupt it. Count it,
                                // penalize the peer, move on.
                                msc_obs::count("cache.peer_verify_fail", 1);
                                peer.breaker.on_failure(Instant::now(), &self.cfg);
                                break;
                            }
                        }
                    }
                    Ok(None) => {
                        // Clean 404: the peer is healthy, it just does
                        // not have this artifact.
                        msc_obs::count("cache.peer_miss", 1);
                        peer.breaker.on_success();
                        break;
                    }
                    Err(_) => {
                        msc_obs::count("cache.peer_error", 1);
                        peer.breaker.on_failure(Instant::now(), &self.cfg);
                    }
                }
            }
        }
        None
    }

    fn store(&self, _key: CacheKey, _artifact: &Arc<A>, _codec: &dyn Codec<A>) {}

    fn status(&self) -> TierStatus {
        TierStatus::Peers {
            peers: self.statuses(),
            total_deadline: self.cfg.total_deadline,
        }
    }
}

/// One bounded HTTP exchange. `Ok(Some(body))` is a 200, `Ok(None)` a
/// clean 404, `Err` anything else (refused, timeout, bad status,
/// oversized or truncated body). Std-only HTTP/1.1: the request pins
/// `Connection: close` so the body ends at Content-Length or EOF.
fn http_get_artifact(
    addr: &str,
    key: CacheKey,
    cfg: &PeerConfig,
    deadline: Instant,
) -> Result<Option<String>, String> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err("peer deadline exhausted".into());
    }
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no addresses"))?;
    let stream = TcpStream::connect_timeout(&sock, cfg.connect_timeout.min(remaining))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let io_budget = cfg
        .read_timeout
        .min(deadline.saturating_duration_since(Instant::now()))
        .max(Duration::from_millis(1));
    stream
        .set_read_timeout(Some(io_budget))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(io_budget))
        .map_err(|e| e.to_string())?;
    let mut stream = stream;
    let request = format!(
        "GET /artifact/{} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n",
        key.hex()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send {addr}: {e}"))?;

    // Read headers (and whatever body bytes arrive with them).
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > 64 * 1024 {
            return Err(format!("{addr}: response headers too large"));
        }
        if Instant::now() >= deadline {
            return Err(format!("{addr}: peer deadline exhausted mid-read"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(format!("{addr}: connection closed before headers")),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("read {addr}: {e}")),
        }
    };
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| format!("{addr}: non-UTF-8 headers"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{addr}: bad status line {status_line:?}"))?;
    if status == 404 {
        return Ok(None);
    }
    if status != 200 {
        return Err(format!("{addr}: status {status}"));
    }
    let content_length: Option<usize> = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(name, _)| name.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok());
    if let Some(len) = content_length {
        if len > cfg.max_body {
            return Err(format!("{addr}: body of {len} bytes exceeds cap"));
        }
    }
    let body_start = header_end + 4;
    loop {
        let have = buf.len().saturating_sub(body_start);
        match content_length {
            Some(len) if have >= len => {
                buf.truncate(body_start + len);
                break;
            }
            _ => {}
        }
        if have > cfg.max_body {
            return Err(format!("{addr}: body exceeds cap"));
        }
        if Instant::now() >= deadline {
            return Err(format!("{addr}: peer deadline exhausted mid-body"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if let Some(len) = content_length {
                    if have < len {
                        return Err(format!("{addr}: truncated body ({have}/{len} bytes)"));
                    }
                }
                break; // Connection: close with no length — EOF delimits.
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("read {addr}: {e}")),
        }
    }
    String::from_utf8(buf.split_off(body_start))
        .map(Some)
        .map_err(|_| format!("{addr}: non-UTF-8 body"))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::StrCodec;
    use std::net::TcpListener;

    fn tiny_cfg() -> PeerConfig {
        PeerConfig {
            connect_timeout: Duration::from_millis(200),
            read_timeout: Duration::from_millis(300),
            retries: 1,
            backoff: Duration::from_millis(1),
            total_deadline: Duration::from_millis(800),
            failure_threshold: 2,
            open_cooldown: Duration::from_secs(3600),
            max_body: 1 << 20,
        }
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers_through_half_open() {
        let cfg = tiny_cfg();
        let b = Breaker::new();
        let t0 = Instant::now();
        assert!(b.allow(t0, &cfg));
        b.on_failure(t0, &cfg);
        assert_eq!(b.snapshot(), (BreakerState::Closed, 1));
        assert!(b.allow(t0, &cfg), "one failure below threshold still flows");
        b.on_failure(t0, &cfg);
        assert_eq!(b.snapshot().0, BreakerState::Open);
        assert!(
            !b.allow(t0 + Duration::from_secs(1), &cfg),
            "open rejects inside cooldown"
        );
        // Cooldown elapsed: exactly one half-open probe is admitted.
        let probe_time = t0 + cfg.open_cooldown;
        assert!(b.allow(probe_time, &cfg));
        assert_eq!(b.snapshot().0, BreakerState::HalfOpen);
        assert!(
            !b.allow(probe_time, &cfg),
            "second caller is rejected while the probe flies"
        );
        // Probe succeeds → closed, counters reset.
        b.on_success();
        assert_eq!(b.snapshot(), (BreakerState::Closed, 0));
        // Open again, probe again, and this time the probe fails → back
        // to open with a fresh cooldown.
        b.on_failure(probe_time, &cfg);
        b.on_failure(probe_time, &cfg);
        let probe2 = probe_time + cfg.open_cooldown;
        assert!(b.allow(probe2, &cfg));
        b.on_failure(probe2, &cfg);
        assert_eq!(b.snapshot().0, BreakerState::Open);
        assert!(!b.allow(probe2 + Duration::from_secs(1), &cfg));
    }

    #[test]
    fn half_open_admits_a_replacement_probe_after_a_stall() {
        let cfg = tiny_cfg();
        let b = Breaker::new();
        let t0 = Instant::now();
        b.on_failure(t0, &cfg);
        b.on_failure(t0, &cfg);
        let probe_time = t0 + cfg.open_cooldown;
        assert!(b.allow(probe_time, &cfg));
        // The probe never reports back; once the whole peer-path budget
        // has passed, a replacement is admitted.
        assert!(!b.allow(probe_time + cfg.total_deadline / 2, &cfg));
        assert!(b.allow(probe_time + cfg.total_deadline, &cfg));
    }

    /// A one-shot fake peer: accepts connections and answers each with
    /// the canned response until dropped.
    fn fake_peer(response: Vec<u8>) -> (String, std::thread::JoinHandle<usize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let mut served = 0;
            // The listener is leaked when the test ends; bound accepts
            // keep the thread from outliving the process noisily.
            listener
                .set_nonblocking(false)
                .expect("blocking accept loop");
            while let Ok((mut stream, _)) = listener.accept() {
                let mut buf = [0u8; 2048];
                let mut seen = Vec::new();
                while let Ok(n) = stream.read(&mut buf) {
                    if n == 0 {
                        break;
                    }
                    seen.extend_from_slice(&buf[..n]);
                    if find_header_end(&seen).is_some() {
                        break;
                    }
                }
                let _ = stream.write_all(&response);
                served += 1;
                if served >= 8 {
                    break;
                }
            }
            served
        });
        (addr, handle)
    }

    fn ok_response(body: &str) -> Vec<u8> {
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    }

    #[test]
    fn fetches_and_verifies_an_artifact_from_a_peer() {
        let key = crate::content_key("peer-hit", &[b"k"]);
        let text = StrCodec.encode(key, &"the artifact".to_string());
        let body = wire::envelope(key, &text).render();
        let (addr, _h) = fake_peer(ok_response(&body));
        let tier: PeerTier<String> = PeerTier::new(vec![addr], tiny_cfg());
        let got = tier.fetch(key, &StrCodec).expect("verified peer hit");
        assert_eq!(*got, "the artifact");
        assert_eq!(tier.statuses()[0].breaker, BreakerState::Closed);
    }

    #[test]
    fn clean_404_is_a_miss_and_keeps_the_breaker_closed() {
        let key = crate::content_key("peer-404", &[b"k"]);
        let resp =
            b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n".to_vec();
        let (addr, _h) = fake_peer(resp);
        let tier: PeerTier<String> = PeerTier::new(vec![addr], tiny_cfg());
        assert!(tier.fetch(key, &StrCodec).is_none());
        let s = &tier.statuses()[0];
        assert_eq!(
            (s.breaker, s.consecutive_failures),
            (BreakerState::Closed, 0)
        );
    }

    #[test]
    fn corrupt_body_fails_verification_and_degrades_to_miss() {
        let key = crate::content_key("peer-corrupt", &[b"k"]);
        // 200 with convincing-looking but unverifiable JSON.
        let (addr, _h) = fake_peer(ok_response(
            "{\"key\":\"beef\",\"sum\":\"f00d\",\"artifact\":\"x\"}",
        ));
        let tier: PeerTier<String> = PeerTier::new(vec![addr], tiny_cfg());
        assert!(tier.fetch(key, &StrCodec).is_none());
        assert_eq!(tier.statuses()[0].consecutive_failures, 1);
    }

    #[test]
    fn wrong_key_artifact_is_rejected_even_with_a_valid_sum() {
        // A peer that serves a *different* (internally consistent)
        // artifact than the one asked for must not poison the cache.
        let asked = crate::content_key("peer-swap", &[b"asked"]);
        let served = crate::content_key("peer-swap", &[b"served"]);
        let text = StrCodec.encode(served, &"wrong artifact".to_string());
        let body = wire::envelope(served, &text).render();
        let (addr, _h) = fake_peer(ok_response(&body));
        let tier: PeerTier<String> = PeerTier::new(vec![addr], tiny_cfg());
        assert!(tier.fetch(asked, &StrCodec).is_none());
    }

    #[test]
    fn dead_peer_opens_the_breaker_and_is_skipped() {
        // Grab a port that refuses connections: bind, read the port,
        // drop the listener.
        let refused = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let cfg = tiny_cfg(); // failure_threshold 2, retries 1 → one fetch opens it
        let tier: PeerTier<String> = PeerTier::new(vec![refused], cfg);
        let key = crate::content_key("peer-dead", &[b"k"]);
        let start = Instant::now();
        assert!(tier.fetch(key, &StrCodec).is_none());
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "refused connections must fail fast"
        );
        assert_eq!(tier.statuses()[0].breaker, BreakerState::Open);
        // Second fetch: the open breaker short-circuits — no attempts,
        // effectively instant.
        let start = Instant::now();
        assert!(tier.fetch(key, &StrCodec).is_none());
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn second_peer_serves_when_the_first_is_down() {
        let key = crate::content_key("peer-failover", &[b"k"]);
        let text = StrCodec.encode(key, &"from peer two".to_string());
        let body = wire::envelope(key, &text).render();
        let refused = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let (good, _h) = fake_peer(ok_response(&body));
        let tier: PeerTier<String> = PeerTier::new(vec![refused, good], tiny_cfg());
        let got = tier.fetch(key, &StrCodec).expect("failover hit");
        assert_eq!(*got, "from peer two");
    }

    #[test]
    fn truncated_content_length_body_is_an_error_not_a_hang() {
        let key = crate::content_key("peer-truncated", &[b"k"]);
        // Claims 500 bytes, sends 5, then closes.
        let resp =
            b"HTTP/1.1 200 OK\r\nContent-Length: 500\r\nConnection: close\r\n\r\nhello".to_vec();
        let (addr, _h) = fake_peer(resp);
        let cfg = tiny_cfg();
        let tier: PeerTier<String> = PeerTier::new(vec![addr], cfg.clone());
        let start = Instant::now();
        assert!(tier.fetch(key, &StrCodec).is_none());
        assert!(
            start.elapsed() < cfg.total_deadline + Duration::from_millis(500),
            "a lying peer costs at most the peer-path deadline"
        );
    }
}
