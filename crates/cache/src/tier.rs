//! Local storage tiers: the in-process LRU and the on-disk layer.

use crate::{CacheKey, CacheLayer, CacheTier, Codec, TierStatus};
use msc_ir::util::FxHashMap;
use parking_lot::Mutex;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Entry<A> {
    artifact: Arc<A>,
    last_used: u64,
}

struct Inner<A> {
    map: FxHashMap<CacheKey, Entry<A>>,
    tick: u64,
}

/// Bounded in-memory LRU tier. Capacity 0 disables the tier (every
/// fetch misses, every store is dropped).
pub struct MemoryTier<A> {
    capacity: usize,
    inner: Mutex<Inner<A>>,
    evictions: AtomicU64,
}

impl<A> MemoryTier<A> {
    /// A tier holding at most `capacity` artifacts.
    pub fn new(capacity: usize) -> Self {
        MemoryTier {
            capacity,
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                tick: 0,
            }),
            evictions: AtomicU64::new(0),
        }
    }

    /// Artifacts currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Read without touching recency and without counting anything —
    /// used by the export path, where a remote daemon scanning our
    /// artifacts must not reshuffle the local LRU order.
    pub fn peek(&self, key: CacheKey) -> Option<Arc<A>> {
        self.inner
            .lock()
            .map
            .get(&key)
            .map(|e| Arc::clone(&e.artifact))
    }
}

impl<A: Send + Sync> CacheTier<A> for MemoryTier<A> {
    fn layer(&self) -> CacheLayer {
        CacheLayer::Memory
    }

    fn fetch(&self, key: CacheKey, _codec: &dyn Codec<A>) -> Option<Arc<A>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(&key)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.artifact))
    }

    fn store(&self, key: CacheKey, artifact: &Arc<A>, _codec: &dyn Codec<A>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            Entry {
                artifact: Arc::clone(artifact),
                last_used: tick,
            },
        );
        while inner.map.len() > self.capacity {
            // O(n) victim scan; capacities are small (a cache of whole
            // compiled programs, not of cache lines).
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty map has a minimum");
            inner.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            msc_obs::count("cache.evict", 1);
        }
    }

    fn status(&self) -> TierStatus {
        TierStatus::Memory {
            entries: self.len(),
            capacity: self.capacity,
            evictions: self.evictions(),
        }
    }
}

/// On-disk tier: one text file per key under a shared directory. Writes
/// go through a unique temp file + rename — rename is atomic on POSIX,
/// so a concurrent reader (another process sharing the cache dir) sees
/// either the old artifact or the complete new one, never a torn write,
/// and concurrent writers cannot interleave. All I/O failures degrade
/// to misses: a full disk or read-only dir must never fail the compile
/// that produced the artifact.
pub struct DiskTier<A> {
    dir: PathBuf,
    _artifact: PhantomData<fn() -> A>,
}

impl<A> DiskTier<A> {
    /// A tier persisting under `dir` (created on first store).
    pub fn new(dir: PathBuf) -> Self {
        DiskTier {
            dir,
            _artifact: PhantomData,
        }
    }

    /// The file a key persists to.
    pub fn path(&self, key: CacheKey) -> PathBuf {
        disk_path(&self.dir, key)
    }

    /// Cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Raw file text for `key`, for the export path — the bytes on disk
    /// are already in interchange format, so serving them verbatim
    /// skips a decode/encode round-trip. The header magic is checked so
    /// a corrupt file exports as a miss rather than as garbage.
    pub fn read_raw(&self, key: CacheKey) -> Option<String> {
        let text = std::fs::read_to_string(self.path(key)).ok()?;
        text.starts_with("mscache v1\n").then_some(text)
    }
}

impl<A: Send + Sync> CacheTier<A> for DiskTier<A> {
    fn layer(&self) -> CacheLayer {
        CacheLayer::Disk
    }

    fn fetch(&self, key: CacheKey, codec: &dyn Codec<A>) -> Option<Arc<A>> {
        let text = std::fs::read_to_string(self.path(key)).ok()?;
        codec.decode(&text).map(Arc::new)
    }

    fn store(&self, key: CacheKey, artifact: &Arc<A>, codec: &dyn Codec<A>) {
        let _ = std::fs::create_dir_all(&self.dir);
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            key.hex(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, codec.encode(key, artifact)).is_ok() {
            if std::fs::rename(&tmp, self.path(key)).is_ok() {
                msc_obs::count("cache.disk_write", 1);
            } else {
                let _ = std::fs::remove_file(&tmp);
            }
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    fn status(&self) -> TierStatus {
        TierStatus::Disk {
            dir: self.dir.display().to_string(),
        }
    }
}

fn disk_path(dir: &Path, key: CacheKey) -> PathBuf {
    dir.join(format!("{}.mscache", key.hex()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::StrCodec;

    #[test]
    fn memory_tier_is_lru_and_counts_evictions() {
        let tier: MemoryTier<String> = MemoryTier::new(2);
        let keys: Vec<CacheKey> = (0..3)
            .map(|i| crate::content_key("lru", &[&[i as u8]]))
            .collect();
        tier.store(keys[0], &Arc::new("a".into()), &StrCodec);
        tier.store(keys[1], &Arc::new("b".into()), &StrCodec);
        // Touch key 0 so key 1 becomes the LRU victim.
        assert!(tier.fetch(keys[0], &StrCodec).is_some());
        tier.store(keys[2], &Arc::new("c".into()), &StrCodec);
        assert_eq!(tier.len(), 2);
        assert!(tier.fetch(keys[0], &StrCodec).is_some());
        assert!(tier.fetch(keys[1], &StrCodec).is_none());
        assert!(tier.fetch(keys[2], &StrCodec).is_some());
        assert_eq!(tier.evictions(), 1);
    }

    #[test]
    fn zero_capacity_disables_the_memory_tier() {
        let tier: MemoryTier<String> = MemoryTier::new(0);
        let key = crate::content_key("zero", &[b"k"]);
        tier.store(key, &Arc::new("a".into()), &StrCodec);
        assert!(tier.fetch(key, &StrCodec).is_none());
        assert_eq!(tier.len(), 0);
    }

    #[test]
    fn disk_tier_round_trips_and_rejects_corrupt_raw_reads() {
        let dir = std::env::temp_dir().join(format!("msc-cache-disk-tier-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tier: DiskTier<String> = DiskTier::new(dir.clone());
        let key = crate::content_key("disk", &[b"k"]);
        assert!(tier.fetch(key, &StrCodec).is_none());
        tier.store(key, &Arc::new("payload".into()), &StrCodec);
        assert_eq!(
            tier.fetch(key, &StrCodec).as_deref(),
            Some(&"payload".to_string())
        );
        assert!(tier.read_raw(key).expect("raw").starts_with("mscache v1\n"));
        // A file that lost its magic is not exportable.
        std::fs::write(tier.path(key), "garbage").unwrap();
        assert!(tier.read_raw(key).is_none());
        assert!(tier.fetch(key, &StrCodec).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
