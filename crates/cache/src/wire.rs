//! The peer transfer envelope.
//!
//! `GET /artifact/{key}` responds with a JSON object
//! `{"key": <hex>, "sum": <hex>, "artifact": <interchange text>}`.
//! The cache key itself cannot be recomputed from the body (it hashes
//! the *source* and options, which the artifact does not carry), so
//! end-to-end integrity comes from `sum`: a content-key re-hash over
//! the key and the artifact text, computed by the serving node and
//! recomputed by the fetcher. A corrupt, truncated, or substituted body
//! fails one of three gates — key mismatch, sum mismatch, or codec
//! parse failure — and degrades to a miss.

use crate::{content_key, CacheKey};
use msc_obs::json::Json;

/// The checksum the envelope carries: a content-key over the requested
/// key's hex rendering and the artifact interchange text.
pub fn checksum(key: CacheKey, artifact_text: &str) -> String {
    content_key(
        "artifact-wire",
        &[key.hex().as_bytes(), artifact_text.as_bytes()],
    )
    .hex()
}

/// Build the response envelope for a serving node.
pub fn envelope(key: CacheKey, artifact_text: &str) -> Json {
    Json::obj([
        ("key", Json::from(key.hex())),
        ("sum", Json::from(checksum(key, artifact_text))),
        ("artifact", Json::from(artifact_text)),
    ])
}

/// Verify a fetched envelope body against the key we asked for and
/// return the artifact interchange text. Any malformation — unparsable
/// JSON, missing fields, a key other than the requested one, or a sum
/// that does not re-hash — yields `None`.
pub fn open(requested: CacheKey, body: &str) -> Option<String> {
    let json = msc_obs::json::parse(body).ok()?;
    let key = json.get("key")?.as_str()?;
    let sum = json.get("sum")?.as_str()?;
    let artifact = json.get("artifact")?.as_str()?;
    if key != requested.hex() || sum != checksum(requested, artifact) {
        return None;
    }
    Some(artifact.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips() {
        let key = content_key("wire", &[b"k"]);
        let body = envelope(key, "mscache v1\nkey x\npayload\n").render();
        assert_eq!(
            open(key, &body).as_deref(),
            Some("mscache v1\nkey x\npayload\n")
        );
    }

    #[test]
    fn open_rejects_tampering() {
        let key = content_key("wire", &[b"k"]);
        let other = content_key("wire", &[b"other"]);
        let text = "mscache v1\nkey x\npayload\n";
        let good = envelope(key, text).render();
        // Wrong key requested (peer served a different artifact).
        assert_eq!(open(other, &good), None);
        // Flipped byte in the artifact body.
        let tampered = good.replace("payload", "paXload");
        assert_eq!(open(key, &tampered), None);
        // Sum stripped or corrupted.
        let bad_sum = envelope(key, text)
            .render()
            .replace(&checksum(key, text), &checksum(other, text));
        assert_eq!(open(key, &bad_sum), None);
        // Not JSON at all / truncated.
        assert_eq!(open(key, "not json"), None);
        assert_eq!(open(key, &good[..good.len() / 2]), None);
        assert_eq!(open(key, "{}"), None);
    }
}
