//! Tiered content-addressed compile cache.
//!
//! A cache key is a 128-bit SipHash-2-4 fingerprint of everything that
//! determines a compiled output. The artifacts behind those keys live in
//! *tiers*, each implementing [`CacheTier`]:
//!
//! - [`MemoryTier`] — bounded in-process LRU.
//! - [`DiskTier`] — one text file per key, written via an atomic
//!   temp-file + rename so concurrent readers and writers (other
//!   processes sharing the directory) never observe a torn artifact.
//! - [`PeerTier`] — fetches artifacts from sibling daemons over the
//!   std-only HTTP protocol (`GET /artifact/{key}`), with per-peer
//!   deadlines, bounded retry, a circuit breaker per peer, and
//!   content-key re-hash verification of every fetched body.
//!
//! [`TieredCache`] composes them into the lookup path
//! memory → disk → peers, with hits promoted into the faster tiers.
//! The crate is generic over the artifact type `A`; serialization is
//! delegated to a caller-supplied [`Codec`] so the engine's artifact
//! format (and its `CostModel`-dependent deserializer) stays in the
//! engine crate without a dependency cycle.

pub mod peer;
pub mod tier;
pub mod wire;

pub use peer::{BreakerState, PeerConfig, PeerStatus, PeerTier};
pub use tier::{DiskTier, MemoryTier};

use msc_codegen::GenOptions;
use msc_core::ConvertOptions;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A 128-bit content fingerprint (the two words of a SipHash-2-4-128).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    hi: u64,
    lo: u64,
}

impl CacheKey {
    /// Hex rendering, used as the on-disk file stem and the
    /// `/artifact/{key}` path segment.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parse the canonical rendering produced by [`hex`](Self::hex):
    /// exactly 32 lowercase hex characters. Anything else — wrong
    /// length, uppercase, stray bytes — is `None`, so HTTP handlers can
    /// reject malformed keys before touching any tier.
    pub fn from_hex(s: &str) -> Option<CacheKey> {
        if s.len() != 32 || !s.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(CacheKey { hi, lo })
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Fingerprint one compilation request. Options are folded in through
/// their `Debug` rendering: every field participates, and adding a field
/// to either options struct automatically invalidates old keys. The
/// `0xfe` separators cannot occur inside the UTF-8 fields, so the
/// encoding is unambiguous.
pub fn cache_key(
    source: &str,
    convert: &ConvertOptions,
    gen: &GenOptions,
    optimize: bool,
    minimize: bool,
) -> CacheKey {
    let mut msg = Vec::with_capacity(source.len() + 256);
    msg.extend_from_slice(source.as_bytes());
    msg.push(0xfe);
    msg.extend_from_slice(format!("{convert:?}").as_bytes());
    msg.push(0xfe);
    msg.extend_from_slice(format!("{gen:?}").as_bytes());
    msg.push(optimize as u8);
    msg.push(minimize as u8);
    let (hi, lo) = siphash128(0x9e37_79b9_7f4a_7c15, 0xd1b5_4a32_d192_ed03, &msg);
    CacheKey { hi, lo }
}

/// Fingerprint arbitrary content for a non-MIMDC domain (e.g. the regex
/// front-end keys compiled patterns by `content_key("regex", ...)`). The
/// domain tag and a length prefix per part make the encoding unambiguous
/// and keep every domain's keyspace disjoint from [`cache_key`]'s —
/// its `0xfe`-separated encoding never starts with an `0xff` byte, and
/// this one always does.
pub fn content_key(domain: &str, parts: &[&[u8]]) -> CacheKey {
    let mut msg = Vec::with_capacity(64 + parts.iter().map(|p| p.len() + 8).sum::<usize>());
    msg.push(0xff);
    msg.extend_from_slice(&(domain.len() as u64).to_le_bytes());
    msg.extend_from_slice(domain.as_bytes());
    for part in parts {
        msg.extend_from_slice(&(part.len() as u64).to_le_bytes());
        msg.extend_from_slice(part);
    }
    let (hi, lo) = siphash128(0x9e37_79b9_7f4a_7c15, 0xd1b5_4a32_d192_ed03, &msg);
    CacheKey { hi, lo }
}

/// SipHash-2-4 with 128-bit output (reference construction from the
/// SipHash paper / `siphash.c`). Vendored because the cache needs a
/// fingerprint whose two words mix independently — deriving two 64-bit
/// lanes by reseeding a non-seed-robust hash (Fx) leaves them correlated
/// — and the container has no 128-bit hash crate to lean on.
fn siphash128(k0: u64, k1: u64, data: &[u8]) -> (u64, u64) {
    #[inline]
    fn round(v: &mut [u64; 4]) {
        v[0] = v[0].wrapping_add(v[1]);
        v[1] = v[1].rotate_left(13);
        v[1] ^= v[0];
        v[0] = v[0].rotate_left(32);
        v[2] = v[2].wrapping_add(v[3]);
        v[3] = v[3].rotate_left(16);
        v[3] ^= v[2];
        v[0] = v[0].wrapping_add(v[3]);
        v[3] = v[3].rotate_left(21);
        v[3] ^= v[0];
        v[2] = v[2].wrapping_add(v[1]);
        v[1] = v[1].rotate_left(17);
        v[1] ^= v[2];
        v[2] = v[2].rotate_left(32);
    }
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d ^ 0xee, // 128-bit output variant marker
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("exact 8-byte chunk"));
        v[3] ^= m;
        round(&mut v);
        round(&mut v);
        v[0] ^= m;
    }
    let rem = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rem.len()].copy_from_slice(rem);
    last[7] = data.len() as u8;
    let m = u64::from_le_bytes(last);
    v[3] ^= m;
    round(&mut v);
    round(&mut v);
    v[0] ^= m;
    v[2] ^= 0xee;
    for _ in 0..4 {
        round(&mut v);
    }
    let hi = v[0] ^ v[1] ^ v[2] ^ v[3];
    v[1] ^= 0xdd;
    for _ in 0..4 {
        round(&mut v);
    }
    let lo = v[0] ^ v[1] ^ v[2] ^ v[3];
    (hi, lo)
}

/// Where a cache hit came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLayer {
    /// In-memory LRU.
    Memory,
    /// On-disk artifact, reloaded (and promoted into memory).
    Disk,
    /// Fetched from a sibling daemon (and promoted into memory + disk).
    Peer,
}

/// Counter snapshot for `--stats` output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// In-memory hits.
    pub hits: u64,
    /// Disk hits (artifact reloaded and promoted to memory).
    pub disk_hits: u64,
    /// Verified artifacts fetched from peer daemons (promoted locally).
    pub peer_hits: u64,
    /// Lookups that found nothing anywhere.
    pub misses: u64,
    /// Artifacts inserted after a fresh compile.
    pub insertions: u64,
    /// LRU evictions from the memory layer.
    pub evictions: u64,
}

/// Artifact (de)serialization, supplied by the caller per lookup. The
/// engine's decoder needs a `CostModel` to reparse assembly; passing the
/// codec by reference per call lets it borrow that context instead of
/// the cache owning it.
pub trait Codec<A>: Sync {
    /// Serialize an artifact to the tier interchange text (the same
    /// format the disk tier persists and the peer protocol ships).
    fn encode(&self, key: CacheKey, artifact: &A) -> String;
    /// Parse the interchange text; any malformation yields `None`
    /// (treated as a miss — the artifact is simply rebuilt).
    fn decode(&self, text: &str) -> Option<A>;
}

/// One storage tier. Implementations must tolerate arbitrary
/// concurrency and degrade failures to misses — a sick tier never fails
/// a compile, it just stops saving work.
pub trait CacheTier<A>: Send + Sync {
    /// Which layer this tier reports hits as.
    fn layer(&self) -> CacheLayer;
    /// Look up `key`; `None` is a miss at this tier.
    fn fetch(&self, key: CacheKey, codec: &dyn Codec<A>) -> Option<Arc<A>>;
    /// Store an artifact (promotion or fresh insert). Best effort.
    fn store(&self, key: CacheKey, artifact: &Arc<A>, codec: &dyn Codec<A>);
    /// Introspection snapshot for `/healthz`.
    fn status(&self) -> TierStatus;
}

/// Point-in-time tier introspection, surfaced on `/healthz`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TierStatus {
    /// The in-memory LRU.
    Memory {
        /// Artifacts currently resident.
        entries: usize,
        /// Configured capacity (0 = layer disabled).
        capacity: usize,
        /// Lifetime LRU evictions.
        evictions: u64,
    },
    /// The on-disk layer.
    Disk {
        /// Cache directory.
        dir: String,
    },
    /// The peer-fetch layer.
    Peers {
        /// Per-peer breaker snapshots, in configured order.
        peers: Vec<PeerStatus>,
        /// Budget for one whole peer-path traversal.
        total_deadline: Duration,
    },
}

/// The composed lookup path: memory → disk → peers, hits promoted into
/// every faster tier, stats accounted at this level so the
/// `probe`/`note_miss` split (singleflight charges one miss per
/// coalesced group) keeps the invariant
/// `hits + disk_hits + peer_hits + misses == resolved lookups`.
pub struct TieredCache<A> {
    memory: MemoryTier<A>,
    disk: Option<DiskTier<A>>,
    peers: Option<PeerTier<A>>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    peer_hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
}

impl<A: Send + Sync> TieredCache<A> {
    /// A cache holding at most `capacity` artifacts in memory (0 disables
    /// the memory layer), persisting to `disk_dir` when given (the
    /// directory is created on first use; I/O failures degrade to
    /// misses), with no peer tier.
    pub fn new(capacity: usize, disk_dir: Option<PathBuf>) -> Self {
        Self::with_peers(capacity, disk_dir, Vec::new(), PeerConfig::default())
    }

    /// [`new`](Self::new) plus a peer tier fetching from `peers`
    /// (`host:port` each); an empty list disables the tier.
    pub fn with_peers(
        capacity: usize,
        disk_dir: Option<PathBuf>,
        peers: Vec<String>,
        cfg: PeerConfig,
    ) -> Self {
        TieredCache {
            memory: MemoryTier::new(capacity),
            disk: disk_dir.map(DiskTier::new),
            peers: if peers.is_empty() {
                None
            } else {
                Some(PeerTier::new(peers, cfg))
            },
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            peer_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    fn local_tiers(&self) -> impl Iterator<Item = &dyn CacheTier<A>> {
        std::iter::once(&self.memory as &dyn CacheTier<A>)
            .chain(self.disk.iter().map(|d| d as &dyn CacheTier<A>))
    }

    /// Look up `key` in the *local* tiers (memory, then disk), promoting
    /// a hit into every faster tier. Does not record a miss and does not
    /// touch the network: the singleflight layer probes first and only
    /// the elected leader pays for remote fetches and charges the miss.
    pub fn probe(&self, key: CacheKey, codec: &dyn Codec<A>) -> Option<(Arc<A>, CacheLayer)> {
        for (depth, tier) in self.local_tiers().enumerate() {
            if let Some(artifact) = tier.fetch(key, codec) {
                let layer = tier.layer();
                match layer {
                    CacheLayer::Memory => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        msc_obs::count("cache.hit", 1);
                    }
                    CacheLayer::Disk => {
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        msc_obs::count("cache.disk_hit", 1);
                    }
                    CacheLayer::Peer => unreachable!("peer tier is not a local tier"),
                }
                for (d, faster) in self.local_tiers().enumerate() {
                    if d < depth {
                        faster.store(key, &artifact, codec);
                    }
                }
                return Some((artifact, layer));
            }
        }
        None
    }

    /// Consult the peer tier for `key`; a verified hit is promoted into
    /// memory and disk. Runs the full robustness stack (deadlines,
    /// retry, breakers, re-hash verification); with no peers configured
    /// it returns `None` immediately.
    pub fn fetch_remote(&self, key: CacheKey, codec: &dyn Codec<A>) -> Option<Arc<A>> {
        let peers = self.peers.as_ref()?;
        let artifact = peers.fetch(key, codec)?;
        self.peer_hits.fetch_add(1, Ordering::Relaxed);
        msc_obs::count("cache.peer_hit", 1);
        if let Some(disk) = &self.disk {
            disk.store(key, &artifact, codec);
        }
        self.memory.store(key, &artifact, codec);
        Some(artifact)
    }

    /// Record one miss. Paired with [`probe`](Self::probe): the
    /// singleflight leader calls this exactly once per coalesced group,
    /// after the peer path (if any) also came up empty.
    pub fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        msc_obs::count("cache.miss", 1);
    }

    /// Insert a freshly compiled artifact into the local tiers.
    pub fn insert(&self, key: CacheKey, artifact: Arc<A>, codec: &dyn Codec<A>) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
        msc_obs::count("cache.insert", 1);
        if let Some(disk) = &self.disk {
            disk.store(key, &artifact, codec);
        }
        self.memory.store(key, &artifact, codec);
    }

    /// Serialize a locally cached artifact for the peer protocol:
    /// memory first (encoded on the fly), else the raw disk file text.
    /// Never consults peers (no fetch recursion between daemons) and
    /// counts nothing — an export is not a lookup.
    pub fn export(&self, key: CacheKey, codec: &dyn Codec<A>) -> Option<String> {
        if let Some(artifact) = self.memory.peek(key) {
            return Some(codec.encode(key, &artifact));
        }
        self.disk.as_ref()?.read_raw(key)
    }

    /// Current counter values.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            peer_hits: self.peer_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.memory.evictions(),
        }
    }

    /// Number of artifacts currently in memory.
    pub fn len(&self) -> usize {
        self.memory.len()
    }

    /// True when the memory layer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when a peer tier is configured.
    pub fn has_peers(&self) -> bool {
        self.peers.is_some()
    }

    /// Status of every configured tier, fastest first.
    pub fn tier_status(&self) -> Vec<TierStatus> {
        let mut out: Vec<TierStatus> = self.local_tiers().map(|t| t.status()).collect();
        if let Some(peers) = &self.peers {
            out.push(CacheTier::<A>::status(peers));
        }
        out
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// Minimal artifact codec for tier tests: the payload is a `String`,
    /// framed with the same `mscache v1` magic the real format uses (the
    /// disk tier's raw-export path insists on it).
    pub struct StrCodec;

    impl Codec<String> for StrCodec {
        fn encode(&self, key: CacheKey, artifact: &String) -> String {
            format!("mscache v1\nkey {}\n{artifact}", key.hex())
        }

        fn decode(&self, text: &str) -> Option<String> {
            let rest = text.strip_prefix("mscache v1\n")?;
            let (key_line, body) = rest.split_once('\n')?;
            key_line.strip_prefix("key ")?;
            Some(body.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::StrCodec;
    use super::*;

    #[test]
    fn siphash128_matches_reference_vectors() {
        // `vectors_sip128` from the SipHash reference implementation,
        // key = 00 01 02 .. 0f, read as two little-endian words.
        let k0 = 0x0706_0504_0302_0100;
        let k1 = 0x0f0e_0d0c_0b0a_0908;
        assert_eq!(
            siphash128(k0, k1, &[]),
            (0xe6a8_25ba_047f_81a3, 0x9302_55c7_1472_f66d)
        );
        assert_eq!(
            siphash128(k0, k1, &[0x00]),
            (0x44af_996b_d8c1_87da, 0x45fc_229b_1159_7634)
        );
        let msg: Vec<u8> = (0..15).collect(); // crosses the 8-byte block edge
        assert_eq!(
            siphash128(k0, k1, &msg),
            (0x11a8_b033_99e9_9354, 0xd9c3_cf97_0fec_087e)
        );
    }

    #[test]
    fn key_is_stable_and_content_sensitive() {
        let c = ConvertOptions::base();
        let g = GenOptions::default();
        let k1 = cache_key("main() {}", &c, &g, false, false);
        let k2 = cache_key("main() {}", &c, &g, false, false);
        assert_eq!(k1, k2);
        assert_ne!(k1, cache_key("main() { }", &c, &g, false, false));
        assert_ne!(k1, cache_key("main() {}", &c, &g, true, false));
        let mut c2 = c.clone();
        c2.max_meta_states = 7;
        assert_ne!(k1, cache_key("main() {}", &c2, &g, false, false));
        let g2 = GenOptions { csi: false, ..g };
        assert_ne!(k1, cache_key("main() {}", &c, &g2, false, false));
    }

    #[test]
    fn from_hex_round_trips_and_rejects_malformed() {
        let key = content_key("t", &[b"x"]);
        assert_eq!(CacheKey::from_hex(&key.hex()), Some(key));
        for bad in [
            "",
            "abc",
            "zz000000000000000000000000000000",     // non-hex
            "ABCDEF0000000000000000000000000000",   // wrong length
            "ABCDEF00000000000000000000000000",     // uppercase
            "0123456789abcdef0123456789abcde",      // 31 chars
            "0123456789abcdef0123456789abcdef0",    // 33 chars
            "0123456789abcdef0123456789abcd\u{e9}", // non-ASCII
            " 0123456789abcdef0123456789abcde",     // leading space
            "../../../../../../../../etc/pass",     // traversal junk
        ] {
            assert_eq!(CacheKey::from_hex(bad), None, "must reject {bad:?}");
        }
    }

    #[test]
    fn tiered_probe_promotes_disk_hits_to_memory() {
        let dir = std::env::temp_dir().join(format!("msc-cache-tiered-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = content_key("tiered", &[b"a"]);
        {
            let cache: TieredCache<String> = TieredCache::new(4, Some(dir.clone()));
            cache.insert(key, Arc::new("payload".to_string()), &StrCodec);
        }
        let cache: TieredCache<String> = TieredCache::new(4, Some(dir.clone()));
        let (artifact, layer) = cache.probe(key, &StrCodec).expect("disk hit");
        assert_eq!(layer, CacheLayer::Disk);
        assert_eq!(*artifact, "payload");
        let (_, layer) = cache
            .probe(key, &StrCodec)
            .expect("memory hit after promotion");
        assert_eq!(layer, CacheLayer::Memory);
        let s = cache.stats();
        assert_eq!((s.hits, s.disk_hits, s.misses), (1, 1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_prefers_memory_then_raw_disk_and_never_counts() {
        let dir = std::env::temp_dir().join(format!("msc-cache-export-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = content_key("export", &[b"a"]);
        let cache: TieredCache<String> = TieredCache::new(4, Some(dir.clone()));
        assert_eq!(cache.export(key, &StrCodec), None, "cold cache has nothing");
        cache.insert(key, Arc::new("body".to_string()), &StrCodec);
        let from_memory = cache.export(key, &StrCodec).expect("memory export");
        assert!(from_memory.starts_with("mscache v1\n"));
        // Cold memory, warm disk: the raw file text is served verbatim.
        let cold: TieredCache<String> = TieredCache::new(4, Some(dir.clone()));
        assert_eq!(
            cold.export(key, &StrCodec).as_deref(),
            Some(from_memory.as_str())
        );
        let s = cold.stats();
        assert_eq!(
            (s.hits, s.disk_hits, s.peer_hits, s.misses),
            (0, 0, 0, 0),
            "exports are not lookups"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tier_status_reports_each_configured_tier() {
        let cache: TieredCache<String> =
            TieredCache::with_peers(8, None, vec!["127.0.0.1:1".into()], PeerConfig::default());
        let status = cache.tier_status();
        assert_eq!(status.len(), 2);
        assert!(matches!(
            status[0],
            TierStatus::Memory {
                entries: 0,
                capacity: 8,
                ..
            }
        ));
        match &status[1] {
            TierStatus::Peers { peers, .. } => {
                assert_eq!(peers.len(), 1);
                assert_eq!(peers[0].addr, "127.0.0.1:1");
                assert_eq!(peers[0].breaker, BreakerState::Closed);
            }
            other => panic!("expected peer tier status, got {other:?}"),
        }
    }
}
