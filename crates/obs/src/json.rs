//! Minimal dependency-free JSON tree: parser, renderer, and accessors.
//!
//! [`jsonl`](crate::jsonl) started with a private "reader for our own
//! writer"; the service layer (`msc-serve`) needs real request/response
//! JSON, so the implementation lives here as one shared module: the
//! JSONL reader is now a thin shim over [`parse`], and `msc-serve`
//! builds its whole wire format from [`Json`].
//!
//! Scope is deliberately small: UTF-8 text in, a [`Json`] tree out, no
//! streaming, no serde-style derive. Numbers are held as `f64`, which is
//! exact for integers up to 2⁵³ — far beyond any counter this repo
//! serializes — and object keys keep their insertion order.
//!
//! ```
//! use msc_obs::json::{parse, Json};
//!
//! let v = parse(r#"{"name":"cache.hit","delta":3,"tags":["a","b"]}"#).unwrap();
//! assert_eq!(v.get("name").unwrap().as_str(), Some("cache.hit"));
//! assert_eq!(v.get("delta").unwrap().as_u64(), Some(3));
//! let round = parse(&v.render()).unwrap();
//! assert_eq!(round, v);
//! ```

use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order (lookups are linear — the
    /// objects this repo exchanges have a handful of keys).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Member of an object by key (`None` for non-objects and missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as an exact signed integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialize to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64);
        self.render_into(&mut out);
        out
    }

    /// Serialize into an existing buffer.
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Inf; null is the least-wrong spelling.
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9.2e18 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// JSON escape `s` into `out` (quotes, backslashes, control characters).
/// Shared with the [`jsonl`](crate::jsonl) writer.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth bound — recursion is bounded so hostile input (the
/// serve layer parses bytes off a socket) cannot blow the stack.
const MAX_DEPTH: usize = 64;

/// Parse one JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes (valid UTF-8 by construction,
            // since the input is a &str and we only split at ASCII).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("splitting a str at ASCII boundaries preserves UTF-8"),
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    char::from_u32(
                                        0x10000 + ((code - 0xd800) << 10) + (lo - 0xdc00),
                                    )
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&code) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Read and consume 4 hex digits starting at `pos`.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures_in_order() {
        let v = parse(r#"{"b":[1,2,{"c":null}],"a":true}"#).unwrap();
        let pairs = v.as_obj().unwrap();
        assert_eq!(pairs[0].0, "b", "insertion order preserved");
        assert_eq!(pairs[1].0, "a");
        assert_eq!(v.get("a").unwrap().as_bool(), Some(true));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("c"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "plain",
            "quo\"te",
            "back\\slash",
            "tab\there",
            "nl\nthere",
            "nul\u{0}",
        ] {
            let rendered = Json::Str(s.into()).render();
            assert_eq!(parse(&rendered).unwrap().as_str(), Some(s), "{rendered}");
        }
        // Unicode escapes, including a surrogate pair.
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn renderer_round_trips_numbers() {
        for v in [
            Json::Num(0.0),
            Json::Num(7.0),
            Json::Num(-12.0),
            Json::Num(3.25),
            Json::from(1u64 << 52),
        ] {
            assert_eq!(parse(&v.render()).unwrap(), v);
        }
        assert_eq!(Json::Num(7.0).render(), "7", "integers render without .0");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "[01abc]",
            "nul",
            "\"bad \u{1} ctl\"",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        let err = parse(&deep).unwrap_err();
        assert_eq!(err.message, "nesting too deep");
        // A depth within bounds is fine.
        let ok = "[".repeat(32) + &"]".repeat(32);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn accessor_type_mismatches_are_none() {
        let v = parse(r#"{"n":-1,"f":1.5,"s":"x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), None, "negative is not u64");
        assert_eq!(v.get("n").unwrap().as_i64(), Some(-1));
        assert_eq!(v.get("f").unwrap().as_u64(), None, "fractional is not u64");
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("k"), None, "get on non-object");
    }

    #[test]
    fn obj_builder_and_froms() {
        let v = Json::obj([
            ("ok", Json::from(true)),
            ("n", Json::from(3u64)),
            ("msg", Json::from("hello")),
        ]);
        assert_eq!(v.render(), r#"{"ok":true,"n":3,"msg":"hello"}"#);
    }
}
