//! # msc-obs — zero-cost structured tracing and metrics
//!
//! Every hot layer of the pipeline (the core converter, the parallel
//! engine, the compile cache, the SIMD machine) emits typed events through
//! this crate instead of keeping one-off stats structs. The design goal is
//! **true zero cost when nobody is listening**: every emit helper first
//! loads a single static [`AtomicBool`] (relaxed) and returns immediately
//! when no subscriber is installed, so instrumented code paths run within
//! measurement noise of uninstrumented ones (pinned by the `obs_overhead`
//! bench in `msc-bench`).
//!
//! ## Model
//!
//! * an [`Event`] is one observation: a named [`Event::Count`] increment,
//!   a named [`Event::Value`] sample (histogram material, with an optional
//!   integer `index` such as a block id), or a finished [`Event::Span`]
//!   with its monotonic wall-clock duration;
//! * a [`Subscriber`] receives events. [`Registry`] aggregates them into
//!   named u64 counters, log₂-bucketed histograms, and span timing sums;
//!   [`JsonlSink`] streams them as one JSON object per line; [`Fanout`]
//!   tees to several subscribers;
//! * [`install`] sets the process-global subscriber and returns an RAII
//!   [`InstallGuard`]. Installation is exclusive: a second `install` blocks
//!   until the first guard drops, which conveniently serializes tests that
//!   observe global state.
//!
//! ## Emitting
//!
//! ```
//! let registry = std::sync::Arc::new(msc_obs::Registry::new());
//! {
//!     let _guard = msc_obs::install(registry.clone());
//!     msc_obs::count("demo.widgets", 3);
//!     msc_obs::value("demo.queue_depth", 17);
//!     {
//!         let _span = msc_obs::span("demo.phase");
//!         // ... timed work ...
//!     }
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("demo.widgets"), 3);
//! assert_eq!(snap.hist("demo.queue_depth").unwrap().count, 1);
//! assert_eq!(snap.span("demo.phase").unwrap().count, 1);
//! ```
//!
//! With no subscriber installed the three emit calls above compile down to
//! a relaxed load and a branch.
//!
//! ## Naming convention
//!
//! Dotted lowercase paths, `layer.thing`: `convert.fanout`, `cache.hit`,
//! `engine.shard_contention`, `simd.dispatch_live`. Adding a counter to an
//! instrumented crate is one line at the emission site plus (optionally) a
//! row in DESIGN.md §10's schema table — the registry and sinks pick up
//! new names automatically.

pub mod json;
pub mod jsonl;

pub use jsonl::JsonlSink;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;

/// One observation flowing from an instrumented layer to the subscriber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A named monotonic counter increment.
    Count {
        /// Dotted metric name (`cache.hit`).
        name: &'static str,
        /// Increment (usually 1).
        delta: u64,
    },
    /// A named point sample — histogram material. `index` distinguishes
    /// sub-series within one name (e.g. a meta-block id for per-block
    /// live-PE histograms); aggregating subscribers may ignore it, but the
    /// JSONL sink preserves it for offline slicing.
    Value {
        /// Dotted metric name (`simd.dispatch_live`).
        name: &'static str,
        /// Sub-series index (0 when unused).
        index: u64,
        /// The sampled value.
        value: u64,
    },
    /// A finished span: a named region with its monotonic duration.
    Span {
        /// Dotted span name (`convert.run`).
        name: &'static str,
        /// Wall-clock nanoseconds from [`span`] to guard drop.
        nanos: u64,
    },
}

impl Event {
    /// The metric name, whatever the variant.
    pub fn name(&self) -> &'static str {
        match self {
            Event::Count { name, .. } | Event::Value { name, .. } | Event::Span { name, .. } => {
                name
            }
        }
    }
}

/// Receives events while installed. Implementations must be cheap enough
/// to sit on hot paths *when observability is on*; the off path never
/// reaches them.
pub trait Subscriber: Send + Sync {
    /// Handle one event.
    fn event(&self, event: &Event);
}

/// The zero-cost gate: emit helpers return immediately while this is
/// false. Only [`install`] / [`InstallGuard::drop`] write it.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed subscriber. Read-locked per event (only when enabled);
/// write-locked only by install/uninstall.
static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

/// Serializes installations: the guard of the current installation holds
/// this lock, so a concurrent `install` blocks until it drops.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

/// True when a subscriber is installed. Inlined relaxed load — this is the
/// whole cost of instrumentation when observability is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install `subscriber` as the process-global event sink until the
/// returned guard drops. Blocks if another installation is active.
pub fn install(subscriber: Arc<dyn Subscriber>) -> InstallGuard {
    let lock = INSTALL_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    *SUBSCRIBER.write().unwrap_or_else(|p| p.into_inner()) = Some(subscriber);
    ENABLED.store(true, Ordering::SeqCst);
    InstallGuard { _lock: lock }
}

/// RAII handle for an installation; dropping it uninstalls the subscriber
/// and re-arms the zero-cost fast path.
pub struct InstallGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        *SUBSCRIBER.write().unwrap_or_else(|p| p.into_inner()) = None;
    }
}

/// Deliver an event to the installed subscriber. Out-of-line: the inline
/// emit helpers only pay for the call once [`enabled`] says so.
#[cold]
fn dispatch(event: &Event) {
    let guard = SUBSCRIBER.read().unwrap_or_else(|p| p.into_inner());
    if let Some(sub) = guard.as_ref() {
        sub.event(event);
    }
}

/// Increment the named counter by `delta` (no-op unless a subscriber is
/// installed).
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if enabled() {
        dispatch(&Event::Count { name, delta });
    }
}

/// Record a point sample for the named series (no-op unless a subscriber
/// is installed).
#[inline]
pub fn value(name: &'static str, value: u64) {
    if enabled() {
        dispatch(&Event::Value {
            name,
            index: 0,
            value,
        });
    }
}

/// [`value`] with an explicit sub-series index (e.g. a block id).
#[inline]
pub fn sample(name: &'static str, index: u64, value: u64) {
    if enabled() {
        dispatch(&Event::Value { name, index, value });
    }
}

/// Start a timed span; the returned guard emits [`Event::Span`] with the
/// elapsed monotonic time when dropped. When observability is off, no
/// clock is read and drop is a no-op.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

/// Guard returned by [`span`]; emits the duration on drop.
#[must_use = "a span measures the region until the guard drops"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            dispatch(&Event::Span {
                name: self.name,
                nanos: start.elapsed().as_nanos() as u64,
            });
        }
    }
}

/// Number of log₂ buckets in a [`Hist`]: bucket *i* counts values whose
/// bit length is *i* (bucket 0 is the value 0).
pub const HIST_BUCKETS: usize = 65;

/// Aggregated samples of one [`Event::Value`] series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Log₂ buckets: `buckets[i]` counts samples with bit length `i`.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Hist {
    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[(64 - v.leading_zeros()) as usize] += 1;
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Aggregated timings of one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed spans.
    pub count: u64,
    /// Total nanoseconds across them.
    pub total_nanos: u64,
    /// Longest single span.
    pub max_nanos: u64,
}

/// A thread-safe aggregating subscriber: counters, histograms, and span
/// stats keyed by metric name. Clone-free reads come out as a
/// [`MetricsSnapshot`].
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Hist>,
    spans: BTreeMap<&'static str, SpanStat>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event directly (also reachable via [`Subscriber`]).
    pub fn record(&self, event: &Event) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        match *event {
            Event::Count { name, delta } => *inner.counters.entry(name).or_insert(0) += delta,
            Event::Value { name, value, .. } => inner.hists.entry(name).or_default().record(value),
            Event::Span { name, nanos } => {
                let s = inner.spans.entry(name).or_default();
                s.count += 1;
                s.total_nanos += nanos;
                s.max_nanos = s.max_nanos.max(nanos);
            }
        }
    }

    /// Copy the current aggregates out.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            hists: inner
                .hists
                .iter()
                .map(|(&k, v)| (k.to_string(), v.clone()))
                .collect(),
            spans: inner
                .spans
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
        }
    }
}

impl Subscriber for Registry {
    fn event(&self, event: &Event) {
        self.record(event);
    }
}

/// Point-in-time copy of a [`Registry`]'s aggregates — the per-job metrics
/// bundle the engine's batch API returns, and the source of the `mscc
/// --metrics` summary table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, Hist>,
    /// Span stats by name.
    pub spans: BTreeMap<String, SpanStat>,
}

impl MetricsSnapshot {
    /// Counter total (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram for a value series, if any samples were recorded.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// Stats for a span name, if any spans completed.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.get(name)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty() && self.spans.is_empty()
    }

    /// Human-readable end-of-run summary (the `--metrics` table).
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("\n-- metrics --\n");
        if self.is_empty() {
            out.push_str("(no events recorded)\n");
            return out;
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<28} {v}");
            }
        }
        if !self.hists.is_empty() {
            out.push_str("histograms (count / mean / min / max):\n");
            for (name, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {name:<28} {} / {:.2} / {} / {}",
                    h.count,
                    h.mean(),
                    if h.count == 0 { 0 } else { h.min },
                    h.max
                );
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans (count / total / max):\n");
            for (name, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {name:<28} {} / {:.3}ms / {:.3}ms",
                    s.count,
                    s.total_nanos as f64 / 1e6,
                    s.max_nanos as f64 / 1e6
                );
            }
        }
        out
    }
}

/// Tee events to several subscribers in order.
pub struct Fanout {
    subs: Vec<Arc<dyn Subscriber>>,
}

impl Fanout {
    /// A fanout over `subs`.
    pub fn new(subs: Vec<Arc<dyn Subscriber>>) -> Self {
        Fanout { subs }
    }
}

impl Subscriber for Fanout {
    fn event(&self, event: &Event) {
        for s in &self.subs {
            s.event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emits_nothing_and_reads_no_clock() {
        // No subscriber installed (and install serialization guarantees no
        // other test has one while we hold the install lock ourselves).
        let registry = Arc::new(Registry::new());
        {
            let _guard = install(registry.clone());
        } // immediately uninstalled
        assert!(!enabled());
        count("t.counter", 5);
        value("t.value", 9);
        let s = span("t.span");
        assert!(s.start.is_none(), "disabled span must not read the clock");
        drop(s);
        assert!(registry.snapshot().is_empty());
    }

    #[test]
    fn installed_registry_aggregates() {
        let registry = Arc::new(Registry::new());
        {
            let _guard = install(registry.clone());
            assert!(enabled());
            count("t.hits", 1);
            count("t.hits", 2);
            value("t.depth", 4);
            value("t.depth", 9);
            sample("t.depth", 7, 1);
            let _span = span("t.region");
        }
        assert!(!enabled(), "guard drop re-arms the fast path");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("t.hits"), 3);
        let h = snap.hist("t.depth").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (3, 14, 1, 9));
        assert_eq!(h.buckets[3], 1, "4 has bit length 3");
        assert_eq!(h.buckets[4], 1, "9 has bit length 4");
        assert_eq!(h.buckets[1], 1, "1 has bit length 1");
        let sp = snap.span("t.region").unwrap();
        assert_eq!(sp.count, 1);
        assert!(sp.total_nanos >= sp.max_nanos);
        let table = snap.render_table();
        assert!(table.contains("t.hits"), "{table}");
        assert!(table.contains("t.depth"), "{table}");
        assert!(table.contains("t.region"), "{table}");
    }

    #[test]
    fn fanout_tees() {
        let a = Arc::new(Registry::new());
        let b = Arc::new(Registry::new());
        {
            let _guard = install(Arc::new(Fanout::new(vec![a.clone(), b.clone()])));
            count("t.fan", 1);
        }
        assert_eq!(a.snapshot().counter("t.fan"), 1);
        assert_eq!(b.snapshot().counter("t.fan"), 1);
    }

    #[test]
    fn registry_from_many_threads() {
        let registry = Arc::new(Registry::new());
        {
            let _guard = install(registry.clone());
            std::thread::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        for _ in 0..1000 {
                            count("t.parallel", 1);
                        }
                    });
                }
            });
        }
        assert_eq!(registry.snapshot().counter("t.parallel"), 8000);
    }

    #[test]
    fn hist_mean_and_zero_bucket() {
        let mut h = Hist::default();
        h.record(0);
        h.record(8);
        assert_eq!(h.buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(h.buckets[4], 1, "8 has bit length 4");
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }
}
