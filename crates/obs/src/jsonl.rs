//! JSONL sink: one JSON object per event, one event per line.
//!
//! The format is deliberately flat so that any log tooling (or `jq`) can
//! slice it without a schema:
//!
//! ```json
//! {"kind":"count","name":"cache.hit","delta":1}
//! {"kind":"value","name":"simd.dispatch_live","index":3,"value":12}
//! {"kind":"span","name":"convert.run","nanos":48211}
//! ```
//!
//! Serialization is dependency-free; metric names are `&'static str`
//! identifiers from the emitting crates (dotted lowercase ASCII), but the
//! writer still escapes them defensively (via the shared
//! [`json`] escaper). [`parse_line`] is the matching reader
//! used by tests and the `--trace-out` verification tooling; it is a thin
//! shim over the full [`json::parse`].

use crate::json::{self, escape_into};
use crate::{Event, Subscriber};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A [`Subscriber`] that streams events to a writer as JSON lines.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<BufWriter<W>>,
}

impl JsonlSink<std::fs::File> {
    /// Create (truncating) `path` and stream events to it.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Ok(Self::new(std::fs::File::create(path)?))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Stream events to `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(BufWriter::new(writer)),
        }
    }

    /// Flush buffered lines to the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .flush()
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl<W: Write + Send> Subscriber for JsonlSink<W> {
    fn event(&self, event: &Event) {
        let mut line = String::with_capacity(64);
        render_line(event, &mut line);
        let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        // An unwritable sink must not take the pipeline down with it.
        let _ = w.write_all(line.as_bytes());
    }
}

fn render_line(event: &Event, out: &mut String) {
    use std::fmt::Write as _;
    match *event {
        Event::Count { name, delta } => {
            out.push_str("{\"kind\":\"count\",\"name\":\"");
            escape_into(name, out);
            let _ = writeln!(out, "\",\"delta\":{delta}}}");
        }
        Event::Value { name, index, value } => {
            out.push_str("{\"kind\":\"value\",\"name\":\"");
            escape_into(name, out);
            let _ = writeln!(out, "\",\"index\":{index},\"value\":{value}}}");
        }
        Event::Span { name, nanos } => {
            out.push_str("{\"kind\":\"span\",\"name\":\"");
            escape_into(name, out);
            let _ = writeln!(out, "\",\"nanos\":{nanos}}}");
        }
    }
}

/// A parsed JSONL trace line — [`Event`] with an owned name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceLine {
    /// A `count` line.
    Count {
        /// Metric name.
        name: String,
        /// Increment.
        delta: u64,
    },
    /// A `value` line.
    Value {
        /// Metric name.
        name: String,
        /// Sub-series index.
        index: u64,
        /// Sampled value.
        value: u64,
    },
    /// A `span` line.
    Span {
        /// Span name.
        name: String,
        /// Duration in nanoseconds.
        nanos: u64,
    },
}

impl TraceLine {
    /// The metric name, whatever the variant.
    pub fn name(&self) -> &str {
        match self {
            TraceLine::Count { name, .. }
            | TraceLine::Value { name, .. }
            | TraceLine::Span { name, .. } => name,
        }
    }
}

/// Parse one line previously written by [`JsonlSink`]. Returns `None` for
/// blank lines or lines that do not match the sink's output shape. Built
/// on the shared [`json`] parser, so any valid JSON spelling
/// of the schema is accepted, not just the sink's exact byte layout.
pub fn parse_line(line: &str) -> Option<TraceLine> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let v = json::parse(line).ok()?;
    let kind = v.get("kind")?.as_str()?;
    let name = v.get("name")?.as_str()?.to_string();
    let field = |key: &str| v.get(key)?.as_u64();
    match kind {
        "count" => Some(TraceLine::Count {
            name,
            delta: field("delta")?,
        }),
        "value" => Some(TraceLine::Value {
            name,
            index: field("index")?,
            value: field("value")?,
        }),
        "span" => Some(TraceLine::Span {
            name,
            nanos: field("nanos")?,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_variants() {
        let events = [
            Event::Count {
                name: "cache.hit",
                delta: 3,
            },
            Event::Value {
                name: "simd.dispatch_live",
                index: 7,
                value: 12,
            },
            Event::Span {
                name: "convert.run",
                nanos: 48211,
            },
        ];
        let sink = JsonlSink::new(Vec::new());
        for e in &events {
            sink.event(e);
        }
        sink.flush().unwrap();
        let bytes = std::mem::replace(
            &mut *sink.writer.lock().unwrap(),
            BufWriter::new(Vec::new()),
        )
        .into_inner()
        .unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let parsed: Vec<TraceLine> = text.lines().filter_map(parse_line).collect();
        assert_eq!(parsed.len(), 3);
        assert_eq!(
            parsed[0],
            TraceLine::Count {
                name: "cache.hit".into(),
                delta: 3
            }
        );
        assert_eq!(
            parsed[1],
            TraceLine::Value {
                name: "simd.dispatch_live".into(),
                index: 7,
                value: 12
            }
        );
        assert_eq!(
            parsed[2],
            TraceLine::Span {
                name: "convert.run".into(),
                nanos: 48211
            }
        );
    }

    #[test]
    fn escaping_survives_round_trip() {
        let mut line = String::new();
        render_line(
            &Event::Count {
                name: "weird\"name\\with\tcontrol",
                delta: 1,
            },
            &mut line,
        );
        let parsed = parse_line(&line).unwrap();
        assert_eq!(parsed.name(), "weird\"name\\with\tcontrol");
    }

    #[test]
    fn garbage_lines_are_none() {
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("not json"), None);
        assert_eq!(parse_line("{\"kind\":\"count\"}"), None);
        assert_eq!(parse_line("{\"kind\":\"other\",\"name\":\"x\"}"), None);
    }
}
