//! # msc-simd — the SIMD machine substrate
//!
//! A cycle-accounting simulator of a MasPar-MP-1-class SIMD array (the
//! paper's target hardware, \[Bla90\]): one control unit holding the
//! meta-state program, N processing elements with private `poly` memory and
//! operand stacks, replicated `mono` memory with broadcast stores, a router
//! for parallel subscripting, a `globalor` reduction network for aggregate
//! `pc` collection (§3.2.3), and an idle-PE pool for restricted dynamic
//! process creation (§3.2.5).
//!
//! * [`program`] — [`SimdProgram`]: the executable meta-state automaton
//!   (guarded instruction bodies + hashed multiway dispatches).
//! * [`machine`] — [`SimdMachine`]: the array itself, with the metrics
//!   ([`Metrics`]) the experiments report: cycles by category, issue
//!   counts, and PE utilization.
//! * [`setops`] — runtime-dispatched SIMD set algebra kernels (AVX2 /
//!   NEON / scalar) the converter's hybrid bitsets run on.
//! * [`profile`] — [`MachineProfile`]: the whole cost structure as strict
//!   JSON config, so one binary evaluates many architectures (`mscc sweep`).

pub mod asm;
pub mod machine;
pub mod profile;
pub mod program;
pub mod setops;

pub use asm::{parse as parse_asm, serialize as serialize_asm, AsmError};
pub use machine::{MachineConfig, Metrics, RunError, SimdMachine, TraceEvent};
pub use profile::{MachineProfile, ProfileError};
pub use program::{BlockId, Dispatch, GuardedInstr, MetaBlock, SimdInstr, SimdProgram};
