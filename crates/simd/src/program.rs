//! The executable SIMD program: a meta-state automaton encoded per §3 of
//! the paper.
//!
//! Each meta state becomes a [`MetaBlock`]: a sequence of *guarded*
//! instructions (the CSI-factored bodies of its member MIMD states, §3.1)
//! followed by a [`Dispatch`] — the multiway branch of §3.2 keyed by the
//! `globalor` aggregate of every PE's `pc` and encoded with a customized
//! hash function (\[Die92a\]).

use msc_hash::PerfectHash;
use msc_ir::{CostModel, Op, StateId};
use std::fmt;

/// Index of a [`MetaBlock`] within a [`SimdProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The index as a usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mb{}", self.0)
    }
}

/// One SIMD instruction inside a meta block. `Op`s come from the member
/// MIMD states' code; the control instructions implement the members'
/// terminators by updating each enabled PE's (shadow) `pc`.
#[derive(Debug, Clone, PartialEq)]
pub enum SimdInstr {
    /// A straight-line stack op.
    Op(Op),
    /// The paper's `JumpF(f, t)`: pop the condition; `pc := t` if nonzero,
    /// else `pc := f`.
    JumpF {
        /// TRUE successor.
        t: StateId,
        /// FALSE successor.
        f: StateId,
    },
    /// Unconditional `pc := s` (member with a single exit arc).
    SetPc(StateId),
    /// Process end (paper's `Ret`/implicit halt): `pc := none`, the PE
    /// rejoins the free pool (§3.2.5).
    Halt,
    /// Inline-expanded function return (§2.2): pop the return-site selector
    /// from the per-PE return stack (already moved to the operand stack by
    /// `PopRet`) and set `pc := targets[selector]`.
    RetMulti(Vec<StateId>),
    /// Restricted dynamic process creation (§3.2.5): each enabled PE keeps
    /// `pc := next`; one currently-idle PE per spawner is recruited, given
    /// a copy of the spawner's `poly` memory, and set to `pc := child`.
    Spawn {
        /// Entry state of the created process.
        child: StateId,
        /// Continuation of the spawning process.
        next: StateId,
    },
}

impl SimdInstr {
    /// Cycle cost of issuing this instruction once.
    pub fn cost(&self, costs: &CostModel) -> u32 {
        match self {
            SimdInstr::Op(op) => costs.op_cost(op),
            SimdInstr::JumpF { .. } => costs.int_simple,
            SimdInstr::SetPc(_) | SimdInstr::Halt => costs.stack,
            SimdInstr::RetMulti(_) => costs.control,
            SimdInstr::Spawn { .. } => costs.dispatch,
        }
    }

    /// Does this instruction go through the PEs' local-memory ports?
    /// (Subject to [`MachineConfig::memory_ports`](crate::MachineConfig::memory_ports)
    /// contention.)
    pub fn is_memory(&self) -> bool {
        matches!(self, SimdInstr::Op(op) if op.class() == msc_ir::OpClass::Memory)
    }
}

/// An instruction with its PE enable guard: the set of MIMD states whose
/// PEs execute it (the `if (pc & (BIT(2)|BIT(6)))` headers of Listing 5).
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedInstr {
    /// Sorted member states whose PEs are enabled.
    pub guard: Vec<StateId>,
    /// The instruction.
    pub instr: SimdInstr,
}

impl GuardedInstr {
    /// Is a PE whose current MIMD state is `pc` enabled?
    pub fn enables(&self, pc: StateId) -> bool {
        self.guard.binary_search(&pc).is_ok()
    }
}

/// How control moves to the next meta block (§3.2.1–§3.2.4).
#[derive(Debug, Clone, PartialEq)]
pub enum Dispatch {
    /// No exit arc: "the end of the program's execution … implicitly
    /// followed by a return to the operating system" (§3.2.1).
    End,
    /// Single exit arc: an unconditional `goto` (§3.2.2); "all entries to
    /// compressed meta states fall into this category".
    Direct(BlockId),
    /// Compressed transition constrained by a barrier (§3.2.4 applied to
    /// §2.5): unconditionally continue at `cont`, unless every live PE's
    /// `pc` is a barrier state, in which case enter `barrier`.
    DirectWithBarrier {
        /// The compressed continuation.
        cont: BlockId,
        /// The all-barrier meta state.
        barrier: BlockId,
    },
    /// General multiway branch (§3.2.3): the `globalor` of the PEs' `pc`
    /// bits keys a hashed jump table.
    Hashed {
        /// Bit assignment for the aggregate: `(state, bit)` pairs covering
        /// every `pc` value that can occur here. When the automaton has at
        /// most 64 MIMD states the bit *is* the state id, matching the
        /// paper's `BIT(s)` coding.
        bit_of: Vec<(StateId, u32)>,
        /// Bits of barrier-wait states: §3.2.4's rule subtracts these from
        /// the aggregate unless the aggregate is barrier-only.
        barrier_mask: u64,
        /// The customized perfect hash over the possible aggregates.
        hash: PerfectHash,
        /// Successor block for each hash key (parallel to `hash.keys`).
        targets: Vec<BlockId>,
    },
}

/// One meta state's code.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaBlock {
    /// Member MIMD states (sorted) — the meta state's identity.
    pub members: Vec<StateId>,
    /// Listing-5-style name, e.g. `ms_2_6`.
    pub name: String,
    /// Guarded, CSI-factored body.
    pub body: Vec<GuardedInstr>,
    /// Exit encoding.
    pub dispatch: Dispatch,
}

/// A complete executable SIMD program.
#[derive(Debug, Clone)]
pub struct SimdProgram {
    /// The meta blocks.
    pub blocks: Vec<MetaBlock>,
    /// Entry block.
    pub start: BlockId,
    /// The MIMD state every PE's `pc` starts in.
    pub start_state: StateId,
    /// Words of per-PE `poly` memory the program uses.
    pub poly_words: u32,
    /// Words of replicated `mono` memory.
    pub mono_words: u32,
    /// Cost model the program was compiled against.
    pub costs: CostModel,
}

impl SimdProgram {
    /// Borrow a block.
    pub fn block(&self, id: BlockId) -> &MetaBlock {
        &self.blocks[id.idx()]
    }

    /// Total instructions across all meta blocks — the control unit's
    /// program size. Note what is *absent*: per-PE program memory. §1.2:
    /// "Only the SIMD control unit needs to have a copy of the meta-state
    /// automaton; PEs merely hold data."
    pub fn control_unit_instrs(&self) -> usize {
        self.blocks.iter().map(|b| b.body.len()).sum()
    }

    /// Per-PE program memory in words: zero, by construction (contrast
    /// with the §1.1 interpreter, which replicates the whole program).
    pub fn per_pe_program_words(&self) -> usize {
        0
    }

    /// Structural checks: start in range, dispatch targets in range,
    /// every hashed dispatch's tables consistent.
    pub fn validate(&self) -> Result<(), String> {
        if self.start.idx() >= self.blocks.len() {
            return Err(format!("start {} out of range", self.start));
        }
        for (i, b) in self.blocks.iter().enumerate() {
            let check = |t: BlockId| -> Result<(), String> {
                if t.idx() >= self.blocks.len() {
                    Err(format!("block {i} targets nonexistent {t}"))
                } else {
                    Ok(())
                }
            };
            match &b.dispatch {
                Dispatch::End => {}
                Dispatch::Direct(t) => check(*t)?,
                Dispatch::DirectWithBarrier { cont, barrier } => {
                    check(*cont)?;
                    check(*barrier)?;
                }
                Dispatch::Hashed {
                    hash,
                    targets,
                    bit_of,
                    ..
                } => {
                    if hash.keys.len() != targets.len() {
                        return Err(format!("block {i}: keys/targets length mismatch"));
                    }
                    for t in targets {
                        check(*t)?;
                    }
                    if bit_of.is_empty() {
                        return Err(format!("block {i}: hashed dispatch with empty bit map"));
                    }
                }
            }
            for gi in &b.body {
                if gi.guard.is_empty() {
                    return Err(format!("block {i} has an instruction with empty guard"));
                }
                if gi.guard.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(format!("block {i} has an unsorted guard"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_enable_check() {
        let gi = GuardedInstr {
            guard: vec![StateId(1), StateId(3)],
            instr: SimdInstr::Halt,
        };
        assert!(gi.enables(StateId(1)));
        assert!(gi.enables(StateId(3)));
        assert!(!gi.enables(StateId(2)));
    }

    #[test]
    fn instr_costs_follow_model() {
        let c = CostModel::default();
        assert_eq!(SimdInstr::Op(Op::Push(1)).cost(&c), c.stack);
        assert_eq!(
            SimdInstr::JumpF {
                t: StateId(0),
                f: StateId(1)
            }
            .cost(&c),
            c.int_simple
        );
        assert_eq!(SimdInstr::RetMulti(vec![StateId(0)]).cost(&c), c.control);
    }

    #[test]
    fn validate_catches_bad_targets() {
        let p = SimdProgram {
            blocks: vec![MetaBlock {
                members: vec![StateId(0)],
                name: "ms_0".into(),
                body: vec![],
                dispatch: Dispatch::Direct(BlockId(5)),
            }],
            start: BlockId(0),
            start_state: StateId(0),
            poly_words: 0,
            mono_words: 0,
            costs: CostModel::default(),
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn per_pe_program_memory_is_zero() {
        let p = SimdProgram {
            blocks: vec![],
            start: BlockId(0),
            start_state: StateId(0),
            poly_words: 0,
            mono_words: 0,
            costs: CostModel::default(),
        };
        assert_eq!(p.per_pe_program_words(), 0);
    }
}
