//! Machine profiles: the simulator's cost structure as data.
//!
//! The cycle-accounting machine used to be priced by one hard-coded
//! [`CostModel`]; a [`MachineProfile`] lifts every knob — PE count,
//! per-instruction-class costs, guard-switch and hashed-dispatch prices,
//! `globalor` router latency, memory ports, the watchdog budget — into a
//! JSON document so one binary can evaluate many architectures per
//! workload (`mscc sweep`, spada-sim style).
//!
//! The schema is *strict*: unknown keys are errors naming the key (a
//! typo'd knob must not silently price as the default), while **missing**
//! keys take the documented defaults below. The default profile
//! round-trips bit-exact to today's hard-coded model
//! ([`CostModel::default`] plus [`MachineConfig::spmd`]), so every
//! committed `BENCH_*.json` number stays valid and `claims -- sweep
//! --check` can gate the identity.
//!
//! | key                | default       | meaning |
//! |--------------------|---------------|---------|
//! | `name`             | `"custom"`    | row label in sweep tables (file stem when loaded from disk) |
//! | `description`      | `""`          | free-form note |
//! | `pe_count`         | `16`          | processing elements in the array |
//! | `max_cycles`       | `100000000`   | watchdog budget before [`RunError::Watchdog`](crate::RunError::Watchdog) |
//! | `memory_ports`     | `0`           | local-memory ports shared by the array; `0` = one port per PE (fully parallel, today's model); `p > 0` serializes a memory-class issue over ⌈enabled/p⌉ port rounds |
//! | `globalor_latency` | `0`           | extra router cycles on every aggregate (`globalor` + hashed / barrier) dispatch |
//! | `costs`            | all defaults  | per-instruction-class cycle costs; sub-keys are exactly the [`CostModel`] fields (`stack`, `int_simple`, `int_mul`, `int_div`, `float_simple`, `float_mul`, `float_div`, `mem_local`, `comm_remote`, `comm_broadcast`, `control`, `dispatch`, `guard_switch`, `interp_fetch_decode`, `interp_loop`) |

use crate::machine::MachineConfig;
use msc_ir::CostModel;
use msc_obs::json::{Json, JsonError};
use std::fmt;
use std::path::Path;

/// A machine model the simulator can be priced by: everything
/// [`SimdMachine`](crate::SimdMachine) and the codegen cost accounting
/// need, parsed from strict dependency-free JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    /// Row label in sweep tables.
    pub name: String,
    /// Free-form note shown nowhere hot.
    pub description: String,
    /// Processing elements in the array.
    pub pe_count: usize,
    /// Watchdog cycle budget.
    pub max_cycles: u64,
    /// Local-memory ports shared by the whole array (0 = one per PE).
    pub memory_ports: usize,
    /// Extra router cycles on every aggregate dispatch.
    pub globalor_latency: u32,
    /// Per-instruction-class cycle costs (threaded through conversion's
    /// time splitting, codegen's CSI/dispatch accounting, and the run).
    pub costs: CostModel,
}

impl Default for MachineProfile {
    /// Exactly today's hard-coded model: [`CostModel::default`] on a
    /// 16-PE SPMD array — the `paper-default` bundled profile.
    fn default() -> Self {
        MachineProfile {
            name: "paper-default".into(),
            description: "The hard-coded MasPar-class model every committed BENCH_*.json \
                          was measured under"
                .into(),
            pe_count: 16,
            max_cycles: 100_000_000,
            memory_ports: 0,
            globalor_latency: 0,
            costs: CostModel::default(),
        }
    }
}

/// A profile failed to parse or validate.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// The text is not valid JSON.
    Json(JsonError),
    /// The document (or a sub-object) is not a JSON object.
    NotAnObject(&'static str),
    /// A key the schema does not know — strictness is the point: a
    /// typo'd knob must fail, not silently price as the default.
    UnknownKey {
        /// Which object the key appeared in (`profile` or `costs`).
        context: &'static str,
        /// The offending key, verbatim.
        key: String,
    },
    /// A known key with an unusable value.
    BadValue {
        /// The key.
        key: String,
        /// Why the value is unusable.
        reason: String,
    },
    /// Reading the file failed.
    Io {
        /// The path we tried.
        path: String,
        /// The OS error.
        error: String,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Json(e) => write!(f, "invalid JSON: {e}"),
            ProfileError::NotAnObject(what) => write!(f, "{what} must be a JSON object"),
            ProfileError::UnknownKey { context, key } => {
                write!(f, "unknown {context} key `{key}`")
            }
            ProfileError::BadValue { key, reason } => write!(f, "bad value for `{key}`: {reason}"),
            ProfileError::Io { path, error } => write!(f, "cannot read {path}: {error}"),
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<JsonError> for ProfileError {
    fn from(e: JsonError) -> Self {
        ProfileError::Json(e)
    }
}

/// Read a non-negative integer field, enforcing it fits `max`.
fn int_field(key: &str, v: &Json, max: u64) -> Result<u64, ProfileError> {
    let bad = |reason: &str| ProfileError::BadValue {
        key: key.to_string(),
        reason: reason.to_string(),
    };
    let n = v
        .as_f64()
        .ok_or_else(|| bad("expected a non-negative integer"))?;
    if !n.is_finite() || n < 0.0 || n.fract() != 0.0 {
        return Err(bad("expected a non-negative integer"));
    }
    if n > max as f64 {
        return Err(bad(&format!("must be at most {max}")));
    }
    Ok(n as u64)
}

/// Parse the strict `costs` sub-object over [`CostModel::default`].
fn parse_costs(v: &Json) -> Result<CostModel, ProfileError> {
    let obj = v
        .as_obj()
        .ok_or(ProfileError::NotAnObject("the `costs` field"))?;
    let mut costs = CostModel::default();
    for (key, val) in obj {
        let slot: &mut u32 = match key.as_str() {
            "stack" => &mut costs.stack,
            "int_simple" => &mut costs.int_simple,
            "int_mul" => &mut costs.int_mul,
            "int_div" => &mut costs.int_div,
            "float_simple" => &mut costs.float_simple,
            "float_mul" => &mut costs.float_mul,
            "float_div" => &mut costs.float_div,
            "mem_local" => &mut costs.mem_local,
            "comm_remote" => &mut costs.comm_remote,
            "comm_broadcast" => &mut costs.comm_broadcast,
            "control" => &mut costs.control,
            "dispatch" => &mut costs.dispatch,
            "guard_switch" => &mut costs.guard_switch,
            "interp_fetch_decode" => &mut costs.interp_fetch_decode,
            "interp_loop" => &mut costs.interp_loop,
            other => {
                return Err(ProfileError::UnknownKey {
                    context: "costs",
                    key: other.to_string(),
                })
            }
        };
        *slot = int_field(key, val, u32::MAX as u64)? as u32;
    }
    Ok(costs)
}

impl MachineProfile {
    /// Parse a profile document. Unknown keys error (naming the key);
    /// missing keys take the documented defaults.
    pub fn from_json(json: &Json) -> Result<Self, ProfileError> {
        let obj = json
            .as_obj()
            .ok_or(ProfileError::NotAnObject("a machine profile"))?;
        let mut p = MachineProfile {
            name: "custom".into(),
            description: String::new(),
            ..MachineProfile::default()
        };
        for (key, val) in obj {
            match key.as_str() {
                "name" => {
                    p.name = val
                        .as_str()
                        .ok_or_else(|| ProfileError::BadValue {
                            key: "name".into(),
                            reason: "expected a string".into(),
                        })?
                        .to_string();
                }
                "description" => {
                    p.description = val
                        .as_str()
                        .ok_or_else(|| ProfileError::BadValue {
                            key: "description".into(),
                            reason: "expected a string".into(),
                        })?
                        .to_string();
                }
                "pe_count" => {
                    let n = int_field("pe_count", val, 1 << 20)? as usize;
                    if n == 0 {
                        return Err(ProfileError::BadValue {
                            key: "pe_count".into(),
                            reason: "must be at least 1".into(),
                        });
                    }
                    p.pe_count = n;
                }
                "max_cycles" => p.max_cycles = int_field("max_cycles", val, u64::MAX >> 1)?,
                "memory_ports" => {
                    p.memory_ports = int_field("memory_ports", val, 1 << 20)? as usize;
                }
                "globalor_latency" => {
                    p.globalor_latency =
                        int_field("globalor_latency", val, u32::MAX as u64)? as u32;
                }
                "costs" => p.costs = parse_costs(val)?,
                other => {
                    return Err(ProfileError::UnknownKey {
                        context: "profile",
                        key: other.to_string(),
                    })
                }
            }
        }
        Ok(p)
    }

    /// Parse a profile from JSON text.
    pub fn parse(text: &str) -> Result<Self, ProfileError> {
        Self::from_json(&msc_obs::json::parse(text)?)
    }

    /// Load a profile file; when the document has no `name`, the file
    /// stem becomes the name (so `profiles/wide-simd.json` labels its
    /// rows `wide-simd` without repeating itself).
    pub fn load(path: &Path) -> Result<Self, ProfileError> {
        let text = std::fs::read_to_string(path).map_err(|e| ProfileError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        })?;
        let json = msc_obs::json::parse(&text)?;
        let named = json
            .get("name")
            .and_then(|n| n.as_str())
            .map(str::to_string);
        let mut p = Self::from_json(&json)?;
        if named.is_none() {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                p.name = stem.to_string();
            }
        }
        Ok(p)
    }

    /// Load every `*.json` in a directory, sorted by file name.
    pub fn load_dir(dir: &Path) -> Result<Vec<Self>, ProfileError> {
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| ProfileError::Io {
                path: dir.display().to_string(),
                error: e.to_string(),
            })?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        paths.sort();
        paths.iter().map(|p| Self::load(p)).collect()
    }

    /// The full document, every field explicit (what `render` emits).
    pub fn to_json(&self) -> Json {
        let c = &self.costs;
        Json::obj(vec![
            ("name", Json::from(self.name.as_str())),
            ("description", Json::from(self.description.as_str())),
            ("pe_count", Json::from(self.pe_count)),
            ("max_cycles", Json::from(self.max_cycles)),
            ("memory_ports", Json::from(self.memory_ports)),
            ("globalor_latency", Json::from(self.globalor_latency as u64)),
            (
                "costs",
                Json::obj(vec![
                    ("stack", Json::from(c.stack as u64)),
                    ("int_simple", Json::from(c.int_simple as u64)),
                    ("int_mul", Json::from(c.int_mul as u64)),
                    ("int_div", Json::from(c.int_div as u64)),
                    ("float_simple", Json::from(c.float_simple as u64)),
                    ("float_mul", Json::from(c.float_mul as u64)),
                    ("float_div", Json::from(c.float_div as u64)),
                    ("mem_local", Json::from(c.mem_local as u64)),
                    ("comm_remote", Json::from(c.comm_remote as u64)),
                    ("comm_broadcast", Json::from(c.comm_broadcast as u64)),
                    ("control", Json::from(c.control as u64)),
                    ("dispatch", Json::from(c.dispatch as u64)),
                    ("guard_switch", Json::from(c.guard_switch as u64)),
                    (
                        "interp_fetch_decode",
                        Json::from(c.interp_fetch_decode as u64),
                    ),
                    ("interp_loop", Json::from(c.interp_loop as u64)),
                ]),
            ),
        ])
    }

    /// Render the profile as JSON text.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// The [`MachineConfig`] this profile runs under.
    pub fn machine_config(&self) -> MachineConfig {
        MachineConfig {
            n_pe: self.pe_count,
            active_at_start: self.pe_count,
            max_cycles: self.max_cycles,
            trace: false,
            memory_ports: self.memory_ports,
            globalor_latency: self.globalor_latency,
        }
    }

    /// The bundled profile matrix (committed under `profiles/`, pinned
    /// bit-equal to these by the tier-1 tests): the paper default plus
    /// three architectural what-ifs along the axes §2.5/§3.2 argue about.
    pub fn bundled() -> Vec<MachineProfile> {
        let wide = MachineProfile {
            name: "wide-simd".into(),
            description: "A 64-PE array, same per-instruction costs: does the automaton \
                          keep the wider machine busy?"
                .into(),
            pe_count: 64,
            ..MachineProfile::default()
        };
        let slow_globalor = MachineProfile {
            name: "slow-globalor".into(),
            description: "An expensive reduction network: every aggregate dispatch pays \
                          24 extra router cycles, the regime where compressed conversion's \
                          goto-only transitions win (§2.5/§3.2.2)"
                .into(),
            globalor_latency: 24,
            ..MachineProfile::default()
        };
        let cheap_dispatch = MachineProfile {
            name: "cheap-dispatch".into(),
            description: "A fast reduction network: hashed multiway dispatch costs 2 \
                          cycles instead of 8, the regime where base conversion's \
                          narrow meta states win (C10)"
                .into(),
            costs: CostModel {
                dispatch: 2,
                ..CostModel::default()
            },
            ..MachineProfile::default()
        };
        vec![
            MachineProfile::default(),
            wide,
            slow_globalor,
            cheap_dispatch,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_todays_hard_coded_model() {
        let p = MachineProfile::default();
        assert_eq!(p.costs, CostModel::default());
        let cfg = p.machine_config();
        let spmd = MachineConfig::spmd(16);
        assert_eq!(cfg.n_pe, spmd.n_pe);
        assert_eq!(cfg.active_at_start, spmd.active_at_start);
        assert_eq!(cfg.max_cycles, spmd.max_cycles);
        assert_eq!(cfg.memory_ports, spmd.memory_ports);
        assert_eq!(cfg.globalor_latency, spmd.globalor_latency);
    }

    #[test]
    fn empty_object_takes_every_documented_default() {
        let p = MachineProfile::parse("{}").unwrap();
        assert_eq!(p.name, "custom");
        assert_eq!(p.pe_count, 16);
        assert_eq!(p.max_cycles, 100_000_000);
        assert_eq!(p.memory_ports, 0);
        assert_eq!(p.globalor_latency, 0);
        assert_eq!(p.costs, CostModel::default());
    }

    #[test]
    fn missing_cost_fields_default_individually() {
        let p = MachineProfile::parse(r#"{"costs": {"dispatch": 3}}"#).unwrap();
        assert_eq!(p.costs.dispatch, 3);
        assert_eq!(p.costs.stack, CostModel::default().stack);
        assert_eq!(p.costs.int_div, CostModel::default().int_div);
    }

    #[test]
    fn unknown_top_level_key_errors_naming_it() {
        let err = MachineProfile::parse(r#"{"pe_cuont": 16}"#).unwrap_err();
        assert_eq!(
            err,
            ProfileError::UnknownKey {
                context: "profile",
                key: "pe_cuont".into()
            }
        );
        assert!(err.to_string().contains("pe_cuont"), "{err}");
    }

    #[test]
    fn unknown_cost_key_errors_naming_it() {
        let err = MachineProfile::parse(r#"{"costs": {"dispach": 2}}"#).unwrap_err();
        assert_eq!(
            err,
            ProfileError::UnknownKey {
                context: "costs",
                key: "dispach".into()
            }
        );
        assert!(err.to_string().contains("dispach"), "{err}");
    }

    #[test]
    fn bad_values_are_rejected() {
        for (text, key) in [
            (r#"{"pe_count": 0}"#, "pe_count"),
            (r#"{"pe_count": -4}"#, "pe_count"),
            (r#"{"pe_count": 2.5}"#, "pe_count"),
            (r#"{"pe_count": "many"}"#, "pe_count"),
            (r#"{"costs": {"dispatch": 4294967296}}"#, "dispatch"),
            (r#"{"name": 7}"#, "name"),
        ] {
            let err = MachineProfile::parse(text).unwrap_err();
            assert!(
                matches!(&err, ProfileError::BadValue { key: k, .. } if k == key),
                "{text}: {err:?}"
            );
        }
        assert!(MachineProfile::parse("[]").is_err());
        assert!(MachineProfile::parse(r#"{"costs": []}"#).is_err());
        assert!(MachineProfile::parse("not json").is_err());
    }

    #[test]
    fn render_round_trips_every_bundled_profile() {
        for p in MachineProfile::bundled() {
            let back = MachineProfile::parse(&p.render()).unwrap();
            assert_eq!(back, p);
        }
    }

    // A typo in a committed profile file fails tier-1, not sweep-smoke:
    // each file must parse AND stay bit-equal to its bundled definition.
    #[test]
    fn committed_profile_files_match_the_bundled_matrix() {
        let files = [
            (
                "paper-default",
                include_str!("../../../profiles/paper-default.json"),
            ),
            (
                "wide-simd",
                include_str!("../../../profiles/wide-simd.json"),
            ),
            (
                "slow-globalor",
                include_str!("../../../profiles/slow-globalor.json"),
            ),
            (
                "cheap-dispatch",
                include_str!("../../../profiles/cheap-dispatch.json"),
            ),
        ];
        let bundled = MachineProfile::bundled();
        assert_eq!(files.len(), bundled.len());
        for ((name, text), expect) in files.iter().zip(&bundled) {
            let parsed =
                MachineProfile::parse(text).unwrap_or_else(|e| panic!("profiles/{name}.json: {e}"));
            assert_eq!(&parsed, expect, "profiles/{name}.json drifted from bundled");
        }
    }

    #[test]
    fn load_uses_file_stem_when_name_is_absent() {
        let dir = std::env::temp_dir().join(format!("msc-profile-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stem-named.json");
        std::fs::write(&path, r#"{"pe_count": 8}"#).unwrap();
        let p = MachineProfile::load(&path).unwrap();
        assert_eq!(p.name, "stem-named");
        assert_eq!(p.pe_count, 8);
        let all = MachineProfile::load_dir(&dir).unwrap();
        assert_eq!(all.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
