//! A textual assembly format for compiled SIMD programs, with a parser —
//! so converted automatons can be saved, diffed, and reloaded into the
//! simulator without re-running the pipeline (`mscc build --emit asm`).
//!
//! ```text
//! .program start=mb0 start_state=s0 poly=3 mono=0
//! .block mb0 ms_0 members=s0
//!   [s0] Push 1
//!   [s0] St p0
//!   [s0] JumpF t=s1 f=s2
//! .dispatch hashed bits=s1:1,s2:2 barrier=0x0
//!   hash shiftmask neg=false shift=1 mask=3
//!   key 0x2 -> mb1
//!   key 0x4 -> mb2
//! .block mb1 ms_1 members=s1
//!   [s1] Halt
//! .dispatch end
//! ```
//!
//! The format is line-oriented: `.program` header, then `.block` /
//! `.dispatch` pairs in block order. Round-tripping is exact up to the
//! cost model (which is not part of the program text; the parser installs
//! the caller's model).

use crate::program::{BlockId, Dispatch, GuardedInstr, MetaBlock, SimdInstr, SimdProgram};
use msc_hash::{HashExpr, PerfectHash};
use msc_ir::{Addr, BinOp, CostModel, Op, Space, StateId, UnOp};
use std::fmt;
use std::fmt::Write as _;

/// Parse failures, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmError {
    /// Line the problem is on.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asm line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn addr_text(a: &Addr) -> String {
    match a.space {
        Space::Poly => format!("p{}", a.index),
        Space::Mono => format!("m{}", a.index),
    }
}

fn op_text(op: &Op) -> String {
    match op {
        Op::Push(v) => format!("Push {v}"),
        Op::PushF(b) => format!("PushF {b:#x}"),
        Op::Dup => "Dup".into(),
        Op::Pop(n) => format!("Pop {n}"),
        Op::Ld(a) => format!("Ld {}", addr_text(a)),
        Op::St(a) => format!("St {}", addr_text(a)),
        Op::LdRemote(a) => format!("LdRemote {}", addr_text(a)),
        Op::StRemote(a) => format!("StRemote {}", addr_text(a)),
        Op::Bin(b) => format!("Bin {b:?}"),
        Op::Un(u) => format!("Un {u:?}"),
        Op::PeId => "PeId".into(),
        Op::NProc => "NProc".into(),
        Op::PushRet => "PushRet".into(),
        Op::PopRet => "PopRet".into(),
    }
}

fn instr_text(i: &SimdInstr) -> String {
    match i {
        SimdInstr::Op(op) => op_text(op),
        SimdInstr::JumpF { t, f } => format!("JumpF t=s{} f=s{}", t.0, f.0),
        SimdInstr::SetPc(s) => format!("SetPc s{}", s.0),
        SimdInstr::Halt => "Halt".into(),
        SimdInstr::RetMulti(v) => {
            let ts: Vec<String> = v.iter().map(|s| format!("s{}", s.0)).collect();
            format!("RetMulti {}", ts.join(","))
        }
        SimdInstr::Spawn { child, next } => format!("Spawn child=s{} next=s{}", child.0, next.0),
    }
}

fn hash_text(e: &HashExpr) -> String {
    match *e {
        HashExpr::ShiftMask { neg, shift, mask } => {
            format!("shiftmask neg={neg} shift={shift} mask={mask:#x}")
        }
        HashExpr::XorFold { shift, mask } => format!("xorfold shift={shift} mask={mask:#x}"),
        HashExpr::AddFold { shift, mask } => format!("addfold shift={shift} mask={mask:#x}"),
        HashExpr::MulShift { mul, shift, mask } => {
            format!("mulshift mul={mul:#x} shift={shift} mask={mask:#x}")
        }
    }
}

/// Serialize a program to assembly text.
pub fn serialize(program: &SimdProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        ".program start=mb{} start_state=s{} poly={} mono={}",
        program.start.0, program.start_state.0, program.poly_words, program.mono_words
    );
    for (bi, block) in program.blocks.iter().enumerate() {
        let members: Vec<String> = block.members.iter().map(|s| format!("s{}", s.0)).collect();
        let _ = writeln!(
            out,
            ".block mb{} {} members={}",
            bi,
            block.name,
            members.join(",")
        );
        for gi in &block.body {
            let guard: Vec<String> = gi.guard.iter().map(|s| format!("s{}", s.0)).collect();
            let _ = writeln!(out, "  [{}] {}", guard.join(","), instr_text(&gi.instr));
        }
        match &block.dispatch {
            Dispatch::End => {
                let _ = writeln!(out, ".dispatch end");
            }
            Dispatch::Direct(t) => {
                let _ = writeln!(out, ".dispatch direct mb{}", t.0);
            }
            Dispatch::DirectWithBarrier { cont, barrier } => {
                let _ = writeln!(
                    out,
                    ".dispatch barrier cont=mb{} barrier=mb{}",
                    cont.0, barrier.0
                );
            }
            Dispatch::Hashed {
                bit_of,
                barrier_mask,
                hash,
                targets,
            } => {
                let bits: Vec<String> = bit_of
                    .iter()
                    .map(|(s, b)| format!("s{}:{b}", s.0))
                    .collect();
                let _ = writeln!(
                    out,
                    ".dispatch hashed bits={} barrier={barrier_mask:#x}",
                    bits.join(",")
                );
                let _ = writeln!(out, "  hash {}", hash_text(&hash.expr));
                for (key, target) in hash.keys.iter().zip(targets) {
                    let _ = writeln!(out, "  key {key:#x} -> mb{}", target.0);
                }
            }
        }
    }
    out
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    fn err(&self, line: usize, msg: impl Into<String>) -> AsmError {
        AsmError {
            line,
            msg: msg.into(),
        }
    }
}

fn kv<'b>(token: &'b str, key: &str, line: usize) -> Result<&'b str, AsmError> {
    token
        .strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or(AsmError {
            line,
            msg: format!("expected `{key}=...`, found `{token}`"),
        })
}

fn parse_u64(s: &str, line: usize) -> Result<u64, AsmError> {
    let r = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.map_err(|_| AsmError {
        line,
        msg: format!("bad number `{s}`"),
    })
}

fn parse_state(s: &str, line: usize) -> Result<StateId, AsmError> {
    s.strip_prefix('s')
        .and_then(|r| r.parse().ok())
        .map(StateId)
        .ok_or(AsmError {
            line,
            msg: format!("bad state id `{s}`"),
        })
}

fn parse_block_id(s: &str, line: usize) -> Result<BlockId, AsmError> {
    s.strip_prefix("mb")
        .and_then(|r| r.parse().ok())
        .map(BlockId)
        .ok_or(AsmError {
            line,
            msg: format!("bad block id `{s}`"),
        })
}

fn parse_addr(s: &str, line: usize) -> Result<Addr, AsmError> {
    let (space, rest) = match s.split_at_checked(1) {
        Some(("p", r)) => (Space::Poly, r),
        Some(("m", r)) => (Space::Mono, r),
        _ => {
            return Err(AsmError {
                line,
                msg: format!("bad address `{s}`"),
            })
        }
    };
    rest.parse()
        .map(|index| Addr { space, index })
        .map_err(|_| AsmError {
            line,
            msg: format!("bad address `{s}`"),
        })
}

fn parse_binop(s: &str, line: usize) -> Result<BinOp, AsmError> {
    use BinOp::*;
    Ok(match s {
        "Add" => Add,
        "Sub" => Sub,
        "Mul" => Mul,
        "Div" => Div,
        "Rem" => Rem,
        "And" => And,
        "Or" => Or,
        "Xor" => Xor,
        "Shl" => Shl,
        "Shr" => Shr,
        "Eq" => Eq,
        "Ne" => Ne,
        "Lt" => Lt,
        "Le" => Le,
        "Gt" => Gt,
        "Ge" => Ge,
        "FAdd" => FAdd,
        "FSub" => FSub,
        "FMul" => FMul,
        "FDiv" => FDiv,
        "FLt" => FLt,
        "FLe" => FLe,
        "FGt" => FGt,
        "FGe" => FGe,
        "FEq" => FEq,
        "FNe" => FNe,
        other => {
            return Err(AsmError {
                line,
                msg: format!("bad binop `{other}`"),
            })
        }
    })
}

fn parse_unop(s: &str, line: usize) -> Result<UnOp, AsmError> {
    use UnOp::*;
    Ok(match s {
        "Neg" => Neg,
        "Not" => Not,
        "BitNot" => BitNot,
        "FNeg" => FNeg,
        "IntToFloat" => IntToFloat,
        "FloatToInt" => FloatToInt,
        other => {
            return Err(AsmError {
                line,
                msg: format!("bad unop `{other}`"),
            })
        }
    })
}

fn parse_instr(text: &str, line: usize) -> Result<SimdInstr, AsmError> {
    let mut parts = text.split_whitespace();
    let head = parts.next().ok_or(AsmError {
        line,
        msg: "empty instruction".into(),
    })?;
    let arg = parts.next();
    fn need<'b>(a: Option<&'b str>, head: &str, line: usize) -> Result<&'b str, AsmError> {
        a.ok_or(AsmError {
            line,
            msg: format!("`{head}` needs an operand"),
        })
    }
    Ok(match head {
        "Push" => SimdInstr::Op(Op::Push(need(arg, head, line)?.parse().map_err(|_| {
            AsmError {
                line,
                msg: "bad int".into(),
            }
        })?)),
        "PushF" => SimdInstr::Op(Op::PushF(parse_u64(need(arg, head, line)?, line)?)),
        "Dup" => SimdInstr::Op(Op::Dup),
        "Pop" => SimdInstr::Op(Op::Pop(need(arg, head, line)?.parse().map_err(|_| {
            AsmError {
                line,
                msg: "bad count".into(),
            }
        })?)),
        "Ld" => SimdInstr::Op(Op::Ld(parse_addr(need(arg, head, line)?, line)?)),
        "St" => SimdInstr::Op(Op::St(parse_addr(need(arg, head, line)?, line)?)),
        "LdRemote" => SimdInstr::Op(Op::LdRemote(parse_addr(need(arg, head, line)?, line)?)),
        "StRemote" => SimdInstr::Op(Op::StRemote(parse_addr(need(arg, head, line)?, line)?)),
        "Bin" => SimdInstr::Op(Op::Bin(parse_binop(need(arg, head, line)?, line)?)),
        "Un" => SimdInstr::Op(Op::Un(parse_unop(need(arg, head, line)?, line)?)),
        "PeId" => SimdInstr::Op(Op::PeId),
        "NProc" => SimdInstr::Op(Op::NProc),
        "PushRet" => SimdInstr::Op(Op::PushRet),
        "PopRet" => SimdInstr::Op(Op::PopRet),
        "Halt" => SimdInstr::Halt,
        "SetPc" => SimdInstr::SetPc(parse_state(need(arg, head, line)?, line)?),
        "JumpF" => {
            let t = parse_state(kv(need(arg, head, line)?, "t", line)?, line)?;
            let f = parse_state(kv(need(parts.next(), head, line)?, "f", line)?, line)?;
            SimdInstr::JumpF { t, f }
        }
        "RetMulti" => {
            let targets: Result<Vec<StateId>, AsmError> = need(arg, head, line)?
                .split(',')
                .map(|s| parse_state(s, line))
                .collect();
            SimdInstr::RetMulti(targets?)
        }
        "Spawn" => {
            let child = parse_state(kv(need(arg, head, line)?, "child", line)?, line)?;
            let next = parse_state(kv(need(parts.next(), head, line)?, "next", line)?, line)?;
            SimdInstr::Spawn { child, next }
        }
        other => {
            return Err(AsmError {
                line,
                msg: format!("unknown instruction `{other}`"),
            })
        }
    })
}

fn parse_hash_expr(text: &str, line: usize) -> Result<HashExpr, AsmError> {
    let mut parts = text.split_whitespace();
    let family = parts.next().ok_or(AsmError {
        line,
        msg: "empty hash expression".into(),
    })?;
    let mut field = |key: &str| -> Result<u64, AsmError> {
        let tok = parts.next().ok_or(AsmError {
            line,
            msg: format!("hash missing `{key}`"),
        })?;
        let v = kv(tok, key, line)?;
        if key == "neg" {
            Ok(match v {
                "true" => 1,
                "false" => 0,
                _ => {
                    return Err(AsmError {
                        line,
                        msg: format!("bad bool `{v}`"),
                    })
                }
            })
        } else {
            parse_u64(v, line)
        }
    };
    Ok(match family {
        "shiftmask" => {
            let neg = field("neg")? != 0;
            let shift = field("shift")? as u32;
            let mask = field("mask")?;
            HashExpr::ShiftMask { neg, shift, mask }
        }
        "xorfold" => {
            let shift = field("shift")? as u32;
            let mask = field("mask")?;
            HashExpr::XorFold { shift, mask }
        }
        "addfold" => {
            let shift = field("shift")? as u32;
            let mask = field("mask")?;
            HashExpr::AddFold { shift, mask }
        }
        "mulshift" => {
            let mul = field("mul")?;
            let shift = field("shift")? as u32;
            let mask = field("mask")?;
            HashExpr::MulShift { mul, shift, mask }
        }
        other => {
            return Err(AsmError {
                line,
                msg: format!("unknown hash family `{other}`"),
            })
        }
    })
}

/// Parse assembly text back into a program, installing `costs` as the
/// cost model.
pub fn parse(text: &str, costs: CostModel) -> Result<SimdProgram, AsmError> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let mut p = Parser { lines, pos: 0 };

    // Header.
    let (hline, header) = p.next().ok_or(AsmError {
        line: 1,
        msg: "empty input".into(),
    })?;
    let mut tokens = header.split_whitespace();
    if tokens.next() != Some(".program") {
        return Err(p.err(hline, "expected `.program` header"));
    }
    let start = parse_block_id(kv(tokens.next().unwrap_or(""), "start", hline)?, hline)?;
    let start_state = parse_state(
        kv(tokens.next().unwrap_or(""), "start_state", hline)?,
        hline,
    )?;
    let poly_words = parse_u64(kv(tokens.next().unwrap_or(""), "poly", hline)?, hline)? as u32;
    let mono_words = parse_u64(kv(tokens.next().unwrap_or(""), "mono", hline)?, hline)? as u32;

    let mut blocks: Vec<MetaBlock> = Vec::new();
    while let Some((bline, bhead)) = p.next() {
        let mut tokens = bhead.split_whitespace();
        if tokens.next() != Some(".block") {
            return Err(p.err(bline, format!("expected `.block`, found `{bhead}`")));
        }
        let _id = tokens.next().ok_or(p.err(bline, "missing block id"))?;
        let name = tokens
            .next()
            .ok_or(p.err(bline, "missing block name"))?
            .to_string();
        let members_tok = kv(tokens.next().unwrap_or(""), "members", bline)?;
        let members: Result<Vec<StateId>, AsmError> = members_tok
            .split(',')
            .map(|s| parse_state(s, bline))
            .collect();
        let members = members?;

        // Body lines until `.dispatch`.
        let mut body: Vec<GuardedInstr> = Vec::new();
        loop {
            let (iline, l) = p
                .peek()
                .ok_or(p.err(bline, "block missing a `.dispatch`"))?;
            if l.starts_with(".dispatch") {
                break;
            }
            p.next();
            let rest = l
                .strip_prefix('[')
                .ok_or(p.err(iline, format!("expected `[guard] instr`, found `{l}`")))?;
            let (guard_text, instr_text) = rest
                .split_once(']')
                .ok_or(p.err(iline, "unterminated guard"))?;
            let guard: Result<Vec<StateId>, AsmError> = guard_text
                .split(',')
                .map(|s| parse_state(s.trim(), iline))
                .collect();
            let mut guard = guard?;
            guard.sort_unstable();
            body.push(GuardedInstr {
                guard,
                instr: parse_instr(instr_text.trim(), iline)?,
            });
        }

        // Dispatch.
        let (dline, dhead) = p.next().unwrap();
        let mut tokens = dhead.split_whitespace();
        tokens.next(); // .dispatch
        let kind = tokens.next().ok_or(p.err(dline, "missing dispatch kind"))?;
        let dispatch = match kind {
            "end" => Dispatch::End,
            "direct" => Dispatch::Direct(parse_block_id(
                tokens.next().ok_or(p.err(dline, "missing target"))?,
                dline,
            )?),
            "barrier" => {
                let cont = parse_block_id(kv(tokens.next().unwrap_or(""), "cont", dline)?, dline)?;
                let barrier =
                    parse_block_id(kv(tokens.next().unwrap_or(""), "barrier", dline)?, dline)?;
                Dispatch::DirectWithBarrier { cont, barrier }
            }
            "hashed" => {
                let bits_tok = kv(tokens.next().unwrap_or(""), "bits", dline)?;
                let mut bit_of = Vec::new();
                for pair in bits_tok.split(',') {
                    let (s, b) = pair
                        .split_once(':')
                        .ok_or(p.err(dline, format!("bad bit pair `{pair}`")))?;
                    bit_of.push((parse_state(s, dline)?, parse_u64(b, dline)? as u32));
                }
                let barrier_mask =
                    parse_u64(kv(tokens.next().unwrap_or(""), "barrier", dline)?, dline)?;
                // `hash ...` line.
                let (hl, hline_text) = p
                    .next()
                    .ok_or(p.err(dline, "hashed dispatch missing `hash` line"))?;
                let expr_text = hline_text
                    .strip_prefix("hash ")
                    .ok_or(p.err(hl, "expected `hash <family> ...`"))?;
                let expr = parse_hash_expr(expr_text, hl)?;
                // `key ... -> mb...` lines.
                let mut keys = Vec::new();
                let mut targets = Vec::new();
                while let Some((kl, l)) = p.peek() {
                    if !l.starts_with("key ") {
                        break;
                    }
                    p.next();
                    let rest = &l[4..];
                    let (k, t) = rest
                        .split_once("->")
                        .ok_or(p.err(kl, "expected `key K -> mbN`"))?;
                    keys.push(parse_u64(k.trim(), kl)?);
                    targets.push(parse_block_id(t.trim(), kl)?);
                }
                // Rebuild the dispatch table from the expression + keys.
                let mut table = vec![None; expr.table_size()];
                for (i, &k) in keys.iter().enumerate() {
                    let h = expr.eval(k) as usize;
                    if table
                        .get(h)
                        .map(|e: &Option<u32>| e.is_some())
                        .unwrap_or(true)
                    {
                        return Err(p.err(dline, format!("hash collision on key {k:#x}")));
                    }
                    table[h] = Some(i as u32);
                }
                Dispatch::Hashed {
                    bit_of,
                    barrier_mask,
                    hash: PerfectHash { expr, table, keys },
                    targets,
                }
            }
            other => return Err(p.err(dline, format!("unknown dispatch `{other}`"))),
        };
        blocks.push(MetaBlock {
            members,
            name,
            body,
            dispatch,
        });
    }

    let program = SimdProgram {
        blocks,
        start,
        start_state,
        poly_words,
        mono_words,
        costs,
    };
    program
        .validate()
        .map_err(|m| AsmError { line: 0, msg: m })?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("", CostModel::default()).is_err());
        assert!(parse("bogus", CostModel::default()).is_err());
        assert!(parse(
            ".program start=mb0 start_state=s0 poly=0 mono=0\n.block mb0 x members=s0\n  [s0] Frobnicate\n.dispatch end",
            CostModel::default()
        )
        .is_err());
    }

    #[test]
    fn error_reports_line_numbers() {
        let text = ".program start=mb0 start_state=s0 poly=0 mono=0\n\
                    .block mb0 ms_0 members=s0\n\
                    \x20 [s0] Push nope\n\
                    .dispatch end";
        let err = parse(text, CostModel::default()).unwrap_err();
        assert_eq!(err.line, 3, "{err}");
    }
}
