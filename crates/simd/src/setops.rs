//! Data-parallel set algebra over `u64` word slices.
//!
//! The converter's inner loops (union, difference, subset tests, hashing
//! of candidate meta states) are word-parallel over dense bitsets. This
//! module widens them to 128/256-bit lanes behind a portable, std-only
//! shim: `std::arch` intrinsics selected *at runtime* (AVX2+POPCNT on
//! x86_64, NEON on aarch64) with the plain scalar loop as the universal
//! fallback. Callers never see the dispatch — every public kernel picks
//! the widest available path once (cached) and the scalar twin is exported
//! under [`scalar`] so tests can assert bit-identical results.
//!
//! Besides the element-wise kernels, the module provides the batched
//! primitives subset construction actually wants:
//!
//! * [`union_count`] — union into a caller-owned scratch vector with a
//!   fused popcount (no allocation, no separate counting pass);
//! * [`union_count_hash`] — the same, additionally folding every output
//!   word into an [`FxHasher`] as it is produced (hash-while-union), so
//!   interning a candidate set needs no extra traversal;
//! * [`subset_of_many`] — one query set tested against many candidate
//!   spans laid out contiguously in a word arena (the SoA layout
//!   [`subsume`](../../msc_core/subsume/index.html) and the set arena
//!   stream through).
//!
//! Overriding the dispatch: set `MSC_NO_SIMD=1` to force the scalar path
//! (read once per process; used by CI to exercise the fallback).

use msc_ir::util::FxHasher;
use std::hash::Hasher;
use std::sync::OnceLock;

/// Which lane width the runtime dispatch selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lanes {
    /// Plain 64-bit scalar loops (universal fallback).
    Scalar,
    /// 256-bit AVX2 with hardware POPCNT (x86_64).
    Avx2,
    /// 128-bit NEON (aarch64).
    Neon,
}

impl Lanes {
    /// Short human-readable name (metrics, --stats output).
    pub fn name(self) -> &'static str {
        match self {
            Lanes::Scalar => "scalar",
            Lanes::Avx2 => "avx2",
            Lanes::Neon => "neon",
        }
    }
}

/// The lane width every kernel in this module dispatches to (detected once
/// per process; `MSC_NO_SIMD=1` forces [`Lanes::Scalar`]).
pub fn lanes() -> Lanes {
    static LANES: OnceLock<Lanes> = OnceLock::new();
    *LANES.get_or_init(|| {
        if std::env::var_os("MSC_NO_SIMD").is_some_and(|v| v != "0" && !v.is_empty()) {
            return Lanes::Scalar;
        }
        detect()
    })
}

#[cfg(target_arch = "x86_64")]
fn detect() -> Lanes {
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("popcnt")
    {
        Lanes::Avx2
    } else {
        Lanes::Scalar
    }
}

#[cfg(target_arch = "aarch64")]
fn detect() -> Lanes {
    if std::arch::is_aarch64_feature_detected!("neon") {
        Lanes::Neon
    } else {
        Lanes::Scalar
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn detect() -> Lanes {
    Lanes::Scalar
}

/// Population count of `words`.
pub fn popcount(words: &[u64]) -> u32 {
    match lanes() {
        #[cfg(target_arch = "x86_64")]
        Lanes::Avx2 => unsafe { x86::popcount(words) },
        #[cfg(target_arch = "aarch64")]
        Lanes::Neon => neon::popcount(words),
        _ => scalar::popcount(words),
    }
}

/// `dst[i] |= src[i]` for every `i < src.len()`. Requires
/// `src.len() <= dst.len()`.
pub fn or_into(dst: &mut [u64], src: &[u64]) {
    assert!(src.len() <= dst.len(), "or_into: src longer than dst");
    match lanes() {
        #[cfg(target_arch = "x86_64")]
        Lanes::Avx2 => unsafe { x86::or_into(dst, src) },
        #[cfg(target_arch = "aarch64")]
        Lanes::Neon => neon::or_into(dst, src),
        _ => scalar::or_into(dst, src),
    }
}

/// Union into scratch: `out = long | short` (with `short` zero-extended to
/// `long.len()`), returning the population count of the result. `out` is
/// cleared and overwritten; no allocation happens once its capacity is
/// warm. Requires `short.len() <= long.len()`.
pub fn union_count(long: &[u64], short: &[u64], out: &mut Vec<u64>) -> u32 {
    assert!(short.len() <= long.len(), "union_count: operands swapped");
    out.clear();
    out.resize(long.len(), 0);
    match lanes() {
        #[cfg(target_arch = "x86_64")]
        Lanes::Avx2 => unsafe { x86::union_count(long, short, out) },
        #[cfg(target_arch = "aarch64")]
        Lanes::Neon => neon::union_count(long, short, out),
        _ => scalar::union_count(long, short, out),
    }
}

/// [`union_count`] fused with hashing: every word of the union is folded
/// into `hasher` (via `write_u64`) in index order as it is produced, so the
/// hash a caller finishes afterwards is exactly the hash of the output
/// words — no second traversal. Returns the population count.
pub fn union_count_hash(
    long: &[u64],
    short: &[u64],
    out: &mut Vec<u64>,
    hasher: &mut FxHasher,
) -> u32 {
    let n = union_count(long, short, out);
    for &w in out.iter() {
        hasher.write_u64(w);
    }
    n
}

/// Difference into scratch: `out = a & !b` (with `b` zero-extended or
/// truncated to `a.len()`), returning the population count. `out` is
/// cleared and overwritten.
pub fn andnot_count(a: &[u64], b: &[u64], out: &mut Vec<u64>) -> u32 {
    out.clear();
    out.resize(a.len(), 0);
    match lanes() {
        #[cfg(target_arch = "x86_64")]
        Lanes::Avx2 => unsafe { x86::andnot_count(a, b, out) },
        #[cfg(target_arch = "aarch64")]
        Lanes::Neon => neon::andnot_count(a, b, out),
        _ => scalar::andnot_count(a, b, out),
    }
}

/// True when the set represented by `a` is a subset of `b`: every word of
/// `a` beyond `b`'s length must be zero and `a[i] & !b[i] == 0` elsewhere.
pub fn subset_of(a: &[u64], b: &[u64]) -> bool {
    if a.len() > b.len() && a[b.len()..].iter().any(|&w| w != 0) {
        return false;
    }
    let a = &a[..a.len().min(b.len())];
    match lanes() {
        #[cfg(target_arch = "x86_64")]
        Lanes::Avx2 => unsafe { x86::subset_of(a, b) },
        #[cfg(target_arch = "aarch64")]
        Lanes::Neon => neon::subset_of(a, b),
        _ => scalar::subset_of(a, b),
    }
}

/// Batched subset test against an SoA word arena: for each `(offset,
/// nwords)` span into `arena`, test `a ⊆ arena[span]` and push the span's
/// *index* into `hits` for every success. One dispatch for the whole
/// candidate list; the spans stream linearly through the arena.
pub fn subset_of_many(a: &[u64], arena: &[u64], spans: &[(u32, u32)], hits: &mut Vec<u32>) {
    for (i, &(off, nw)) in spans.iter().enumerate() {
        let cand = &arena[off as usize..off as usize + nw as usize];
        if subset_of(a, cand) {
            hits.push(i as u32);
        }
    }
}

/// The scalar twins of every kernel — the universal fallback, and the
/// reference the SIMD paths are property-tested against.
pub mod scalar {
    /// Population count (SWAR `count_ones` per word).
    pub fn popcount(words: &[u64]) -> u32 {
        words.iter().map(|w| w.count_ones()).sum()
    }

    /// `dst |= src` word-wise.
    pub fn or_into(dst: &mut [u64], src: &[u64]) {
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            *d |= s;
        }
    }

    /// `out = long | short`, returning the popcount. `out` must already be
    /// `long.len()` long.
    pub fn union_count(long: &[u64], short: &[u64], out: &mut [u64]) -> u32 {
        let mut n = 0u32;
        for i in 0..short.len() {
            let w = long[i] | short[i];
            out[i] = w;
            n += w.count_ones();
        }
        for i in short.len()..long.len() {
            let w = long[i];
            out[i] = w;
            n += w.count_ones();
        }
        n
    }

    /// `out = a & !b`, returning the popcount. `out` must be `a.len()`.
    pub fn andnot_count(a: &[u64], b: &[u64], out: &mut [u64]) -> u32 {
        let nb = a.len().min(b.len());
        let mut n = 0u32;
        for i in 0..nb {
            let w = a[i] & !b[i];
            out[i] = w;
            n += w.count_ones();
        }
        for i in nb..a.len() {
            let w = a[i];
            out[i] = w;
            n += w.count_ones();
        }
        n
    }

    /// All of `a` covered by `b` (`a.len() <= b.len()` required).
    pub fn subset_of(a: &[u64], b: &[u64]) -> bool {
        a.iter().zip(b.iter()).all(|(&x, &y)| x & !y == 0)
    }
}

/// 256-bit AVX2 paths. Every function is `unsafe` because it requires the
/// `avx2` and `popcnt` target features, which [`lanes`] verified at
/// runtime before dispatching here.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// Safety: requires AVX2 + POPCNT (checked by the dispatcher).
    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub unsafe fn popcount(words: &[u64]) -> u32 {
        // `count_ones` lowers to the POPCNT instruction under the popcnt
        // target feature — one instruction per word instead of the ~12-op
        // SWAR sequence the portable build emits.
        let mut n = 0u32;
        for &w in words {
            n += w.count_ones();
        }
        n
    }

    /// Safety: requires AVX2 + POPCNT.
    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub unsafe fn or_into(dst: &mut [u64], src: &[u64]) {
        let n = src.len();
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0usize;
        while i + 4 <= n {
            let d = _mm256_loadu_si256(dp.add(i) as *const __m256i);
            let s = _mm256_loadu_si256(sp.add(i) as *const __m256i);
            _mm256_storeu_si256(dp.add(i) as *mut __m256i, _mm256_or_si256(d, s));
            i += 4;
        }
        while i < n {
            *dp.add(i) |= *sp.add(i);
            i += 1;
        }
    }

    /// Safety: requires AVX2 + POPCNT; `out.len() == long.len()`,
    /// `short.len() <= long.len()`.
    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub unsafe fn union_count(long: &[u64], short: &[u64], out: &mut [u64]) -> u32 {
        let (nl, ns) = (long.len(), short.len());
        let (lp, sp, op) = (long.as_ptr(), short.as_ptr(), out.as_mut_ptr());
        let mut n = 0u32;
        let mut i = 0usize;
        while i + 4 <= ns {
            let l = _mm256_loadu_si256(lp.add(i) as *const __m256i);
            let s = _mm256_loadu_si256(sp.add(i) as *const __m256i);
            let o = _mm256_or_si256(l, s);
            _mm256_storeu_si256(op.add(i) as *mut __m256i, o);
            n += (_mm256_extract_epi64::<0>(o) as u64).count_ones();
            n += (_mm256_extract_epi64::<1>(o) as u64).count_ones();
            n += (_mm256_extract_epi64::<2>(o) as u64).count_ones();
            n += (_mm256_extract_epi64::<3>(o) as u64).count_ones();
            i += 4;
        }
        while i < ns {
            let w = *lp.add(i) | *sp.add(i);
            *op.add(i) = w;
            n += w.count_ones();
            i += 1;
        }
        while i < nl {
            let w = *lp.add(i);
            *op.add(i) = w;
            n += w.count_ones();
            i += 1;
        }
        n
    }

    /// Safety: requires AVX2 + POPCNT; `out.len() == a.len()`.
    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub unsafe fn andnot_count(a: &[u64], b: &[u64], out: &mut [u64]) -> u32 {
        let (na, nb) = (a.len(), a.len().min(b.len()));
        let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut n = 0u32;
        let mut i = 0usize;
        while i + 4 <= nb {
            let va = _mm256_loadu_si256(ap.add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(bp.add(i) as *const __m256i);
            // andnot(b, a) = !b & a.
            let o = _mm256_andnot_si256(vb, va);
            _mm256_storeu_si256(op.add(i) as *mut __m256i, o);
            n += (_mm256_extract_epi64::<0>(o) as u64).count_ones();
            n += (_mm256_extract_epi64::<1>(o) as u64).count_ones();
            n += (_mm256_extract_epi64::<2>(o) as u64).count_ones();
            n += (_mm256_extract_epi64::<3>(o) as u64).count_ones();
            i += 4;
        }
        while i < nb {
            let w = *ap.add(i) & !*bp.add(i);
            *op.add(i) = w;
            n += w.count_ones();
            i += 1;
        }
        while i < na {
            let w = *ap.add(i);
            *op.add(i) = w;
            n += w.count_ones();
            i += 1;
        }
        n
    }

    /// Safety: requires AVX2 + POPCNT; `a.len() <= b.len()`.
    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub unsafe fn subset_of(a: &[u64], b: &[u64]) -> bool {
        let n = a.len();
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(ap.add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(bp.add(i) as *const __m256i);
            acc = _mm256_or_si256(acc, _mm256_andnot_si256(vb, va));
            i += 4;
        }
        if _mm256_testz_si256(acc, acc) == 0 {
            return false;
        }
        while i < n {
            if *ap.add(i) & !*bp.add(i) != 0 {
                return false;
            }
            i += 1;
        }
        true
    }
}

/// 128-bit NEON paths (aarch64; NEON is baseline there, but the dispatch
/// still verifies it so the module stays honest on exotic targets).
#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    pub fn popcount(words: &[u64]) -> u32 {
        // aarch64 `count_ones` lowers to CNT+ADDV natively.
        words.iter().map(|w| w.count_ones()).sum()
    }

    pub fn or_into(dst: &mut [u64], src: &[u64]) {
        let n = src.len();
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0usize;
        unsafe {
            while i + 2 <= n {
                let d = vld1q_u64(dp.add(i));
                let s = vld1q_u64(sp.add(i));
                vst1q_u64(dp.add(i), vorrq_u64(d, s));
                i += 2;
            }
            while i < n {
                *dp.add(i) |= *sp.add(i);
                i += 1;
            }
        }
    }

    pub fn union_count(long: &[u64], short: &[u64], out: &mut [u64]) -> u32 {
        let (nl, ns) = (long.len(), short.len());
        let (lp, sp, op) = (long.as_ptr(), short.as_ptr(), out.as_mut_ptr());
        let mut n = 0u32;
        let mut i = 0usize;
        unsafe {
            while i + 2 <= ns {
                let o = vorrq_u64(vld1q_u64(lp.add(i)), vld1q_u64(sp.add(i)));
                vst1q_u64(op.add(i), o);
                n += vgetq_lane_u64::<0>(o).count_ones();
                n += vgetq_lane_u64::<1>(o).count_ones();
                i += 2;
            }
            while i < ns {
                let w = *lp.add(i) | *sp.add(i);
                *op.add(i) = w;
                n += w.count_ones();
                i += 1;
            }
            while i < nl {
                let w = *lp.add(i);
                *op.add(i) = w;
                n += w.count_ones();
                i += 1;
            }
        }
        n
    }

    pub fn andnot_count(a: &[u64], b: &[u64], out: &mut [u64]) -> u32 {
        let (na, nb) = (a.len(), a.len().min(b.len()));
        let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut n = 0u32;
        let mut i = 0usize;
        unsafe {
            while i + 2 <= nb {
                // bic(a, b) = a & !b.
                let o = vbicq_u64(vld1q_u64(ap.add(i)), vld1q_u64(bp.add(i)));
                vst1q_u64(op.add(i), o);
                n += vgetq_lane_u64::<0>(o).count_ones();
                n += vgetq_lane_u64::<1>(o).count_ones();
                i += 2;
            }
            while i < nb {
                let w = *ap.add(i) & !*bp.add(i);
                *op.add(i) = w;
                n += w.count_ones();
                i += 1;
            }
            while i < na {
                let w = *ap.add(i);
                *op.add(i) = w;
                n += w.count_ones();
                i += 1;
            }
        }
        n
    }

    pub fn subset_of(a: &[u64], b: &[u64]) -> bool {
        let n = a.len();
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut i = 0usize;
        unsafe {
            let mut acc = vdupq_n_u64(0);
            while i + 2 <= n {
                acc = vorrq_u64(acc, vbicq_u64(vld1q_u64(ap.add(i)), vld1q_u64(bp.add(i))));
                i += 2;
            }
            if vgetq_lane_u64::<0>(acc) | vgetq_lane_u64::<1>(acc) != 0 {
                return false;
            }
            while i < n {
                if *ap.add(i) & !*bp.add(i) != 0 {
                    return false;
                }
                i += 1;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_is_cached_and_named() {
        let l = lanes();
        assert_eq!(l, lanes());
        assert!(!l.name().is_empty());
    }

    #[test]
    fn popcount_basics() {
        assert_eq!(popcount(&[]), 0);
        assert_eq!(popcount(&[0]), 0);
        assert_eq!(popcount(&[u64::MAX]), 64);
        assert_eq!(popcount(&[1, 2, 4, 8, u64::MAX]), 68);
    }

    #[test]
    fn or_into_masks() {
        let mut d = vec![1u64, 2, 4, 0, 0xff];
        or_into(&mut d, &[2, 2, 2]);
        assert_eq!(d, vec![3, 2, 6, 0, 0xff]);
    }

    #[test]
    fn union_count_zero_extends_short() {
        let mut out = Vec::new();
        let n = union_count(&[1, 0, 8, 16], &[2, 4], &mut out);
        assert_eq!(out, vec![3, 4, 8, 16]);
        assert_eq!(n, 5);
    }

    #[test]
    fn andnot_count_handles_length_mismatch() {
        let mut out = Vec::new();
        // b longer than a: extra b words ignored.
        assert_eq!(andnot_count(&[0b111], &[0b010, 0xff, 0xff], &mut out), 2);
        assert_eq!(out, vec![0b101]);
        // b shorter than a: missing b words are zero.
        assert_eq!(andnot_count(&[0b111, 0b11], &[0b001], &mut out), 4);
        assert_eq!(out, vec![0b110, 0b11]);
    }

    #[test]
    fn subset_of_covers_length_cases() {
        assert!(subset_of(&[0b01], &[0b11]));
        assert!(!subset_of(&[0b10], &[0b01]));
        // Extra trailing zero words on the left are harmless…
        assert!(subset_of(&[0b01, 0, 0], &[0b11]));
        // …but a set bit past the right's length is not covered.
        assert!(!subset_of(&[0b01, 0, 4], &[0b11]));
        assert!(subset_of(&[], &[1, 2, 3]));
    }

    #[test]
    fn union_count_hash_matches_separate_hash() {
        let mut out = Vec::new();
        let mut fused = FxHasher::default();
        let n = union_count_hash(&[1, 2, 3, 4, 5], &[8, 8], &mut out, &mut fused);
        assert_eq!(n, popcount(&out));
        let mut plain = FxHasher::default();
        for &w in &out {
            plain.write_u64(w);
        }
        assert_eq!(fused.finish(), plain.finish());
    }

    #[test]
    fn subset_of_many_reports_hit_indices() {
        // Arena: spans [0..2] = {bits of words 3,0}, [2..3] = {1}, [3..5].
        let arena = vec![3u64, 0, 1, 0xffff, 0xffff];
        let spans = vec![(0u32, 2u32), (2, 1), (3, 2)];
        let mut hits = Vec::new();
        subset_of_many(&[1], &arena, &spans, &mut hits);
        assert_eq!(hits, vec![0, 1, 2]);
        hits.clear();
        subset_of_many(&[2], &arena, &spans, &mut hits);
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn long_inputs_cross_all_lane_tails() {
        // 4-word AVX2 blocks, 2-word NEON blocks, plus every tail length.
        for len in 0usize..24 {
            let a: Vec<u64> = (0..len).map(|i| (i as u64).wrapping_mul(0x9e37)).collect();
            let b: Vec<u64> = (0..len)
                .map(|i| (i as u64).wrapping_mul(0x51ed) ^ 7)
                .collect();
            let mut out = Vec::new();
            let n = union_count(&a, &b, &mut out);
            let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x | y).collect();
            assert_eq!(out, expect, "len {len}");
            assert_eq!(n, scalar::popcount(&expect), "len {len}");
            assert!(subset_of(&a, &out), "len {len}");
            assert!(subset_of(&b, &out), "len {len}");
            let mut diff = Vec::new();
            let nd = andnot_count(&out, &b, &mut diff);
            assert_eq!(nd, scalar::popcount(&diff), "len {len}");
            assert!(subset_of(&diff, &a), "len {len}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn words() -> impl Strategy<Value = Vec<u64>> {
        prop::collection::vec(any::<u64>(), 0..20)
    }

    proptest! {
        /// The dispatched kernels agree bit-for-bit with the scalar twins
        /// on random inputs — words, counts, and subset verdicts.
        #[test]
        fn simd_matches_scalar(a in words(), b in words()) {
            let (long, short) = if a.len() >= b.len() { (&a, &b) } else { (&b, &a) };
            let mut out = Vec::new();
            let n = union_count(long, short, &mut out);
            let mut sout = vec![0u64; long.len()];
            let sn = scalar::union_count(long, short, &mut sout);
            prop_assert_eq!(&out, &sout);
            prop_assert_eq!(n, sn);

            let mut dout = Vec::new();
            let dn = andnot_count(&a, &b, &mut dout);
            let mut sdout = vec![0u64; a.len()];
            let sdn = scalar::andnot_count(&a, &b, &mut sdout);
            prop_assert_eq!(&dout, &sdout);
            prop_assert_eq!(dn, sdn);

            prop_assert_eq!(popcount(&a), scalar::popcount(&a));

            let trunc = a.len().min(b.len());
            let fast = subset_of(&a[..trunc], &b);
            let slow = scalar::subset_of(&a[..trunc], &b);
            prop_assert_eq!(fast, slow);

            let mut ored = b.clone();
            or_into(&mut ored, &a[..trunc]);
            let mut sored = b.clone();
            scalar::or_into(&mut sored, &a[..trunc]);
            prop_assert_eq!(ored, sored);
        }
    }
}
