//! The SIMD machine: a cycle-accounting simulator of a MasPar-MP-1-class
//! array — one control unit, N processing elements with private memory and
//! operand stacks, an enable mask, a `globalor` reduction network, and a
//! router for parallel subscripting.
//!
//! This is the substrate substitution documented in DESIGN.md: the paper
//! ran on real MP-1 hardware; the claims it makes are about *relative*
//! cost structure (instruction issues, PE utilization, per-PE memory),
//! which this simulator accounts for exactly.
//!
//! Execution semantics: within a meta block, instruction guards test the
//! PE's `pc` *at block entry* while control instructions write a shadow
//! `next_pc`, committed at the dispatch. (The paper's generated MPL relies
//! on `BIT` disjointness for the same effect; the shadow register makes the
//! guarantee explicit.) The dispatch computes the `globalor` aggregate of
//! all live `pc` bits, applies the §3.2.4 barrier adjustment, and hashes
//! into the jump table.

use crate::program::{BlockId, Dispatch, SimdInstr, SimdProgram};
use msc_ir::{Op, Space, StateId};
use std::fmt;

/// Run-time failures. All of these indicate either a malformed program
/// (compiler bug — the integration tests assert they never fire on
/// pipeline output) or resource exhaustion (`SpawnOverflow`, `Watchdog`).
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// `spawn` wanted more idle PEs than exist (§3.2.5's stated limit).
    SpawnOverflow {
        /// Meta block where the spawn ran.
        block: BlockId,
        /// PEs requested.
        requested: usize,
        /// Idle PEs available.
        available: usize,
    },
    /// The dispatch aggregate matched no successor key.
    UndefinedTransition {
        /// Meta block that dispatched.
        block: BlockId,
        /// The aggregate that missed.
        aggregate: u64,
    },
    /// A PE's `pc` held a state with no bit assignment at a dispatch.
    UnmappedState {
        /// Meta block that dispatched.
        block: BlockId,
        /// The unmapped state.
        state: StateId,
    },
    /// Operand-stack underflow on some PE.
    StackUnderflow {
        /// The PE.
        pe: usize,
    },
    /// Return-site stack underflow on some PE.
    RetStackUnderflow {
        /// The PE.
        pe: usize,
    },
    /// `RetMulti` selector out of range.
    BadSelector {
        /// The PE.
        pe: usize,
        /// The selector value.
        selector: i64,
    },
    /// Execution exceeded the cycle budget (non-termination guard).
    Watchdog {
        /// The configured limit.
        max_cycles: u64,
    },
    /// Memory access out of the program's declared bounds.
    BadAddress {
        /// The PE.
        pe: usize,
        /// Offending word index.
        index: i64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::SpawnOverflow {
                block,
                requested,
                available,
            } => write!(
                f,
                "spawn in {block} requested {requested} PEs but only {available} are idle"
            ),
            RunError::UndefinedTransition { block, aggregate } => {
                write!(f, "no transition from {block} for aggregate {aggregate:#b}")
            }
            RunError::UnmappedState { block, state } => {
                write!(
                    f,
                    "state {state} has no aggregate bit at {block}'s dispatch"
                )
            }
            RunError::StackUnderflow { pe } => write!(f, "operand stack underflow on PE {pe}"),
            RunError::RetStackUnderflow { pe } => write!(f, "return stack underflow on PE {pe}"),
            RunError::BadSelector { pe, selector } => {
                write!(f, "return selector {selector} out of range on PE {pe}")
            }
            RunError::Watchdog { max_cycles } => {
                write!(f, "execution exceeded {max_cycles} cycles")
            }
            RunError::BadAddress { pe, index } => {
                write!(f, "PE {pe} accessed out-of-range word {index}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of processing elements.
    pub n_pe: usize,
    /// How many PEs start as live processes in the program's start state;
    /// the rest sit in the idle pool for `spawn` to recruit (§3.2.5:
    /// "processing elements that are not in use would be given a 'pc'
    /// value indicating that they are not in any meta state"). Defaults to
    /// all of them (pure SPMD).
    pub active_at_start: usize,
    /// Cycle budget before [`RunError::Watchdog`].
    pub max_cycles: u64,
    /// Record a [`TraceEvent`] stream (block entries and dispatches) in
    /// [`SimdMachine::trace`].
    pub trace: bool,
    /// Local-memory ports shared by the whole array. `0` means one port
    /// per PE (fully parallel — the historical model); `p > 0` serializes
    /// each memory-class issue over `⌈enabled/p⌉` port rounds.
    pub memory_ports: usize,
    /// Extra router cycles charged on every aggregate (`globalor` +
    /// hashed / barrier) dispatch, on top of the dispatch instruction cost.
    pub globalor_latency: u32,
}

impl MachineConfig {
    /// All `n_pe` PEs live from the start (SPMD).
    pub fn spmd(n_pe: usize) -> Self {
        MachineConfig {
            n_pe,
            active_at_start: n_pe,
            max_cycles: 100_000_000,
            trace: false,
            memory_ports: 0,
            globalor_latency: 0,
        }
    }

    /// `active` live PEs, the rest idle (for spawn workloads).
    pub fn with_pool(n_pe: usize, active: usize) -> Self {
        MachineConfig {
            n_pe,
            active_at_start: active.min(n_pe),
            max_cycles: 100_000_000,
            trace: false,
            memory_ports: 0,
            globalor_latency: 0,
        }
    }

    /// Builder-style trace enable.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// One recorded execution event (when [`MachineConfig::trace`] is set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The control unit entered a meta block.
    EnterBlock {
        /// Which block.
        block: BlockId,
        /// Live (non-idle) PEs at entry.
        live: usize,
        /// Cycle counter at entry.
        at_cycle: u64,
    },
    /// A dispatch chose the next block.
    Dispatch {
        /// The block dispatching.
        from: BlockId,
        /// Chosen successor (`None` = execution ended).
        to: Option<BlockId>,
        /// The aggregate key used (0 for direct dispatches).
        aggregate: u64,
    },
}

/// Execution metrics, split so utilization is computable the way §2.4
/// discusses it (idle PE cycles inside meta-state bodies).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// Total cycles: body + guard switches + dispatches.
    pub cycles: u64,
    /// Cycles spent issuing body instructions.
    pub body_cycles: u64,
    /// Cycles spent switching PE enable masks.
    pub guard_cycles: u64,
    /// Cycles spent in `globalor` + hashed dispatch.
    pub dispatch_cycles: u64,
    /// Instructions issued by the control unit.
    pub issues: u64,
    /// Meta-state transitions taken.
    pub dispatches: u64,
    /// Σ (enabled PEs × instruction cost) over all issues — the useful
    /// work actually performed.
    pub enabled_pe_cycles: u64,
    /// Σ (live PEs × instruction cost) over all issues — the work the
    /// array *could* have performed with live processes.
    pub live_pe_cycles: u64,
}

impl Metrics {
    /// PE utilization inside meta-state bodies: useful work / (live PEs ×
    /// body cycles). This is the quantity the §2.4 example bounds at 5%
    /// for an unsplit 5-vs-100-cycle meta state.
    pub fn utilization(&self) -> f64 {
        if self.live_pe_cycles == 0 {
            return 0.0;
        }
        self.enabled_pe_cycles as f64 / self.live_pe_cycles as f64
    }
}

/// The SIMD machine state.
#[derive(Debug, Clone)]
pub struct SimdMachine {
    /// Number of PEs.
    pub n_pe: usize,
    /// Per-PE private (`poly`) memory.
    pub poly: Vec<Vec<i64>>,
    /// Replicated shared (`mono`) memory — modeled once, since every
    /// replica is kept identical by broadcast stores.
    pub mono: Vec<i64>,
    /// Per-PE operand stacks.
    pub stack: Vec<Vec<i64>>,
    /// Per-PE return-site stacks (§2.2 machinery).
    pub ret_stack: Vec<Vec<i64>>,
    /// Per-PE current MIMD state; `None` = idle pool.
    pub pc: Vec<Option<StateId>>,
    /// Execution metrics.
    pub metrics: Metrics,
    /// Visit count per meta block (profiling aid for the experiments).
    pub visits: Vec<u64>,
    /// Recorded events, when tracing is enabled.
    pub trace: Vec<TraceEvent>,
    // Incremental dispatch bookkeeping (rebuilt from `pc` at the start of
    // every `run`, then maintained per changed PE at each commit — the
    // dispatch hot path must not rescan all N PEs every cycle):
    /// Count of live (non-idle) PEs; equals `pc.iter().flatten().count()`.
    live: usize,
    /// PEs per MIMD state, indexed by state id (grown on demand). A state
    /// is occupied iff its count is non-zero — this is what the `globalor`
    /// aggregate and the all-at-barrier check iterate instead of `pc`.
    occupancy: Vec<u32>,
    /// Shadow `pc` buffer, equal to `pc` between blocks; control
    /// instructions write it during a body, the commit folds it back.
    shadow_pc: Vec<Option<StateId>>,
    /// PEs whose shadow pc was written this block (may hold duplicates).
    dirty: Vec<usize>,
}

impl SimdMachine {
    /// Build a machine for `program` under `config`.
    pub fn new(program: &SimdProgram, config: &MachineConfig) -> Self {
        let n = config.n_pe;
        let mut pc = vec![None; n];
        for slot in pc.iter_mut().take(config.active_at_start) {
            *slot = Some(program.start_state);
        }
        let mut machine = SimdMachine {
            n_pe: n,
            poly: vec![vec![0; program.poly_words as usize]; n],
            mono: vec![0; program.mono_words as usize],
            stack: vec![Vec::new(); n],
            ret_stack: vec![Vec::new(); n],
            pc,
            metrics: Metrics::default(),
            visits: vec![0; program.blocks.len()],
            trace: Vec::new(),
            live: 0,
            occupancy: Vec::new(),
            shadow_pc: Vec::new(),
            dirty: Vec::new(),
        };
        machine.rebuild_counters();
        machine
    }

    /// Rebuild the incremental dispatch bookkeeping from `pc`. `pc` is a
    /// public field, so `run` cannot assume it is unchanged since `new`.
    fn rebuild_counters(&mut self) {
        self.live = self.pc.iter().filter(|p| p.is_some()).count();
        self.occupancy.clear();
        for i in 0..self.pc.len() {
            if let Some(s) = self.pc[i] {
                Self::bump(&mut self.occupancy, s);
            }
        }
        self.shadow_pc.clone_from(&self.pc);
        self.dirty.clear();
    }

    fn bump(occupancy: &mut Vec<u32>, s: StateId) {
        if s.idx() >= occupancy.len() {
            occupancy.resize(s.idx() + 1, 0);
        }
        occupancy[s.idx()] += 1;
    }

    /// Read PE `pe`'s poly word at `addr` (testing/inspection aid).
    pub fn poly_at(&self, pe: usize, addr: msc_ir::Addr) -> i64 {
        match addr.space {
            Space::Poly => self.poly[pe][addr.index as usize],
            Space::Mono => self.mono[addr.index as usize],
        }
    }

    /// Number of currently idle PEs.
    pub fn idle_count(&self) -> usize {
        self.pc.iter().filter(|p| p.is_none()).count()
    }

    /// Run `program` to completion (all PEs halted). Returns the metrics
    /// (also retained in `self.metrics`).
    pub fn run(
        &mut self,
        program: &SimdProgram,
        config: &MachineConfig,
    ) -> Result<Metrics, RunError> {
        let costs = &program.costs;
        let mut cur = program.start;
        self.rebuild_counters();
        // All PEs already idle? Nothing to run.
        if self.live == 0 {
            return Ok(self.metrics);
        }
        loop {
            if self.metrics.cycles > config.max_cycles {
                return Err(RunError::Watchdog {
                    max_cycles: config.max_cycles,
                });
            }
            let block = program.block(cur);
            self.visits[cur.idx()] += 1;

            // Maintained incrementally at each commit; constant during the
            // body since control writes land in the shadow buffer.
            let live = self.live;
            // Per-meta-state live-PE histogram: the sample index carries
            // the block id, so a JSONL trace can be sliced per block while
            // the registry aggregates the overall distribution.
            msc_obs::sample("simd.block_live", cur.idx() as u64, live as u64);
            if config.trace {
                self.trace.push(TraceEvent::EnterBlock {
                    block: cur,
                    live,
                    at_cycle: self.metrics.cycles,
                });
            }
            // Guards read `self.pc` (block-entry values); control writes go
            // to the shadow buffer, taken out of `self` so `exec` can hold
            // it alongside `&mut self`.
            let mut next_pc = std::mem::take(&mut self.shadow_pc);
            let mut dirty = std::mem::take(&mut self.dirty);
            let mut last_guard: Option<&[StateId]> = None;

            for gi in &block.body {
                let enabled: Vec<usize> = (0..self.n_pe)
                    .filter(|&pe| self.pc[pe].map(|s| gi.enables(s)).unwrap_or(false))
                    .collect();
                let mut cost = gi.instr.cost(costs) as u64;
                // A shared memory-port pool serializes the enabled PEs'
                // accesses over ⌈enabled/ports⌉ rounds (0 ports = one per
                // PE, the historical fully-parallel model).
                if config.memory_ports > 0 && gi.instr.is_memory() {
                    cost *= enabled.len().div_ceil(config.memory_ports).max(1) as u64;
                }
                // The control unit broadcasts every instruction whether or
                // not any PE is enabled — this is exactly the inefficiency
                // wide (compressed) meta states pay (§2.5).
                self.metrics.cycles += cost;
                self.metrics.body_cycles += cost;
                self.metrics.issues += 1;
                if last_guard != Some(gi.guard.as_slice()) {
                    self.metrics.cycles += costs.guard_switch as u64;
                    self.metrics.guard_cycles += costs.guard_switch as u64;
                    last_guard = Some(gi.guard.as_slice());
                }
                self.metrics.enabled_pe_cycles += enabled.len() as u64 * cost;
                self.metrics.live_pe_cycles += live as u64 * cost;
                self.exec(&gi.instr, &enabled, &mut next_pc, &mut dirty, cur)?;
            }

            // Commit the shadow pcs, updating the live count and the state
            // occupancy only for PEs whose pc actually changed.
            for &pe in &dirty {
                let (old, new) = (self.pc[pe], next_pc[pe]);
                if old == new {
                    continue; // duplicate dirty entry or no-op write
                }
                if let Some(s) = old {
                    self.occupancy[s.idx()] -= 1;
                    self.live -= 1;
                }
                if let Some(s) = new {
                    Self::bump(&mut self.occupancy, s);
                    self.live += 1;
                }
                self.pc[pe] = new;
            }
            dirty.clear();
            // `pc == next_pc` again (every divergence was just committed),
            // so the buffer is ready for the next block.
            self.shadow_pc = next_pc;
            self.dirty = dirty;

            // Dispatch (§3.2): a single exit arc is a plain goto
            // (§3.2.2, one cheap cycle); multiway exits pay the
            // globalor + hashed-branch price (§3.2.3).
            let dcost = match &block.dispatch {
                Dispatch::End | Dispatch::Direct(_) => costs.stack as u64,
                // Aggregate dispatches additionally pay the profile's
                // router latency: globalor collection is a physical
                // reduction network, not a register read.
                Dispatch::DirectWithBarrier { .. } | Dispatch::Hashed { .. } => {
                    costs.dispatch as u64 + config.globalor_latency as u64
                }
            };
            self.metrics.cycles += dcost;
            self.metrics.dispatch_cycles += dcost;
            self.metrics.dispatches += 1;
            if msc_obs::enabled() {
                let occupied = self.occupancy.iter().filter(|&&c| c > 0).count();
                msc_obs::sample("simd.dispatch_occupancy", cur.idx() as u64, occupied as u64);
            }

            if self.live == 0 {
                if config.trace {
                    self.trace.push(TraceEvent::Dispatch {
                        from: cur,
                        to: None,
                        aggregate: 0,
                    });
                }
                return Ok(self.metrics); // every process ended
            }
            let prev = cur;
            cur = match &block.dispatch {
                Dispatch::End => {
                    // Terminal block, but some PE still live: that PE was
                    // spawned/looping into nowhere — treat as undefined.
                    return Err(RunError::UndefinedTransition {
                        block: cur,
                        aggregate: 0,
                    });
                }
                Dispatch::Direct(t) => *t,
                Dispatch::DirectWithBarrier { cont, barrier } => {
                    let members = &program.block(*barrier).members;
                    let all_at_barrier = self
                        .occupied_states()
                        .all(|s| members.binary_search(&s).is_ok());
                    if all_at_barrier {
                        *barrier
                    } else {
                        *cont
                    }
                }
                Dispatch::Hashed {
                    bit_of,
                    barrier_mask,
                    hash,
                    targets,
                } => {
                    // globalor of live pc bits — one lookup per occupied
                    // state, not per PE.
                    let mut aggregate = 0u64;
                    for s in self.occupied_states() {
                        let bit = bit_of
                            .iter()
                            .find(|(st, _)| *st == s)
                            .map(|(_, b)| *b)
                            .ok_or(RunError::UnmappedState {
                                block: cur,
                                state: s,
                            })?;
                        aggregate |= 1 << bit;
                    }
                    // §3.2.4: unless everyone is at the barrier, PEs that
                    // reached it are excluded from the transition key.
                    let key = if aggregate & !barrier_mask == 0 {
                        aggregate
                    } else {
                        aggregate & !barrier_mask
                    };
                    let idx = hash.lookup(key).ok_or(RunError::UndefinedTransition {
                        block: cur,
                        aggregate: key,
                    })?;
                    targets[idx as usize]
                }
            };
            if config.trace {
                self.trace.push(TraceEvent::Dispatch {
                    from: prev,
                    to: Some(cur),
                    aggregate: 0,
                });
            }
        }
    }

    /// States with at least one PE in them, ascending.
    fn occupied_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.occupancy
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(s, _)| StateId(s as u32))
    }

    fn exec(
        &mut self,
        instr: &SimdInstr,
        enabled: &[usize],
        next_pc: &mut [Option<StateId>],
        dirty: &mut Vec<usize>,
        block: BlockId,
    ) -> Result<(), RunError> {
        match instr {
            SimdInstr::Op(op) => self.exec_op(op, enabled),
            SimdInstr::JumpF { t, f } => {
                for &pe in enabled {
                    let c = self.pop(pe)?;
                    next_pc[pe] = Some(if c != 0 { *t } else { *f });
                    dirty.push(pe);
                }
                Ok(())
            }
            SimdInstr::SetPc(s) => {
                for &pe in enabled {
                    next_pc[pe] = Some(*s);
                    dirty.push(pe);
                }
                Ok(())
            }
            SimdInstr::Halt => {
                for &pe in enabled {
                    next_pc[pe] = None;
                    dirty.push(pe);
                    self.stack[pe].clear();
                    self.ret_stack[pe].clear();
                }
                Ok(())
            }
            SimdInstr::RetMulti(targets) => {
                for &pe in enabled {
                    let sel = self.pop(pe)?;
                    let t = targets
                        .get(sel as usize)
                        .ok_or(RunError::BadSelector { pe, selector: sel })?;
                    next_pc[pe] = Some(*t);
                    dirty.push(pe);
                }
                Ok(())
            }
            SimdInstr::Spawn { child, next } => {
                // Recruit one idle PE per spawner; idle = no pc now and not
                // being recruited in this very instruction.
                let mut idle: Vec<usize> = (0..self.n_pe)
                    .filter(|&pe| self.pc[pe].is_none() && next_pc[pe].is_none())
                    .collect();
                if idle.len() < enabled.len() {
                    return Err(RunError::SpawnOverflow {
                        block,
                        requested: enabled.len(),
                        available: idle.len(),
                    });
                }
                for &pe in enabled {
                    let recruit = idle.remove(0);
                    // The child starts with a copy of the parent's poly
                    // memory (parameters were stored there by the parent).
                    self.poly[recruit] = self.poly[pe].clone();
                    self.stack[recruit].clear();
                    self.ret_stack[recruit].clear();
                    next_pc[recruit] = Some(*child);
                    next_pc[pe] = Some(*next);
                    dirty.push(recruit);
                    dirty.push(pe);
                }
                Ok(())
            }
        }
    }

    fn pop(&mut self, pe: usize) -> Result<i64, RunError> {
        self.stack[pe].pop().ok_or(RunError::StackUnderflow { pe })
    }

    fn exec_op(&mut self, op: &Op, enabled: &[usize]) -> Result<(), RunError> {
        match op {
            Op::Push(v) => {
                for &pe in enabled {
                    self.stack[pe].push(*v);
                }
            }
            Op::PushF(bits) => {
                for &pe in enabled {
                    self.stack[pe].push(*bits as i64);
                }
            }
            Op::Dup => {
                for &pe in enabled {
                    let v = *self.stack[pe]
                        .last()
                        .ok_or(RunError::StackUnderflow { pe })?;
                    self.stack[pe].push(v);
                }
            }
            Op::Pop(n) => {
                for &pe in enabled {
                    for _ in 0..*n {
                        self.pop(pe)?;
                    }
                }
            }
            Op::Ld(addr) => {
                for &pe in enabled {
                    let v = match addr.space {
                        Space::Poly => self.poly[pe][addr.index as usize],
                        Space::Mono => self.mono[addr.index as usize],
                    };
                    self.stack[pe].push(v);
                }
            }
            Op::St(addr) => match addr.space {
                Space::Poly => {
                    for &pe in enabled {
                        let v = self.pop(pe)?;
                        self.poly[pe][addr.index as usize] = v;
                    }
                }
                Space::Mono => {
                    // Broadcast store: every enabled PE writes; the
                    // highest-numbered enabled PE's value lands last
                    // (deterministic tie-break, documented).
                    for &pe in enabled {
                        let v = self.pop(pe)?;
                        self.mono[addr.index as usize] = v;
                    }
                }
            },
            Op::LdRemote(addr) => {
                // All enabled PEs fetch simultaneously (reads don't race).
                let mut fetched = Vec::with_capacity(enabled.len());
                for &pe in enabled {
                    let idx = self.pop(pe)?;
                    let src = self.wrap_pe(idx);
                    fetched.push((pe, self.poly[src][addr.index as usize]));
                }
                for (pe, v) in fetched {
                    self.stack[pe].push(v);
                }
            }
            Op::StRemote(addr) => {
                // Gather all (target, value) pairs against the pre-write
                // state, then apply; write conflicts resolve to the
                // highest-numbered writer (deterministic router policy).
                let mut writes = Vec::with_capacity(enabled.len());
                for &pe in enabled {
                    let idx = self.pop(pe)?;
                    let v = self.pop(pe)?;
                    writes.push((self.wrap_pe(idx), v));
                }
                for (target, v) in writes {
                    self.poly[target][addr.index as usize] = v;
                }
            }
            Op::Bin(b) => {
                for &pe in enabled {
                    let rhs = self.pop(pe)?;
                    let lhs = self.pop(pe)?;
                    self.stack[pe].push(b.apply(lhs, rhs));
                }
            }
            Op::Un(u) => {
                for &pe in enabled {
                    let v = self.pop(pe)?;
                    self.stack[pe].push(u.apply(v));
                }
            }
            Op::PeId => {
                for &pe in enabled {
                    self.stack[pe].push(pe as i64);
                }
            }
            Op::NProc => {
                for &pe in enabled {
                    self.stack[pe].push(self.n_pe as i64);
                }
            }
            Op::PushRet => {
                for &pe in enabled {
                    let v = self.pop(pe)?;
                    self.ret_stack[pe].push(v);
                }
            }
            Op::PopRet => {
                for &pe in enabled {
                    let v = self.ret_stack[pe]
                        .pop()
                        .ok_or(RunError::RetStackUnderflow { pe })?;
                    self.stack[pe].push(v);
                }
            }
        }
        Ok(())
    }

    /// PE indices wrap modulo N (the MP-1 router's toroidal addressing).
    fn wrap_pe(&self, idx: i64) -> usize {
        (idx.rem_euclid(self.n_pe as i64)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{GuardedInstr, MetaBlock};
    use msc_ir::{Addr, BinOp, CostModel};

    /// A one-block program: every PE computes pe_id()*2 + 1 into poly[0],
    /// then halts.
    fn trivial_program() -> SimdProgram {
        let s0 = StateId(0);
        let body = vec![
            GuardedInstr {
                guard: vec![s0],
                instr: SimdInstr::Op(Op::PeId),
            },
            GuardedInstr {
                guard: vec![s0],
                instr: SimdInstr::Op(Op::Push(2)),
            },
            GuardedInstr {
                guard: vec![s0],
                instr: SimdInstr::Op(Op::Bin(BinOp::Mul)),
            },
            GuardedInstr {
                guard: vec![s0],
                instr: SimdInstr::Op(Op::Push(1)),
            },
            GuardedInstr {
                guard: vec![s0],
                instr: SimdInstr::Op(Op::Bin(BinOp::Add)),
            },
            GuardedInstr {
                guard: vec![s0],
                instr: SimdInstr::Op(Op::St(Addr::poly(0))),
            },
            GuardedInstr {
                guard: vec![s0],
                instr: SimdInstr::Halt,
            },
        ];
        SimdProgram {
            blocks: vec![MetaBlock {
                members: vec![s0],
                name: "ms_0".into(),
                body,
                dispatch: Dispatch::End,
            }],
            start: BlockId(0),
            start_state: s0,
            poly_words: 1,
            mono_words: 0,
            costs: CostModel::default(),
        }
    }

    #[test]
    fn trivial_program_computes_per_pe() {
        let p = trivial_program();
        p.validate().unwrap();
        let cfg = MachineConfig::spmd(8);
        let mut m = SimdMachine::new(&p, &cfg);
        let metrics = m.run(&p, &cfg).unwrap();
        for pe in 0..8 {
            assert_eq!(m.poly_at(pe, Addr::poly(0)), pe as i64 * 2 + 1);
        }
        assert_eq!(metrics.dispatches, 1);
        assert!(metrics.cycles > 0);
        assert!(
            (metrics.utilization() - 1.0).abs() < 1e-12,
            "all PEs always enabled"
        );
    }

    /// Block ms_0: each PE pushes (pe_id < 2), JumpF(f=s2, t=s1), then a
    /// hashed dispatch into ms_1_2 where {s1,s2} execute divergent guarded
    /// bodies (the hand-built *base*-conversion form).
    fn branching_program() -> SimdProgram {
        let (s0, s1, s2) = (StateId(0), StateId(1), StateId(2));
        let b0 = MetaBlock {
            members: vec![s0],
            name: "ms_0".into(),
            body: vec![
                GuardedInstr {
                    guard: vec![s0],
                    instr: SimdInstr::Op(Op::PeId),
                },
                GuardedInstr {
                    guard: vec![s0],
                    instr: SimdInstr::Op(Op::Push(2)),
                },
                GuardedInstr {
                    guard: vec![s0],
                    instr: SimdInstr::Op(Op::Bin(BinOp::Lt)),
                },
                GuardedInstr {
                    guard: vec![s0],
                    instr: SimdInstr::JumpF { t: s1, f: s2 },
                },
            ],
            dispatch: Dispatch::Hashed {
                bit_of: vec![(s1, 1), (s2, 2)],
                barrier_mask: 0,
                hash: msc_hash::find_hash(&[0b010, 0b100, 0b110]).unwrap(),
                targets: vec![BlockId(1), BlockId(1), BlockId(1)],
            },
        };
        let b1 = MetaBlock {
            members: vec![s1, s2],
            name: "ms_1_2".into(),
            body: vec![
                GuardedInstr {
                    guard: vec![s1],
                    instr: SimdInstr::Op(Op::Push(111)),
                },
                GuardedInstr {
                    guard: vec![s2],
                    instr: SimdInstr::Op(Op::Push(222)),
                },
                GuardedInstr {
                    guard: vec![s1, s2],
                    instr: SimdInstr::Op(Op::St(Addr::poly(0))),
                },
                GuardedInstr {
                    guard: vec![s1, s2],
                    instr: SimdInstr::Halt,
                },
            ],
            dispatch: Dispatch::End,
        };
        SimdProgram {
            blocks: vec![b0, b1],
            start: BlockId(0),
            start_state: s0,
            poly_words: 1,
            mono_words: 0,
            costs: CostModel::default(),
        }
    }

    #[test]
    fn two_block_branching_program() {
        let p = branching_program();
        p.validate().unwrap();
        let cfg = MachineConfig::spmd(4);
        let mut m = SimdMachine::new(&p, &cfg);
        m.run(&p, &cfg).unwrap();
        assert_eq!(m.poly_at(0, Addr::poly(0)), 111);
        assert_eq!(m.poly_at(1, Addr::poly(0)), 111);
        assert_eq!(m.poly_at(2, Addr::poly(0)), 222);
        assert_eq!(m.poly_at(3, Addr::poly(0)), 222);
        // Utilization < 1: the divergent pushes idle half the PEs each.
        assert!(m.metrics.utilization() < 1.0);
    }

    #[test]
    fn idle_pool_and_machine_setup() {
        let p = trivial_program();
        let cfg = MachineConfig::with_pool(8, 3);
        let m = SimdMachine::new(&p, &cfg);
        assert_eq!(m.idle_count(), 5);
    }

    #[test]
    fn watchdog_fires_on_infinite_loop() {
        let s0 = StateId(0);
        let p = SimdProgram {
            blocks: vec![MetaBlock {
                members: vec![s0],
                name: "ms_0".into(),
                body: vec![GuardedInstr {
                    guard: vec![s0],
                    instr: SimdInstr::SetPc(s0),
                }],
                dispatch: Dispatch::Direct(BlockId(0)),
            }],
            start: BlockId(0),
            start_state: s0,
            poly_words: 0,
            mono_words: 0,
            costs: CostModel::default(),
        };
        let mut cfg = MachineConfig::spmd(2);
        cfg.max_cycles = 10_000;
        let mut m = SimdMachine::new(&p, &cfg);
        assert_eq!(
            m.run(&p, &cfg),
            Err(RunError::Watchdog { max_cycles: 10_000 })
        );
    }

    #[test]
    fn stack_underflow_detected() {
        let s0 = StateId(0);
        let p = SimdProgram {
            blocks: vec![MetaBlock {
                members: vec![s0],
                name: "ms_0".into(),
                body: vec![GuardedInstr {
                    guard: vec![s0],
                    instr: SimdInstr::Op(Op::Pop(1)),
                }],
                dispatch: Dispatch::End,
            }],
            start: BlockId(0),
            start_state: s0,
            poly_words: 0,
            mono_words: 0,
            costs: CostModel::default(),
        };
        let cfg = MachineConfig::spmd(1);
        let mut m = SimdMachine::new(&p, &cfg);
        assert_eq!(m.run(&p, &cfg), Err(RunError::StackUnderflow { pe: 0 }));
    }

    #[test]
    fn remote_ops_route_between_pes() {
        // Every PE stores pe_id into poly[0], then reads neighbour
        // (pe_id+1) mod N into poly[1].
        let s0 = StateId(0);
        let g = |instr| GuardedInstr {
            guard: vec![s0],
            instr,
        };
        let p = SimdProgram {
            blocks: vec![MetaBlock {
                members: vec![s0],
                name: "ms_0".into(),
                body: vec![
                    g(SimdInstr::Op(Op::PeId)),
                    g(SimdInstr::Op(Op::St(Addr::poly(0)))),
                    g(SimdInstr::Op(Op::PeId)),
                    g(SimdInstr::Op(Op::Push(1))),
                    g(SimdInstr::Op(Op::Bin(BinOp::Add))),
                    g(SimdInstr::Op(Op::LdRemote(Addr::poly(0)))),
                    g(SimdInstr::Op(Op::St(Addr::poly(1)))),
                    g(SimdInstr::Halt),
                ],
                dispatch: Dispatch::End,
            }],
            start: BlockId(0),
            start_state: s0,
            poly_words: 2,
            mono_words: 0,
            costs: CostModel::default(),
        };
        let cfg = MachineConfig::spmd(4);
        let mut m = SimdMachine::new(&p, &cfg);
        m.run(&p, &cfg).unwrap();
        for pe in 0..4 {
            assert_eq!(m.poly_at(pe, Addr::poly(1)), ((pe + 1) % 4) as i64);
        }
    }

    #[test]
    fn spawn_recruits_idle_pes() {
        let (s0, s1) = (StateId(0), StateId(1));
        let p = SimdProgram {
            blocks: vec![
                MetaBlock {
                    members: vec![s0],
                    name: "ms_0".into(),
                    body: vec![
                        GuardedInstr {
                            guard: vec![s0],
                            instr: SimdInstr::Op(Op::Push(42)),
                        },
                        GuardedInstr {
                            guard: vec![s0],
                            instr: SimdInstr::Op(Op::St(Addr::poly(0))),
                        },
                        GuardedInstr {
                            guard: vec![s0],
                            instr: SimdInstr::Spawn {
                                child: s1,
                                next: s1,
                            },
                        },
                    ],
                    dispatch: Dispatch::Direct(BlockId(1)),
                },
                MetaBlock {
                    members: vec![s1],
                    name: "ms_1".into(),
                    body: vec![
                        GuardedInstr {
                            guard: vec![s1],
                            instr: SimdInstr::Op(Op::Push(7)),
                        },
                        GuardedInstr {
                            guard: vec![s1],
                            instr: SimdInstr::Op(Op::St(Addr::poly(1))),
                        },
                        GuardedInstr {
                            guard: vec![s1],
                            instr: SimdInstr::Halt,
                        },
                    ],
                    dispatch: Dispatch::End,
                },
            ],
            start: BlockId(0),
            start_state: s0,
            poly_words: 2,
            mono_words: 0,
            costs: CostModel::default(),
        };
        p.validate().unwrap();
        let cfg = MachineConfig::with_pool(4, 2);
        let mut m = SimdMachine::new(&p, &cfg);
        m.run(&p, &cfg).unwrap();
        // The two recruited PEs inherited poly[0]=42 and ran the child.
        let spawned: Vec<usize> = (2..4)
            .filter(|&pe| m.poly_at(pe, Addr::poly(1)) == 7)
            .collect();
        assert_eq!(spawned.len(), 2);
        for &pe in &spawned {
            assert_eq!(
                m.poly_at(pe, Addr::poly(0)),
                42,
                "child copies parent poly memory"
            );
        }
    }

    #[test]
    fn spawn_overflow_errors() {
        let (s0, s1) = (StateId(0), StateId(1));
        let p = SimdProgram {
            blocks: vec![MetaBlock {
                members: vec![s0],
                name: "ms_0".into(),
                body: vec![GuardedInstr {
                    guard: vec![s0],
                    instr: SimdInstr::Spawn {
                        child: s1,
                        next: s1,
                    },
                }],
                dispatch: Dispatch::End,
            }],
            start: BlockId(0),
            start_state: s0,
            poly_words: 0,
            mono_words: 0,
            costs: CostModel::default(),
        };
        let cfg = MachineConfig::spmd(2); // no idle PEs
        let mut m = SimdMachine::new(&p, &cfg);
        assert!(matches!(
            m.run(&p, &cfg),
            Err(RunError::SpawnOverflow { .. })
        ));
    }

    #[test]
    fn incremental_counters_match_rescan() {
        // After a run with divergence and halts, the incrementally
        // maintained live count and occupancy table must agree with a
        // from-scratch rescan of `pc`.
        let p = trivial_program();
        let cfg = MachineConfig::spmd(8);
        let mut m = SimdMachine::new(&p, &cfg);
        m.run(&p, &cfg).unwrap();
        assert_eq!(m.live, m.pc.iter().filter(|x| x.is_some()).count());
        let mut occ = vec![0u32; m.occupancy.len()];
        for s in m.pc.iter().flatten() {
            occ[s.idx()] += 1;
        }
        assert_eq!(m.occupancy, occ);
        // And the bookkeeping survives an external pc reset + rerun.
        for slot in m.pc.iter_mut() {
            *slot = Some(StateId(0));
        }
        m.run(&p, &cfg).unwrap();
        assert_eq!(m.live, 0);
        assert!(m.occupancy.iter().all(|&c| c == 0));
    }

    #[test]
    fn mono_store_broadcasts() {
        let s0 = StateId(0);
        let g = |instr| GuardedInstr {
            guard: vec![s0],
            instr,
        };
        let p = SimdProgram {
            blocks: vec![MetaBlock {
                members: vec![s0],
                name: "ms_0".into(),
                body: vec![
                    g(SimdInstr::Op(Op::PeId)),
                    g(SimdInstr::Op(Op::St(Addr::mono(0)))),
                    g(SimdInstr::Op(Op::Ld(Addr::mono(0)))),
                    g(SimdInstr::Op(Op::St(Addr::poly(0)))),
                    g(SimdInstr::Halt),
                ],
                dispatch: Dispatch::End,
            }],
            start: BlockId(0),
            start_state: s0,
            poly_words: 1,
            mono_words: 1,
            costs: CostModel::default(),
        };
        let cfg = MachineConfig::spmd(4);
        let mut m = SimdMachine::new(&p, &cfg);
        m.run(&p, &cfg).unwrap();
        // Last writer (PE 3) wins; all PEs then read the same replica.
        for pe in 0..4 {
            assert_eq!(m.poly_at(pe, Addr::poly(0)), 3);
        }
    }

    #[test]
    fn memory_ports_serialize_local_memory_access() {
        let p = trivial_program();
        let base_cfg = MachineConfig::spmd(8);
        let base = SimdMachine::new(&p, &base_cfg).run(&p, &base_cfg).unwrap();
        // 8 enabled PEs through 2 ports: the single St(poly) takes 4 port
        // rounds instead of 1, i.e. 3 extra mem_local charges.
        let mut cfg = MachineConfig::spmd(8);
        cfg.memory_ports = 2;
        let ported = SimdMachine::new(&p, &cfg).run(&p, &cfg).unwrap();
        let extra = 3 * CostModel::default().mem_local as u64;
        assert_eq!(ported.cycles, base.cycles + extra);
        assert_eq!(ported.body_cycles, base.body_cycles + extra);
        // One port per PE ≡ the historical fully-parallel model.
        cfg.memory_ports = 8;
        let wide = SimdMachine::new(&p, &cfg).run(&p, &cfg).unwrap();
        assert_eq!(wide.cycles, base.cycles);
    }

    #[test]
    fn globalor_latency_prices_aggregate_dispatches_only() {
        let p = branching_program();
        let base_cfg = MachineConfig::spmd(4);
        let base = SimdMachine::new(&p, &base_cfg).run(&p, &base_cfg).unwrap();
        let mut cfg = MachineConfig::spmd(4);
        cfg.globalor_latency = 24;
        let slow = SimdMachine::new(&p, &cfg).run(&p, &cfg).unwrap();
        // Exactly one hashed dispatch pays the router; the terminal End
        // dispatch is direct-priced and immune.
        assert_eq!(slow.cycles, base.cycles + 24);
        assert_eq!(slow.dispatch_cycles, base.dispatch_cycles + 24);

        let t = trivial_program();
        let direct = SimdMachine::new(&t, &cfg).run(&t, &cfg).unwrap();
        let direct_base = SimdMachine::new(&t, &base_cfg).run(&t, &base_cfg).unwrap();
        assert_eq!(
            direct.cycles, direct_base.cycles,
            "End dispatch is direct-priced"
        );
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::program::{Dispatch, GuardedInstr, MetaBlock, SimdProgram};
    use msc_ir::{CostModel, Op};

    #[test]
    fn trace_records_blocks_and_dispatches() {
        let s0 = StateId(0);
        let s1 = StateId(1);
        let p = SimdProgram {
            blocks: vec![
                MetaBlock {
                    members: vec![s0],
                    name: "ms_0".into(),
                    body: vec![
                        GuardedInstr {
                            guard: vec![s0],
                            instr: SimdInstr::Op(Op::Push(1)),
                        },
                        GuardedInstr {
                            guard: vec![s0],
                            instr: SimdInstr::Op(Op::Pop(1)),
                        },
                        GuardedInstr {
                            guard: vec![s0],
                            instr: SimdInstr::SetPc(s1),
                        },
                    ],
                    dispatch: Dispatch::Direct(BlockId(1)),
                },
                MetaBlock {
                    members: vec![s1],
                    name: "ms_1".into(),
                    body: vec![GuardedInstr {
                        guard: vec![s1],
                        instr: SimdInstr::Halt,
                    }],
                    dispatch: Dispatch::End,
                },
            ],
            start: BlockId(0),
            start_state: s0,
            poly_words: 0,
            mono_words: 0,
            costs: CostModel::default(),
        };
        let cfg = MachineConfig::spmd(2).with_trace();
        let mut m = SimdMachine::new(&p, &cfg);
        m.run(&p, &cfg).unwrap();
        assert_eq!(
            m.trace,
            vec![
                TraceEvent::EnterBlock {
                    block: BlockId(0),
                    live: 2,
                    at_cycle: 0
                },
                TraceEvent::Dispatch {
                    from: BlockId(0),
                    to: Some(BlockId(1)),
                    aggregate: 0
                },
                TraceEvent::EnterBlock {
                    block: BlockId(1),
                    live: 2,
                    at_cycle: m
                        .trace
                        .iter()
                        .find_map(|e| match e {
                            TraceEvent::EnterBlock {
                                block: BlockId(1),
                                at_cycle,
                                ..
                            } => Some(*at_cycle),
                            _ => None,
                        })
                        .unwrap()
                },
                TraceEvent::Dispatch {
                    from: BlockId(1),
                    to: None,
                    aggregate: 0
                },
            ]
        );
    }

    #[test]
    fn trace_off_records_nothing() {
        let s0 = StateId(0);
        let p = SimdProgram {
            blocks: vec![MetaBlock {
                members: vec![s0],
                name: "ms_0".into(),
                body: vec![GuardedInstr {
                    guard: vec![s0],
                    instr: SimdInstr::Halt,
                }],
                dispatch: Dispatch::End,
            }],
            start: BlockId(0),
            start_state: s0,
            poly_words: 0,
            mono_words: 0,
            costs: CostModel::default(),
        };
        let cfg = MachineConfig::spmd(1);
        let mut m = SimdMachine::new(&p, &cfg);
        m.run(&p, &cfg).unwrap();
        assert!(m.trace.is_empty());
    }
}
