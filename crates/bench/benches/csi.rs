//! C6 (§3.1): common subexpression induction — schedule cost vs naive
//! serialization vs the theoretical lower bound, over thread count and
//! shared fraction. Criterion measures the CSI search wall time ("the CSI
//! algorithm is not simple"); the cost series is printed for
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msc_bench::workloads::csi_threads;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("csi");
    group.sample_size(20);

    for threads in [2usize, 4, 8, 16] {
        let input = csi_threads(threads, 8, 2);
        let s = msc_csi::induce(&input).unwrap();
        println!(
            "[C6] {threads} threads (8 shared / 2 private): naive {} → CSI {} (lower bound {}), {:.0}% saved",
            s.naive_cost,
            s.cost,
            s.lower_bound,
            (1.0 - s.cost as f64 / s.naive_cost as f64) * 100.0
        );
        group.bench_with_input(
            BenchmarkId::new("induce_threads", threads),
            &threads,
            |b, _| b.iter(|| black_box(msc_csi::induce(black_box(&input)).unwrap().cost)),
        );
    }

    for shared in [0usize, 4, 8, 16] {
        let input = csi_threads(4, shared, 4);
        let s = msc_csi::induce(&input).unwrap();
        println!(
            "[C6] 4 threads, shared={shared}, private=4: naive {} → CSI {} (lb {})",
            s.naive_cost, s.cost, s.lower_bound
        );
        group.bench_with_input(
            BenchmarkId::new("induce_shared", shared),
            &shared,
            |b, _| b.iter(|| black_box(msc_csi::induce(black_box(&input)).unwrap().cost)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
