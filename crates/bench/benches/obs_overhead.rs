//! Observability overhead gate: with no subscriber installed, the
//! instrumented converter must stay within 2% of an uninstrumented
//! baseline (DESIGN.md §10). There is no uninstrumented build to race
//! against in one binary, so the bench bounds the overhead directly:
//!
//! 1. measure one conversion of the state-explosion workload with obs
//!    fully disabled (the shipping configuration),
//! 2. measure the per-call cost of a disabled emit — one relaxed atomic
//!    load and a branch,
//! 3. count how many events the same conversion emits when a subscriber
//!    *is* installed (an upper bound on the disabled-path checks, since
//!    the batched hot-loop sites gate several emits behind one check),
//!
//! and report `events x per-call cost` as a fraction of the conversion
//! time. The bench asserts that bound is under 2%. It also times the
//! subscriber-installed conversion so the real cost of turning tracing
//! on is visible in the same table.

use criterion::{criterion_group, criterion_main, Criterion};
use msc_bench::workloads::branch_chain_graph;
use msc_core::{convert_with_stats, ConvertOptions};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Best-of-5 per-iteration nanoseconds, auto-scaled like claims.rs.
fn time_ns(mut f: impl FnMut() -> usize) -> f64 {
    let mut sink = 0usize;
    let t0 = Instant::now();
    sink ^= f();
    let one = t0.elapsed().as_nanos().max(1);
    let iters = (50_000_000u128 / one).clamp(4, 2_000_000) as u64;
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..iters {
            sink ^= f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    black_box(sink);
    best
}

/// Subscriber that only counts how many events reach it.
struct EventCounter(AtomicU64);

impl msc_obs::Subscriber for EventCounter {
    fn event(&self, _: &msc_obs::Event) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

fn bench(c: &mut Criterion) {
    let g = branch_chain_graph(12);
    let opts = ConvertOptions::base();
    let convert_len = || convert_with_stats(&g, &opts).unwrap().0.len();

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.bench_function("convert_no_subscriber", |b| {
        b.iter(|| black_box(convert_len()))
    });
    group.bench_function("disabled_count_call", |b| {
        b.iter(|| msc_obs::count("bench.disabled_probe", 1))
    });

    // How many events does one conversion emit with tracing on? Each
    // instrumentation site performs at most one enabled() check per
    // event it would emit, so this bounds the disabled-path work.
    let counter = Arc::new(EventCounter(AtomicU64::new(0)));
    let events = {
        let _guard = msc_obs::install(counter.clone());
        black_box(convert_len());
        counter.0.load(Ordering::Relaxed)
    };

    {
        let _guard = msc_obs::install(Arc::new(EventCounter(AtomicU64::new(0))));
        group.bench_function("convert_counting_subscriber", |b| {
            b.iter(|| black_box(convert_len()))
        });
    }
    group.finish();

    let convert_ns = time_ns(convert_len);
    let per_call_ns = time_ns(|| {
        msc_obs::count("bench.disabled_probe", 1);
        0
    });
    let bound_pct = events as f64 * per_call_ns / convert_ns * 100.0;
    println!(
        "\nobs overhead bound: {events} events x {per_call_ns:.2} ns disabled check \
         / {convert_ns:.0} ns conversion = {bound_pct:.3}% (gate: <= 2%)"
    );
    assert!(
        bound_pct <= 2.0,
        "disabled-observability overhead bound {bound_pct:.3}% exceeds the 2% budget"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
