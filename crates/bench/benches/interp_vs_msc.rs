//! C1 (§1.1): execution of MIMD control parallelism on SIMD hardware —
//! meta-state conversion vs the classical interpreter.
//!
//! Criterion measures the simulator wall time of each mode; the *model*
//! metrics (simulated cycles, per-PE memory) are printed once per size so
//! the bench output regenerates the C1 series in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metastate::{ConvertMode, Pipeline};
use msc_bench::workloads::branchy_source;
use msc_ir::CostModel;
use msc_mimd::InterpProgram;
use msc_simd::{MachineConfig, SimdMachine};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp_vs_msc");
    group.sample_size(20);
    let n_pe = 16;

    for paths in [2usize, 3, 4, 5] {
        let src = branchy_source(paths);

        // Report the model-level series once.
        let msc = msc_bench::measure_msc(&src, n_pe, ConvertMode::Base);
        let it = msc_bench::measure_interp(&src, n_pe);
        println!(
            "[C1] paths={paths}: MSC {} cycles / {} per-PE words; interp {} cycles / {} per-PE words; speedup {:.2}x",
            msc.cycles,
            msc.per_pe_program_words,
            it.cycles,
            it.per_pe_program_words,
            it.cycles as f64 / msc.cycles as f64
        );

        let built = Pipeline::new(src.as_str())
            .mode(ConvertMode::Base)
            .build()
            .unwrap();
        let cfg = MachineConfig::spmd(n_pe);
        group.bench_with_input(BenchmarkId::new("msc_base", paths), &paths, |b, _| {
            b.iter(|| {
                let mut m = SimdMachine::new(&built.simd, &cfg);
                m.run(black_box(&built.simd), &cfg).unwrap();
                black_box(m.metrics.cycles)
            })
        });

        let p = msc_lang::compile(&src).unwrap();
        let image = InterpProgram::flatten(&p.graph, p.layout.poly_words, p.layout.mono_words);
        group.bench_with_input(BenchmarkId::new("interpreter", paths), &paths, |b, _| {
            b.iter(|| {
                let mut m = msc_mimd::InterpMachine::new(&image, n_pe, n_pe);
                m.run(black_box(&image), &CostModel::default(), 100_000_000)
                    .unwrap();
                black_box(m.metrics.cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
