//! Subsumption-pass scaling: time `subsume` on automata of `n`
//! subset/superset pairs (each pair folds exactly once). The seed's
//! all-pairs search was O(n² · width); the occurrence-indexed search scans
//! only the metas containing each candidate's rarest member, so doubling
//! `n` should roughly double the time, not quadruple it.
//!
//! Passing `--test` runs a single small size as a CI smoke check.

use criterion::{BenchmarkId, Criterion};
use msc_bench::workloads::subset_chain_automaton;
use msc_core::subsume::subsume;
use std::hint::black_box;

fn bench_subsume(c: &mut Criterion, sizes: &[usize], samples: usize) {
    let mut group = c.benchmark_group("subsume_scaling");
    group.sample_size(samples);
    for &n in sizes {
        let auto = subset_chain_automaton(n);
        group.bench_with_input(BenchmarkId::new("pairs", n), &n, |bch, _| {
            bch.iter(|| {
                let mut a = auto.clone();
                let removed = subsume(&mut a);
                assert_eq!(removed as usize, n);
                black_box(a.len())
            })
        });
    }
    group.finish();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let sizes: &[usize] = if smoke { &[32] } else { &[64, 128, 256, 512] };
    let samples = if smoke { 2 } else { 10 };
    let mut c = Criterion::default();
    bench_subsume(&mut c, sizes, samples);
}
