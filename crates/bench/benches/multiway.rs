//! C7 (§3.2.3 / [Die92a]): customized hash functions for multiway branch
//! encoding — search time, table sizes, and dispatch evaluation cost
//! compared with the naive dense-table alternative.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msc_bench::workloads::aggregate_keys;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiway");
    group.sample_size(30);

    for (n, bits) in [(5usize, 10u32), (16, 24), (64, 48)] {
        let keys = aggregate_keys(n, bits);
        let ph = msc_hash::find_hash(&keys).unwrap();
        println!(
            "[C7] {} cases over {bits}-bit aggregates: table {} (naive 2^{bits}), {} hash ops, expr {}",
            keys.len(),
            ph.table.len(),
            ph.expr.op_count(),
            ph.expr
        );

        // How long the generator searches.
        group.bench_with_input(BenchmarkId::new("find_hash", n), &n, |b, _| {
            b.iter(|| black_box(msc_hash::find_hash(black_box(&keys)).unwrap().table.len()))
        });

        // Dispatch cost: hashed lookup vs binary search over sorted keys
        // (the software fallback a compiler without [Die92a] would emit).
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        group.bench_with_input(BenchmarkId::new("dispatch_hashed", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for &k in &keys {
                    acc += ph.lookup(black_box(k)).unwrap() as u64;
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("dispatch_binary_search", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for &k in &keys {
                    acc += sorted.binary_search(&black_box(k)).unwrap() as u64;
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
