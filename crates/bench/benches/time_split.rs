//! C3 (§2.4): MIMD state time splitting — utilization with and without,
//! swept over block-cost imbalance. Criterion measures the full
//! convert+run wall time; the utilization series is printed for
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metastate::{ConvertMode, Pipeline, TimeSplitOptions};
use msc_bench::workloads::imbalanced_source;
use msc_simd::{MachineConfig, SimdMachine};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("time_split");
    group.sample_size(20);
    let n_pe = 16;

    for long in [25usize, 100, 200] {
        let src = imbalanced_source(5, long);
        let plain = Pipeline::new(src.as_str())
            .mode(ConvertMode::Base)
            .build()
            .unwrap();
        let split = Pipeline::new(src.as_str())
            .mode(ConvertMode::Base)
            .time_split(TimeSplitOptions::default())
            .build()
            .unwrap();
        let cfg = MachineConfig::spmd(n_pe);
        let up = plain.run(n_pe).unwrap().metrics.utilization();
        let us = split.run(n_pe).unwrap().metrics.utilization();
        println!(
            "[C3] 5:{long}: utilization {:.1}% unsplit → {:.1}% split ({} splits, {} restarts)",
            up * 100.0,
            us * 100.0,
            split.stats.splits,
            split.stats.restarts
        );

        group.bench_with_input(BenchmarkId::new("run_unsplit", long), &long, |b, _| {
            b.iter(|| {
                let mut m = SimdMachine::new(&plain.simd, &cfg);
                m.run(black_box(&plain.simd), &cfg).unwrap();
                black_box(m.metrics.cycles)
            })
        });
        group.bench_with_input(BenchmarkId::new("run_split", long), &long, |b, _| {
            b.iter(|| {
                let mut m = SimdMachine::new(&split.simd, &cfg);
                m.run(black_box(&split.simd), &cfg).unwrap();
                black_box(m.metrics.cycles)
            })
        });
        // Conversion cost of the restart-to-fixpoint loop itself.
        group.bench_with_input(
            BenchmarkId::new("convert_with_split", long),
            &long,
            |b, _| {
                b.iter(|| {
                    black_box(
                        Pipeline::new(src.as_str())
                            .mode(ConvertMode::Base)
                            .time_split(TimeSplitOptions::default())
                            .build()
                            .unwrap()
                            .automaton
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
