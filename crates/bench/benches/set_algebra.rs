//! Set-algebra microbenchmarks: the hybrid small-vector/bitset `StateSet`
//! against an in-bench sorted-`Vec<u32>` baseline (the seed
//! representation) on union / difference / subset / membership, at widths
//! from "everything fits inline" (16) to "32 words of bitset" (1024).
//!
//! Runs under the offline criterion shim (`cargo bench -p msc-bench
//! --bench set_algebra`). Passing `--test` switches to a smoke
//! configuration (small sizes, 2 samples) so CI can exercise the bench
//! without paying for full measurement; `ci.sh bench-smoke` relies on it.

use criterion::{BenchmarkId, Criterion};
use msc_bench::baseline::{vec_difference, vec_is_subset, vec_union};
use msc_bench::workloads::overlapping_members;
use msc_core::StateSet;
use msc_ir::StateId;
use std::hint::black_box;

fn to_set(v: &[u32]) -> StateSet {
    StateSet::from_iter(v.iter().map(|&x| StateId(x)))
}

fn bench_set_algebra(c: &mut Criterion, sizes: &[usize], samples: usize) {
    let mut group = c.benchmark_group("set_algebra");
    group.sample_size(samples);

    for &n in sizes {
        let (va, vb) = overlapping_members(n);
        let (sa, sb) = (to_set(&va), to_set(&vb));
        // A guaranteed subset for the subset benchmarks (worst case: the
        // scan cannot bail out early).
        let vsub: Vec<u32> = va.iter().copied().step_by(2).collect();
        let ssub = to_set(&vsub);
        let probes: Vec<u32> = (0..16).map(|i| (i * 7) % (4 * n as u32)).collect();

        group.bench_with_input(BenchmarkId::new("union/hybrid", n), &n, |bch, _| {
            bch.iter(|| black_box(&sa).union(black_box(&sb)).len())
        });
        group.bench_with_input(BenchmarkId::new("union/sorted_vec", n), &n, |bch, _| {
            bch.iter(|| vec_union(black_box(&va), black_box(&vb)).len())
        });

        group.bench_with_input(BenchmarkId::new("difference/hybrid", n), &n, |bch, _| {
            bch.iter(|| black_box(&sa).difference(black_box(&sb)).len())
        });
        group.bench_with_input(
            BenchmarkId::new("difference/sorted_vec", n),
            &n,
            |bch, _| bch.iter(|| vec_difference(black_box(&va), black_box(&vb)).len()),
        );

        group.bench_with_input(BenchmarkId::new("is_subset/hybrid", n), &n, |bch, _| {
            bch.iter(|| black_box(&ssub).is_subset(black_box(&sa)))
        });
        group.bench_with_input(BenchmarkId::new("is_subset/sorted_vec", n), &n, |bch, _| {
            bch.iter(|| vec_is_subset(black_box(&vsub), black_box(&va)))
        });

        group.bench_with_input(BenchmarkId::new("contains/hybrid", n), &n, |bch, _| {
            bch.iter(|| probes.iter().filter(|&&p| sa.contains(StateId(p))).count())
        });
        group.bench_with_input(BenchmarkId::new("contains/sorted_vec", n), &n, |bch, _| {
            bch.iter(|| {
                probes
                    .iter()
                    .filter(|&&p| va.binary_search(&p).is_ok())
                    .count()
            })
        });
    }
    group.finish();
}

fn main() {
    // `--test` = smoke mode for CI: prove the bench runs, skip the cost.
    let smoke = std::env::args().any(|a| a == "--test");
    let sizes: &[usize] = if smoke {
        &[16, 64]
    } else {
        &[16, 64, 256, 1024]
    };
    let samples = if smoke { 2 } else { 10 };
    let mut c = Criterion::default();
    bench_set_algebra(&mut c, sizes, samples);
}
