//! Engine benchmarks: frontier-parallel conversion speedup over thread
//! count on a branchy workload (the fan-out-loops subset lattice keeps
//! thousands of meta states in flight, so the frontier is wide enough to
//! feed several workers), and compile-cache hit latency versus a cold
//! compile. Speedup is bounded by the machine's core count — the header
//! line prints it so single-core CI numbers are read correctly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msc_bench::workloads::{branchy_source, fan_out_loops_graph};
use msc_core::ConvertOptions;
use msc_engine::{convert_parallel, Engine, EngineOptions, Job};
use std::hint::black_box;
use std::time::Instant;

fn wide_opts() -> ConvertOptions {
    ConvertOptions {
        max_meta_states: 1 << 22,
        max_successor_sets: 1 << 22,
        ..ConvertOptions::base()
    }
}

fn bench_parallel(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("[engine] {cores} cores available (speedup is bounded by this)");
    let mut group = c.benchmark_group("parallel_convert");
    group.sample_size(10);

    for n in [8usize, 10] {
        let g = fan_out_loops_graph(n);
        let opts = wide_opts();
        // One-shot wall-clock series for the speedup summary (criterion's
        // per-thread-count medians land in the same report below).
        let mut t1 = 0.0f64;
        for threads in [1usize, 2, 4, 8] {
            let start = Instant::now();
            let (auto, _) = convert_parallel(&g, &opts, threads).unwrap();
            let secs = start.elapsed().as_secs_f64();
            if threads == 1 {
                t1 = secs;
            }
            println!(
                "[engine] fanout n={n}: {threads} threads {:.1} ms ({} meta states, {:.2}x)",
                secs * 1e3,
                auto.len(),
                t1 / secs
            );
        }
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("fanout_{n}_threads"), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| black_box(convert_parallel(&g, &opts, threads).unwrap().0.len()))
                },
            );
        }
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_cache");
    group.sample_size(10);
    let src = branchy_source(8);

    group.bench_function("cold_compile", |b| {
        b.iter(|| {
            // Fresh engine per iteration: nothing can be cached.
            let engine = Engine::new(EngineOptions {
                threads: 4,
                ..EngineOptions::default()
            });
            black_box(
                engine
                    .compile(&Job::new("bench", &src))
                    .unwrap()
                    .artifact
                    .meta_states,
            )
        })
    });

    let engine = Engine::new(EngineOptions {
        threads: 4,
        ..EngineOptions::default()
    });
    let job = Job::new("bench", &src);
    engine.compile(&job).unwrap();
    group.bench_function("memory_hit", |b| {
        b.iter(|| black_box(engine.compile(&job).unwrap().artifact.meta_states))
    });
    let s = engine.cache_stats();
    println!(
        "[engine] cache counters after hit bench: {} hits, {} misses",
        s.hits, s.misses
    );
    group.finish();
}

criterion_group!(benches, bench_parallel, bench_cache);
criterion_main!(benches);
