//! C2/C4/C5 (§1.2, §2.5, §2.6): the meta-state space and what compression
//! and barriers do to it. Criterion measures conversion wall time (the
//! paper: "meta-state conversion is a complex and slow process"); the
//! state-count series is printed for EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msc_bench::workloads::{barrier_phases_source, branch_chain_graph, fan_out_loops_graph};
use msc_core::{convert, ConvertOptions};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_explosion");
    group.sample_size(20);

    for n in [4usize, 8, 12, 16] {
        let g = branch_chain_graph(n);
        let base = convert(&g, &ConvertOptions::base()).unwrap();
        let comp = convert(&g, &ConvertOptions::compressed()).unwrap();
        println!(
            "[C2] chain n={n}: base {} meta states (avg width {:.2}), compressed {} (avg width {:.2})",
            base.len(),
            base.avg_width(),
            comp.len(),
            comp.avg_width()
        );
        group.bench_with_input(BenchmarkId::new("convert_base_chain", n), &n, |b, _| {
            b.iter(|| black_box(convert(&g, &ConvertOptions::base()).unwrap().len()))
        });
        group.bench_with_input(
            BenchmarkId::new("convert_compressed_chain", n),
            &n,
            |b, _| b.iter(|| black_box(convert(&g, &ConvertOptions::compressed()).unwrap().len())),
        );
    }

    for n in [4usize, 8, 12] {
        let g = fan_out_loops_graph(n);
        let base = convert(&g, &ConvertOptions::base());
        let comp = convert(&g, &ConvertOptions::compressed()).unwrap();
        println!(
            "[C4] {n} live loops: base {} meta states, compressed {} (max width {})",
            base.as_ref()
                .map(|a| a.len().to_string())
                .unwrap_or_else(|_| "guard hit".into()),
            comp.len(),
            comp.max_width()
        );
        group.bench_with_input(
            BenchmarkId::new("convert_fanout_compressed", n),
            &n,
            |b, _| b.iter(|| black_box(convert(&g, &ConvertOptions::compressed()).unwrap().len())),
        );
    }

    for phases in [2usize, 4] {
        let src = barrier_phases_source(phases);
        let p = msc_lang::compile(&src).unwrap();
        let with = convert(&p.graph, &ConvertOptions::base()).unwrap();
        let without = convert(
            &p.graph,
            &ConvertOptions {
                respect_barriers: false,
                ..ConvertOptions::base()
            },
        )
        .unwrap();
        println!(
            "[C5] {phases} phases: {} meta states with barriers (width {:.2}), {} without (width {:.2})",
            with.len(),
            with.avg_width(),
            without.len(),
            without.avg_width()
        );
        group.bench_with_input(
            BenchmarkId::new("convert_barrier_phases", phases),
            &phases,
            |b, _| b.iter(|| black_box(convert(&p.graph, &ConvertOptions::base()).unwrap().len())),
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
