//! Synthetic SPMD workload generators.
//!
//! The paper defers benchmarking on "real" programs to future work (§5),
//! so the experiments run on synthetic workloads whose parameters are
//! exactly the quantities the paper's claims are about: number of
//! simultaneously-live branching states (state explosion, §1.2/§2.5),
//! block cost imbalance (time splitting, §2.4), cross-thread code overlap
//! (CSI, §3.1), and dispatch arity (multiway branching, §3.2.3).
//!
//! Two kinds of generator: MIMDC source (exercises the whole pipeline) and
//! direct [`MimdGraph`] construction (isolates the converter from the
//! front end for the explosion measurements).

use msc_core::{MetaAutomaton, MetaId, StateSet};
use msc_ir::{Addr, MimdGraph, MimdState, Op, StateId, Terminator};
use std::fmt::Write as _;

/// MIMDC source: every PE classifies itself into one of `n_paths` work
/// kinds and runs a different loop. Drives divergence breadth.
pub fn branchy_source(n_paths: usize) -> String {
    assert!(n_paths >= 1);
    let mut body = String::new();
    let _ = writeln!(body, "        kind = pe_id() % {n_paths};");
    for k in 0..n_paths {
        let indent = "        ";
        if k + 1 < n_paths {
            let _ = writeln!(body, "{indent}if (kind == {k}) {{");
        } else {
            let _ = writeln!(body, "{indent}{{");
        }
        let _ = writeln!(
            body,
            "{indent}    for (i = 0; i < pe_id() % 4 + {trip}; i += 1) {{ acc += i * {mul}; }}",
            trip = k + 1,
            mul = k + 3
        );
        if k + 1 < n_paths {
            let _ = writeln!(body, "{indent}}} else");
        } else {
            let _ = writeln!(body, "{indent}}}");
        }
    }
    format!("main() {{\n    poly int kind, i, acc = 0;\n{body}    return(acc);\n}}\n")
}

/// MIMDC source: a two-way branch whose arms cost roughly `short_ops` and
/// `long_ops` single-cycle operations — the §2.4 time-splitting scenario
/// ("a block that takes 5 clock cycles … placed in the same meta-state as
/// one that takes 100").
pub fn imbalanced_source(short_ops: usize, long_ops: usize) -> String {
    let arm = |n: usize| {
        let mut s = String::new();
        for i in 0..n {
            let _ = write!(s, "acc = acc + {}; ", i % 7);
        }
        s
    };
    // One straggler PE takes the long arm — the §2.4 worst case, where the
    // whole array idles while one block runs (the "95% waiting" bound).
    format!(
        "main() {{\n    poly int acc = 0;\n    if (pe_id() == 0) {{ {long} }}\n    else {{ {short} }}\n    return(acc);\n}}\n",
        short = arm(short_ops),
        long = arm(long_ops),
    )
}

/// MIMDC source with `n_phases` barrier-separated phases of divergent
/// work (drives the §2.6 measurements).
pub fn barrier_phases_source(n_phases: usize) -> String {
    let mut body = String::new();
    for p in 0..n_phases {
        let _ = writeln!(
            body,
            "    for (i = 0; i < pe_id() % 3 + 1; i += 1) {{ acc += {}; }}\n    wait;",
            p + 1
        );
    }
    format!("main() {{\n    poly int i, acc = 0;\n{body}    return(acc);\n}}\n")
}

/// Direct graph: a chain of `n` two-exit states where both arcs stay live
/// simultaneously — the worst case for the base conversion's 3ⁿ successor
/// growth. Every state branches to (next, skip-to-end), so deep chains
/// make many states co-reachable.
pub fn branch_chain_graph(n: usize) -> MimdGraph {
    let mut g = MimdGraph::new();
    let end = g.add(MimdState::new(
        vec![Op::Push(0), Op::St(Addr::poly(0))],
        Terminator::Halt,
    ));
    let mut ids: Vec<StateId> = Vec::with_capacity(n);
    for i in 0..n {
        let id = g.add(MimdState::new(
            vec![
                Op::Ld(Addr::poly(0)),
                Op::Push(i as i64),
                Op::Bin(msc_ir::BinOp::Lt),
            ],
            Terminator::Halt,
        ));
        ids.push(id);
    }
    for (i, &id) in ids.iter().enumerate() {
        let next = if i + 1 < n { ids[i + 1] } else { end };
        g.state_mut(id).term = Terminator::Branch { t: next, f: end };
    }
    g.start = ids[0];
    g
}

/// Direct graph: `n` independent self-loops reached from a fan-out root —
/// models `n` concurrently-live loop states (what a `n_paths`-way branchy
/// program converges to). Width driver for the §2.5 measurements.
pub fn fan_out_loops_graph(n: usize) -> MimdGraph {
    let mut g = MimdGraph::new();
    let end = g.add(MimdState::new(vec![], Terminator::Halt));
    let loops: Vec<StateId> = (0..n)
        .map(|i| {
            g.add(MimdState::new(
                vec![
                    Op::Ld(Addr::poly(0)),
                    Op::Push(i as i64),
                    Op::Bin(msc_ir::BinOp::Gt),
                ],
                Terminator::Halt,
            ))
        })
        .collect();
    for &l in &loops {
        g.state_mut(l).term = Terminator::Branch { t: l, f: end };
    }
    // Binary fan-out tree from the root to the n loops.
    let mut frontier = loops.clone();
    while frontier.len() > 1 {
        let mut next = Vec::with_capacity(frontier.len().div_ceil(2));
        for pair in frontier.chunks(2) {
            if pair.len() == 2 {
                let id = g.add(MimdState::new(
                    vec![Op::Ld(Addr::poly(0))],
                    Terminator::Branch {
                        t: pair[0],
                        f: pair[1],
                    },
                ));
                next.push(id);
            } else {
                next.push(pair[0]);
            }
        }
        frontier = next;
    }
    g.start = frontier[0];
    g
}

/// Thread op sequences with a controlled shared fraction, for the CSI
/// experiments: each of `n_threads` threads has `shared` ops common to all
/// (same opcode + operands) interleaved with `private` ops unique to it.
pub fn csi_threads(n_threads: usize, shared: usize, private: usize) -> Vec<Vec<Op>> {
    (0..n_threads)
        .map(|t| {
            let mut ops = Vec::with_capacity(shared + private);
            for i in 0..shared.max(private) {
                if i < shared {
                    ops.push(Op::Ld(Addr::poly(i as u32 % 8)));
                }
                if i < private {
                    ops.push(Op::Push((t * 1000 + i) as i64));
                    ops.push(Op::St(Addr::poly(8 + t as u32)));
                }
            }
            ops
        })
        .collect()
}

/// Key sets of `n` aggregates over a `bits`-wide pc space, as produced by
/// meta-state dispatches (each key = OR of 1–3 state bits). Deterministic.
pub fn aggregate_keys(n: usize, bits: u32) -> Vec<u64> {
    let mut keys = Vec::with_capacity(n);
    let mut x = 0x243f_6a88_85a3_08d3u64; // pi digits, fixed seed
    while keys.len() < n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = (x >> 5) % bits as u64;
        let b = (x >> 23) % bits as u64;
        let c = (x >> 41) % bits as u64;
        let key = (1u64 << a) | (1 << b) | (1 << c);
        if !keys.contains(&key) {
            keys.push(key);
        }
        if keys.len() >= (1usize << bits.min(20)) {
            break;
        }
    }
    keys
}

/// Two sorted, distinct member lists of `n` state ids each, drawn from a
/// universe of `4n` ids with roughly 50% overlap — the set-algebra
/// benchmark workload (dense enough that hybrid sets use the bitset
/// representation, sparse enough that word-level work is not trivial).
/// Deterministic.
pub fn overlapping_members(n: usize) -> (Vec<u32>, Vec<u32>) {
    let universe = (4 * n.max(1)) as u32;
    let mut x = 0x13198a2e_03707344u64; // pi digits, fixed seed
    let mut draw = |out: &mut Vec<u32>| {
        while out.len() < n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((x >> 33) % universe as u64) as u32;
            if let Err(i) = out.binary_search(&v) {
                out.insert(i, v);
            }
        }
    };
    let mut a = Vec::with_capacity(n);
    let mut b: Vec<u32> = Vec::with_capacity(n);
    draw(&mut a);
    // Seed b with half of a so the pair overlaps, then fill the rest.
    b.extend(a.iter().copied().step_by(2));
    draw(&mut b);
    (a, b)
}

/// A meta automaton of `n` subset/superset pairs ({3i, 3i+1} ⊂
/// {3i, 3i+1, 3i+2}) chained by successor arcs so every meta state stays
/// reachable — the subsumption-scaling workload. Each pair folds exactly
/// once, and each MIMD state occurs in at most two meta states, so an
/// occurrence-indexed subsumption pass does O(1) candidate work per meta
/// state while an all-pairs pass does O(n).
pub fn subset_chain_automaton(n: usize) -> MetaAutomaton {
    let mut graph = MimdGraph::new();
    for _ in 0..3 * n {
        graph.add(MimdState::new(vec![], Terminator::Halt));
    }
    graph.start = StateId(0);
    let mut sets = Vec::with_capacity(2 * n);
    for i in 0..n as u32 {
        sets.push(StateSet::from_iter([StateId(3 * i), StateId(3 * i + 1)]));
        sets.push(StateSet::from_iter([
            StateId(3 * i),
            StateId(3 * i + 1),
            StateId(3 * i + 2),
        ]));
    }
    let last = sets.len() - 1;
    let succs = (0..sets.len())
        .map(|i| {
            if i == last {
                vec![]
            } else {
                vec![MetaId(i as u32 + 1)]
            }
        })
        .collect();
    MetaAutomaton {
        graph,
        sets,
        start: MetaId(0),
        succs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_core::{convert, ConvertOptions};

    #[test]
    fn branchy_source_compiles_at_all_widths() {
        for n in 1..=6 {
            let src = branchy_source(n);
            let p = msc_lang::compile(&src).unwrap_or_else(|e| panic!("n={n}: {e}\n{src}"));
            assert!(p.graph.len() >= n);
        }
    }

    #[test]
    fn imbalanced_source_compiles_with_expected_costs() {
        let p = msc_lang::compile(&imbalanced_source(5, 100)).unwrap();
        let costs = msc_ir::CostModel::default();
        let mut block_costs: Vec<u64> = p
            .graph
            .ids()
            .map(|i| p.graph.state_cost(i, &costs))
            .collect();
        block_costs.sort_unstable();
        let max = *block_costs.last().unwrap();
        let mid = block_costs[block_costs.len() / 2];
        assert!(max > mid * 3, "long arm should dominate: {block_costs:?}");
    }

    #[test]
    fn barrier_phases_have_barriers() {
        let p = msc_lang::compile(&barrier_phases_source(3)).unwrap();
        let barriers = p.graph.ids().filter(|&i| p.graph.state(i).barrier).count();
        assert_eq!(barriers, 3);
    }

    #[test]
    fn branch_chain_graph_converts_and_grows() {
        let small = convert(&branch_chain_graph(3), &ConvertOptions::base()).unwrap();
        let large = convert(&branch_chain_graph(6), &ConvertOptions::base()).unwrap();
        assert!(large.len() > small.len());
    }

    #[test]
    fn fan_out_loops_width_grows() {
        let a = convert(&fan_out_loops_graph(2), &ConvertOptions::compressed()).unwrap();
        let b = convert(&fan_out_loops_graph(8), &ConvertOptions::compressed()).unwrap();
        assert!(b.max_width() > a.max_width());
    }

    #[test]
    fn csi_threads_shapes() {
        let t = csi_threads(4, 5, 3);
        assert_eq!(t.len(), 4);
        for seq in &t {
            assert_eq!(seq.len(), 5 + 2 * 3);
        }
    }

    #[test]
    fn overlapping_members_shape() {
        let (a, b) = overlapping_members(256);
        assert_eq!(a.len(), 256);
        assert_eq!(b.len(), 256);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        let shared = a.iter().filter(|x| b.binary_search(x).is_ok()).count();
        assert!(shared >= 64, "workload should overlap, got {shared}");
        assert_eq!(overlapping_members(256), (a, b), "deterministic");
    }

    #[test]
    fn subset_chain_folds_once_per_pair() {
        let mut auto = subset_chain_automaton(16);
        assert_eq!(auto.validate(), Ok(()));
        let removed = msc_core::subsume::subsume(&mut auto);
        assert_eq!(removed, 16);
        assert_eq!(auto.len(), 16);
        assert_eq!(auto.validate(), Ok(()));
    }

    #[test]
    fn aggregate_keys_distinct() {
        let keys = aggregate_keys(100, 24);
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
        assert_eq!(keys.len(), 100);
    }
}
