//! Measure every quantitative claim of the paper (C1–C9 in
//! EXPERIMENTS.md) and print the paper-expectation vs the measured value.
//!
//! ```text
//! cargo run -p msc-bench --bin claims             # all claims
//! cargo run -p msc-bench --bin claims -- c3 c4    # a subset
//! ```

use metastate::{ConvertMode, Pipeline, TimeSplitOptions};
use msc_bench::workloads::*;
use msc_bench::{measure_interp, measure_msc};
use msc_core::{convert, convert_with_stats, ConvertOptions};
use msc_simd::MachineConfig;

fn c1() {
    println!("== C1 (§1.1): interpretation overhead vs meta-state conversion ==");
    println!("   paper: interpretation must fetch/decode, replicate the program per PE,");
    println!("   and pay loop overhead; MSC eliminates all three.\n");
    println!("paths | MSC cycles | interp cycles | speedup | MSC B/PE | interp B/PE");
    for n in [2usize, 3, 4, 5] {
        let src = branchy_source(n);
        let msc = measure_msc(&src, 16, ConvertMode::Base);
        let it = measure_interp(&src, 16);
        assert_eq!(msc.values, it.values, "modes must agree");
        println!(
            "{n:5} | {:10} | {:13} | {:6.2}x | {:8} | {:10}",
            msc.cycles,
            it.cycles,
            it.cycles as f64 / msc.cycles as f64,
            msc.per_pe_program_words * 8,
            it.per_pe_program_words * 8,
        );
    }
    println!("\n   shape check: MSC wins on cycles at every size; MSC per-PE program");
    println!("   memory is 0 and flat, interpreter memory grows with program size.\n");
}

fn c2() {
    println!("== C2 (§1.2/§2.5): state explosion and what compression does to it ==");
    println!("   paper: up to S!/(S-N)! meta states are possible; assuming both");
    println!("   successors are always taken gives 'a very dramatic reduction'.\n");
    println!("live loops n | base meta states | compressed | successor sets enumerated (base)");
    for n in [2usize, 4, 6, 8, 10] {
        let g = fan_out_loops_graph(n);
        let mut opts = ConvertOptions::base();
        opts.max_meta_states = 1 << 18;
        let (base, stats) = convert_with_stats(&g, &opts).unwrap();
        let comp = convert(&g, &ConvertOptions::compressed()).unwrap();
        println!(
            "{n:12} | {:16} | {:10} | {}",
            base.len(),
            comp.len(),
            stats.successor_sets_enumerated
        );
    }
    println!("\n   (contrast: a branch chain whose FALSE arcs all die at the exit state");
    println!("   stays linear even in base mode — explosion needs *co-reachable* states)");
    println!("chain n      | base meta states | compressed");
    for n in [4usize, 8, 12] {
        let g = branch_chain_graph(n);
        let base = convert(&g, &ConvertOptions::base()).unwrap();
        let comp = convert(&g, &ConvertOptions::compressed()).unwrap();
        println!("{n:12} | {:16} | {:10}", base.len(), comp.len());
    }
    println!("\n   shape check: with n co-reachable loop states, base grows");
    println!("   exponentially in n while compression collapses to O(log n) states");
    println!("   ('a very dramatic reduction in meta state space').\n");
}

fn c3() {
    println!("== C3 (§2.4): time splitting restores PE utilization ==");
    println!("   paper: 'if a block that takes 5 clock cycles is placed in the same");
    println!("   meta-state as one that takes 100 cycles, then the parallel machine may");
    println!("   spend up to 95% of its processor cycles simply waiting'.\n");
    println!("arm ratio | util (no split) | util (split) | splits");
    for long in [5usize, 25, 50, 100, 200] {
        let src = imbalanced_source(5, long);
        let plain = Pipeline::new(src.as_str())
            .mode(ConvertMode::Base)
            .build()
            .unwrap();
        let split = Pipeline::new(src.as_str())
            .mode(ConvertMode::Base)
            .time_split(TimeSplitOptions::default())
            .build()
            .unwrap();
        let up = plain.run(16).unwrap().metrics.utilization();
        let us = split.run(16).unwrap().metrics.utilization();
        println!(
            "  5:{long:<5} | {:15.1}% | {:11.1}% | {:6}",
            up * 100.0,
            us * 100.0,
            split.stats.splits
        );
    }
    println!("\n   shape check: unsplit utilization collapses toward the 5/105 ≈ 5%");
    println!("   bound as the ratio grows; splitting holds it near the balanced level.\n");
}

fn c4() {
    println!("== C4 (§2.5): compression trades automaton size for meta-state width ==");
    println!("   paper: 'the average meta-state is wider, which implies that the SIMD");
    println!("   implementation will be less efficient.'\n");
    println!("paths | base: states/width/cycles | compressed: states/width/cycles");
    for n in [2usize, 3, 4, 5, 6] {
        let src = branchy_source(n);
        let b = Pipeline::new(src.as_str())
            .mode(ConvertMode::Base)
            .build()
            .unwrap();
        let c = Pipeline::new(src.as_str())
            .mode(ConvertMode::Compressed)
            .build()
            .unwrap();
        let br = b.run(16).unwrap();
        let cr = c.run(16).unwrap();
        assert!(c.automaton.len() <= b.automaton.len());
        println!(
            "{n:5} | {:6}/{:5.2}/{:8} | {:6}/{:5.2}/{:8}",
            b.automaton.len(),
            b.automaton.avg_width(),
            br.metrics.cycles,
            c.automaton.len(),
            c.automaton.avg_width(),
            cr.metrics.cycles
        );
    }
    println!("\n   shape check: compressed has far fewer, far wider meta states and");
    println!("   more execution cycles — exactly the stated trade.\n");
}

fn c5() {
    println!("== C5 (§2.6): barriers shrink the state space WITHOUT widening ==");
    println!("   paper: barrier synchronization reduces states 'without adding to the");
    println!("   complexity of each meta state.'\n");
    println!("phases | with barriers: states/width | barriers ignored: states/width");
    for phases in [1usize, 2, 3, 4] {
        let src = barrier_phases_source(phases);
        let p = msc_lang::compile(&src).unwrap();
        let with = convert(&p.graph, &ConvertOptions::base()).unwrap();
        let without = convert(
            &p.graph,
            &ConvertOptions {
                respect_barriers: false,
                ..ConvertOptions::base()
            },
        )
        .unwrap();
        println!(
            "{phases:6} | {:12}/{:5.2} | {:14}/{:5.2}",
            with.len(),
            with.avg_width(),
            without.len(),
            without.avg_width()
        );
    }
    println!("\n   shape check: respecting barriers gives fewer meta states at equal or");
    println!("   smaller average width (contrast C4, which shrinks by widening).\n");
}

fn c6() {
    println!("== C6 (§3.1): common subexpression induction ==");
    println!("   paper: operations performed by more than one member sequence 'can be");
    println!("   executed in parallel by all processors' after factoring.\n");
    println!("threads shared/private | naive cost | CSI cost | lower bound | saved");
    for (t, s, p) in [
        (2usize, 8usize, 2usize),
        (4, 8, 2),
        (8, 8, 2),
        (4, 2, 8),
        (4, 12, 0),
    ] {
        let threads = csi_threads(t, s, p);
        let sched = msc_csi::induce(&threads).unwrap();
        sched.validate(&threads).unwrap();
        println!(
            "{t:3} × {s:2}sh/{p:2}pr        | {:10} | {:8} | {:11} | {:4.0}%",
            sched.naive_cost,
            sched.cost,
            sched.lower_bound,
            (1.0 - sched.cost as f64 / sched.naive_cost as f64) * 100.0
        );
    }
    // End-to-end: CSI on vs off through codegen.
    let src = branchy_source(4);
    let with = Pipeline::new(src.as_str())
        .mode(ConvertMode::Compressed)
        .build()
        .unwrap();
    let without = Pipeline::new(src.as_str())
        .mode(ConvertMode::Compressed)
        .gen_options(msc_codegen::GenOptions {
            csi: false,
            ..Default::default()
        })
        .build()
        .unwrap();
    let wc = with.run(16).unwrap().metrics.cycles;
    let oc = without.run(16).unwrap().metrics.cycles;
    println!("\nend-to-end (4-path workload, compressed): CSI {} cycles vs no-CSI {} cycles ({:.0}% saved)", wc, oc, (1.0 - wc as f64 / oc as f64) * 100.0);
    println!("\n   shape check: saving grows with thread count and shared fraction;");
    println!("   fully-shared threads approach the lower bound.\n");
}

fn c7() {
    println!("== C7 (§3.2.3/[Die92a]): customized hash functions for multiway branches ==");
    println!("   paper: aggregate pc values are sparse bitmasks; a customized hash makes");
    println!("   'the case values contiguous so that the compiler will use a jump table.'\n");
    println!("cases | pc bits | naive table | hashed table | hash ops | load");
    for (n, bits) in [
        (3usize, 10u32),
        (5, 10),
        (8, 16),
        (16, 24),
        (32, 32),
        (64, 48),
    ] {
        let keys = aggregate_keys(n, bits);
        let ph = msc_hash::find_hash(&keys).unwrap();
        println!(
            "{:5} | {bits:7} | 2^{bits:<9} | {:12} | {:8} | {:3.0}%",
            keys.len(),
            ph.table.len(),
            ph.expr.op_count(),
            ph.load_factor() * 100.0
        );
    }
    println!("\n   shape check: hashed tables stay near the key count while the naive");
    println!("   dense table explodes as 2^(pc bits); dispatch stays O(1) at 1–3 ALU ops.\n");
}

fn c8() {
    println!("== C8 (§3.2.5): restricted dynamic process creation ==");
    let src = r#"
        void worker(int seed) {
            poly int r, i;
            r = 0;
            for (i = 0; i < seed; i += 1) { r += seed; }
        }
        main() {
            spawn worker(pe_id() + 3);
            spawn worker(pe_id() + 7);
        }
    "#;
    let built = Pipeline::new(src).mode(ConvertMode::Base).build().unwrap();
    // Each live PE spawns twice and the two worker generations overlap, so
    // the pool must hold 2×live recruits at once.
    for (n_pe, live) in [(16usize, 4usize), (16, 5)] {
        let out = built
            .run_with(MachineConfig::with_pool(n_pe, live))
            .unwrap();
        let r = built.compiled.layout.var("r").unwrap().addr;
        let done = (0..n_pe)
            .filter(|&pe| out.machine.poly_at(pe, r) != 0)
            .count();
        println!(
            "{n_pe} PEs, {live} live: {} workers completed, {} PEs idle at end, {} cycles",
            done,
            out.machine.idle_count(),
            out.metrics.cycles
        );
        assert_eq!(done, live * 2, "each live PE spawns twice");
    }
    let over = built.run_with(MachineConfig::spmd(4));
    println!(
        "4 PEs, 4 live (no pool): {:?}",
        over.err().map(|e| e.to_string())
    );
    println!("\n   shape check: spawn works exactly while 'the number of processes");
    println!("   requested does not exceed the number of processors available'.\n");
}

fn c9() {
    println!("== C9 (§5): synchronization is implicit in meta-state code ==");
    println!("   paper: 'synchronization is implicit in the meta-state converted SIMD");
    println!("   code, and hence has no runtime cost.'\n");
    println!("phases | MSC sync instrs issued | interpreter Wait rounds");
    for phases in [1usize, 2, 3] {
        let src = barrier_phases_source(phases);
        let built = Pipeline::new(src.as_str())
            .mode(ConvertMode::Base)
            .build()
            .unwrap();
        // Count synchronization instructions in the generated program: by
        // construction there are none — barriers shaped the automaton.
        let sync_instrs = 0; // no Wait/sync opcode exists in SimdInstr
        let _ = built.run(8).unwrap();
        let p = msc_lang::compile(&src).unwrap();
        let image =
            msc_mimd::InterpProgram::flatten(&p.graph, p.layout.poly_words, p.layout.mono_words);
        let waits = image
            .image
            .iter()
            .filter(|i| matches!(i, msc_mimd::InterpInstr::Wait))
            .count();
        println!("{phases:6} | {sync_instrs:22} | {waits} wait instructions in the image");
    }
    println!("\n   shape check: the generated SIMD instruction set has no");
    println!("   synchronization opcode at all; the interpreter must execute explicit");
    println!("   Wait instructions and spin rounds until release.\n");
}

fn c10() {
    println!("== C10 (extension): where does compression win? ==");
    println!("   §2.5 says compressed meta states are wider (slower bodies) but need");
    println!("   no globalor dispatch. So the base/compressed choice is a cost-model");
    println!("   question: as dispatch gets more expensive relative to ALU work, the");
    println!("   compressed automaton's unconditional gotos start paying off.\n");
    let src = branchy_source(3);
    println!("dispatch cost | base cycles | compressed cycles | winner");
    for dispatch in [2u32, 8, 32, 128, 512] {
        let costs = msc_ir::CostModel {
            dispatch,
            ..Default::default()
        };
        let run = |mode: ConvertMode| {
            let mut copts = match mode {
                ConvertMode::Base => ConvertOptions::base(),
                ConvertMode::Compressed => ConvertOptions::compressed(),
            };
            copts.costs = costs.clone();
            let built = Pipeline::new(src.as_str())
                .convert_options(copts)
                .gen_options(msc_codegen::GenOptions {
                    costs: costs.clone(),
                    ..Default::default()
                })
                .build()
                .unwrap();
            built.run(16).unwrap().metrics.cycles
        };
        let b = run(ConvertMode::Base);
        let c = run(ConvertMode::Compressed);
        println!(
            "{dispatch:13} | {b:11} | {c:17} | {}",
            if b <= c { "base" } else { "compressed" }
        );
    }
    println!("\n   shape check: base wins at realistic dispatch costs; sufficiently");
    println!("   expensive aggregation flips the winner to compressed — the trade");
    println!("   §2.5 describes, made quantitative.\n");
}

fn a1() {
    println!("== A1 (ablation): superset subsumption in compression ==");
    println!("   Figure 5's two-state result needs the fold implied by 'both");
    println!("   successors can always emulate either successor'. Divergent-loop");
    println!("   shapes (the paper's own example family) build the subset chains.\n");
    println!("live loops n | compressed w/ subsumption | w/o subsumption");
    for n in [2usize, 4, 8, 12] {
        let g = fan_out_loops_graph(n);
        let with = convert(&g, &ConvertOptions::compressed()).unwrap();
        let without = convert(
            &g,
            &ConvertOptions {
                subsumption: false,
                ..ConvertOptions::compressed()
            },
        )
        .unwrap();
        println!("{n:12} | {:25} | {}", with.len(), without.len());
    }
    println!("\n   shape check: without subsumption, compression keeps one meta state");
    println!("   per fan-out level (each a strict subset of the final union); the");
    println!("   fold collapses them into the superset — the paper's 8→…→2 step.\n");
}

fn a2() {
    println!("== A2 (ablation): bisimulation minimization of the MIMD graph ==");
    println!("   The §4.2 while-normalization duplicates the loop test (pre-test +");
    println!("   in-loop test), and duplicated branch bodies are common in SPMD");
    println!("   dispatchers; merging bisimilar states shrinks the graph the");
    println!("   converter must subset-construct.\n");
    let src = r#"
        main() {
            poly int x, acc = 0;
            x = pe_id() % 4;
            /* identical bodies in two arms */
            if (x == 0) { acc += 5; acc *= 2; }
            else        { acc += 5; acc *= 2; }
            /* while after a join: pre-test block == in-loop test block */
            while (x > 0) { x -= 1; }
            while (acc > 11) { acc -= 1; }
            return(acc + x);
        }
    "#;
    let plain = Pipeline::new(src).mode(ConvertMode::Base).build().unwrap();
    let minimized = Pipeline::new(src)
        .mode(ConvertMode::Base)
        .minimize()
        .build()
        .unwrap();
    println!(
        "MIMD states: {} plain → {} minimized",
        plain.compiled.graph.len(),
        minimized.compiled.graph.len()
    );
    println!(
        "meta states: {} plain → {} minimized",
        plain.automaton.len(),
        minimized.automaton.len()
    );
    let a = plain.run(8).unwrap();
    let b = minimized.run(8).unwrap();
    let ret = plain.ret_addr().unwrap();
    let va: Vec<i64> = (0..8).map(|pe| a.machine.poly_at(pe, ret)).collect();
    let vb: Vec<i64> = (0..8)
        .map(|pe| b.machine.poly_at(pe, minimized.ret_addr().unwrap()))
        .collect();
    assert_eq!(va, vb, "minimization must preserve semantics");
    assert!(minimized.compiled.graph.len() < plain.compiled.graph.len());
    println!(
        "results identical; cycles {} → {}",
        a.metrics.cycles, b.metrics.cycles
    );
    println!("   (note: §2.2 inline copies do NOT merge — each call site's frame");
    println!("   addresses differ, so the duplicated code is not textually equal;");
    println!("   an address-abstracting minimizer is genuine future work.)\n");
}

fn a3() {
    println!("== A3 (ablation): peephole optimization before conversion ==");
    let src = r#"
        main() {
            poly int x;
            x = (2 * 3 + 4) * pe_id() + (10 - 2 * 5);
            if (x * 1 + 0 > 8) { x = x + 2 * 8; } else { x = x - 16 / 4; }
            return(x);
        }
    "#;
    let plain = Pipeline::new(src).mode(ConvertMode::Base).build().unwrap();
    let opt = Pipeline::new(src)
        .mode(ConvertMode::Base)
        .optimize()
        .build()
        .unwrap();
    let a = plain.run(8).unwrap();
    let b = opt.run(8).unwrap();
    let va: Vec<i64> = (0..8)
        .map(|pe| a.machine.poly_at(pe, plain.ret_addr().unwrap()))
        .collect();
    let vb: Vec<i64> = (0..8)
        .map(|pe| b.machine.poly_at(pe, opt.ret_addr().unwrap()))
        .collect();
    assert_eq!(va, vb);
    println!(
        "control-unit instrs: {} plain → {} optimized; cycles {} → {}",
        plain.simd.control_unit_instrs(),
        opt.simd.control_unit_instrs(),
        a.metrics.cycles,
        b.metrics.cycles
    );
    println!("   shape check: folding shrinks both program and cycle count.\n");
}

fn a4() {
    println!("== A4 (ablation): hash family restriction ==");
    println!("   Listing 5 uses shift/xor folding; how often does the search need");
    println!("   the multiplicative fallback?\n");
    println!("cases | bits | folding-only table | with mul table");
    for (n, bits) in [(5usize, 10u32), (16, 24), (32, 32), (64, 48)] {
        let keys = aggregate_keys(n, bits);
        let fold_only = msc_hash::find_hash_with(
            &keys,
            msc_hash::SearchOptions {
                max_table_bits: 16,
                allow_mul: false,
            },
        );
        let with_mul = msc_hash::find_hash(&keys).unwrap();
        println!(
            "{n:5} | {bits:4} | {:18} | {}",
            fold_only
                .map(|p| p.table.len().to_string())
                .unwrap_or_else(|_| "not found".into()),
            with_mul.table.len()
        );
    }
    println!("\n   shape check: folding families suffice for small dispatches (like");
    println!("   the paper's example); wide sparse key sets need multiplicative");
    println!("   hashing, which the generated-code cost model prices identically.\n");
}

/// Drop a re-measured snapshot next to (not over) the committed
/// baseline: `bench-remeasured/BENCH_<name>.json`. CI uploads the
/// directory as an artifact so a failing (or passing) gate run leaves
/// the numbers it actually saw on the machine that saw them.
/// Best-effort: never fails the gate over an unwritable disk.
fn write_remeasured(name: &str, json: &str) {
    let dir = std::path::Path::new("bench-remeasured");
    let path = dir.join(format!("BENCH_{name}.json"));
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, json)) {
        eprintln!("note: could not write {}: {e}", path.display());
    } else {
        println!("re-measured snapshot: {}", path.display());
    }
}

/// Best-of-3 per-iteration time of `f`, auto-scaled to ~20 ms per sample.
/// The returned `usize` is folded into a sink so the work cannot be
/// optimized away.
fn time_ns(mut f: impl FnMut() -> usize) -> f64 {
    use std::time::Instant;
    let mut sink = 0usize;
    let t0 = Instant::now();
    sink ^= f();
    let one = t0.elapsed().as_nanos().max(1);
    let iters = (20_000_000u128 / one).clamp(8, 1_000_000) as u64;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            sink ^= f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    std::hint::black_box(sink);
    best
}

/// A set's bitset words, for driving the word-parallel kernels directly.
fn bit_words(s: &msc_core::StateSet) -> Vec<u64> {
    let mut w = Vec::new();
    s.append_bit_words(&mut w);
    w
}

fn setops() {
    use msc_bench::baseline::{vec_difference, vec_is_subset, vec_union};
    use msc_core::StateSet;
    use msc_ir::StateId;

    println!("== SETOPS: hybrid StateSet vs the seed's sorted-vec representation ==");
    println!("   (writes the committed baseline BENCH_setops.json)");
    println!("   union is the SIMD kernel the converter's candidate enumeration runs");
    println!("   on: bit-words unioned into a reusable scratch buffer, no allocation.\n");
    let to_set = |v: &[u32]| -> StateSet { StateSet::from_iter(v.iter().map(|&x| StateId(x))) };

    let mut json = String::from("{\n");
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p msc-bench --bin claims -- setops\",\n",
    );
    json.push_str("  \"units\": \"ns per operation, best of 3 samples\",\n");
    json.push_str("  \"workloads\": [\n");
    println!("size | op         | sorted-vec ns | hybrid ns | speedup");
    for (wi, &n) in [64usize, 256, 1024].iter().enumerate() {
        let (va, vb) = overlapping_members(n);
        let (sa, sb) = (to_set(&va), to_set(&vb));
        let vsub: Vec<u32> = va.iter().copied().step_by(2).collect();
        let ssub = to_set(&vsub);
        let probes: Vec<u32> = (0..16).map(|i| (i * 7) % (4 * n as u32)).collect();
        let (wa, wb) = (bit_words(&sa), bit_words(&sb));
        let (long, short) = if wa.len() >= wb.len() {
            (&wa, &wb)
        } else {
            (&wb, &wa)
        };
        let mut out = Vec::with_capacity(long.len());

        let ops: [(&str, f64, f64); 4] = [
            (
                "union",
                time_ns(|| vec_union(&va, &vb).len()),
                time_ns(|| msc_simd::setops::union_count(long, short, &mut out) as usize),
            ),
            (
                "difference",
                time_ns(|| vec_difference(&va, &vb).len()),
                time_ns(|| sa.difference(&sb).len()),
            ),
            (
                "is_subset",
                time_ns(|| usize::from(vec_is_subset(&vsub, &va))),
                time_ns(|| usize::from(ssub.is_subset(&sa))),
            ),
            (
                "contains",
                time_ns(|| {
                    probes
                        .iter()
                        .filter(|&&p| va.binary_search(&p).is_ok())
                        .count()
                }),
                time_ns(|| probes.iter().filter(|&&p| sa.contains(StateId(p))).count()),
            ),
        ];
        json.push_str(&format!("    {{\"size\": {n}"));
        for (name, naive, hybrid) in ops {
            let speedup = naive / hybrid;
            println!("{n:4} | {name:10} | {naive:13.1} | {hybrid:9.1} | {speedup:6.2}x");
            json.push_str(&format!(
                ", \"{name}_baseline_ns\": {naive:.1}, \"{name}_hybrid_ns\": {hybrid:.1}, \"{name}_speedup\": {speedup:.2}"
            ));
        }
        json.push_str(if wi == 2 { "}\n" } else { "},\n" });
    }
    json.push_str("  ],\n");

    println!("\n   subsumption scaling (n subset/superset pairs, each folds once):");
    println!("   pairs | ns/pass | growth vs previous (quadratic would be ~4x)");
    let sizes = [64usize, 128, 256, 512];
    let mut times = Vec::new();
    for &n in &sizes {
        let auto = subset_chain_automaton(n);
        let ns = time_ns(|| {
            let mut a = auto.clone();
            msc_core::subsume::subsume(&mut a);
            a.len()
        });
        let growth = times
            .last()
            .map(|&p: &f64| format!("{:.2}x", ns / p))
            .unwrap_or_else(|| "-".into());
        println!("   {n:5} | {ns:11.0} | {growth}");
        times.push(ns);
    }
    json.push_str("  \"subsume\": {\n    \"pairs\": [64, 128, 256, 512],\n    \"ns\": [");
    json.push_str(
        &times
            .iter()
            .map(|t| format!("{t:.0}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("],\n    \"growth_ratios\": [");
    json.push_str(
        &times
            .windows(2)
            .map(|w| format!("{:.2}", w[1] / w[0]))
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("],\n    \"quadratic_growth_would_be\": 4.0\n  }\n}\n");

    std::fs::write("BENCH_setops.json", &json).expect("write BENCH_setops.json");
    println!("\n   wrote BENCH_setops.json");
    println!("   shape check: union/is_subset speedups reach >=2x from the 256-state");
    println!("   workload up, and subsume growth ratios stay near 2x per doubling\n");
}

/// `claims -- setops --check`: re-measure the union / is_subset speedups
/// and gate them against the committed `BENCH_setops.json`. Prints the
/// measurements either way; returns false (→ nonzero exit) if any speedup
/// regressed more than 30% below its committed value.
fn setops_check() -> bool {
    use msc_bench::baseline::{vec_is_subset, vec_union};
    use msc_bench::regression::{check_speedups, parse_setops_baseline};
    use msc_core::StateSet;
    use msc_ir::StateId;

    println!("== SETOPS --check: regression gate vs committed BENCH_setops.json ==\n");
    let text = match std::fs::read_to_string("BENCH_setops.json") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read BENCH_setops.json: {e}");
            return false;
        }
    };
    let baseline = parse_setops_baseline(&text);
    if baseline.is_empty() {
        eprintln!("BENCH_setops.json contains no workload baselines");
        return false;
    }

    let to_set = |v: &[u32]| -> StateSet { StateSet::from_iter(v.iter().map(|&x| StateId(x))) };
    let mut measured = Vec::new();
    println!("size | union speedup (committed) | is_subset speedup (committed)");
    for b in &baseline {
        let n = b.size;
        let (va, vb) = overlapping_members(n);
        let (sa, sb) = (to_set(&va), to_set(&vb));
        let vsub: Vec<u32> = va.iter().copied().step_by(2).collect();
        let ssub = to_set(&vsub);
        let (wa, wb) = (bit_words(&sa), bit_words(&sb));
        let (long, short) = if wa.len() >= wb.len() {
            (&wa, &wb)
        } else {
            (&wb, &wa)
        };
        let mut out = Vec::with_capacity(long.len());
        let union_speedup = time_ns(|| vec_union(&va, &vb).len())
            / time_ns(|| msc_simd::setops::union_count(long, short, &mut out) as usize);
        let subset_speedup = time_ns(|| usize::from(vec_is_subset(&vsub, &va)))
            / time_ns(|| usize::from(ssub.is_subset(&sa)));
        println!(
            "{n:4} | {union_speedup:13.2}x ({:6.2}x) | {subset_speedup:17.2}x ({:6.2}x)",
            b.union_speedup, b.is_subset_speedup
        );
        measured.push((n, union_speedup, subset_speedup));
    }

    write_remeasured(
        "setops",
        &format!(
            "{{\n  \"generated_by\": \"claims -- setops --check\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
            measured
                .iter()
                .map(|(n, u, s)| format!(
                    "    {{\"size\": {n}, \"union_speedup\": {u:.2}, \"is_subset_speedup\": {s:.2}}}"
                ))
                .collect::<Vec<_>>()
                .join(",\n")
        ),
    );

    // Sets below ~4 bit-words finish in a handful of cycles, so their
    // speedup ratio swings 2x run to run; only the 256+ sizes time
    // stably enough to ratchet. Smaller sizes stay informational above.
    let gated: Vec<_> = baseline.iter().filter(|b| b.size >= 256).cloned().collect();
    let failures = check_speedups(&gated, &measured, 0.30);
    for f in &failures {
        eprintln!("REGRESSION: {f}");
    }
    if failures.is_empty() {
        println!("\nbench regression gate OK (30% tolerance, sizes >= 256)");
        true
    } else {
        eprintln!(
            "\nbench regression gate FAILED: {} regression(s)",
            failures.len()
        );
        false
    }
}

/// The explosion bench workload: enough co-reachable loop states that
/// base-mode conversion builds thousands of meta states (§2.3's 3ⁿ
/// frontier), fixed so committed and re-measured runs compare like for
/// like.
const EXPLOSION_LOOPS: usize = 12;
/// Spill budget for the out-of-core pass — far below the workload's
/// resident footprint, so the arena and worklist must page through the
/// temp-file segment stores to finish.
const EXPLOSION_BUDGET: usize = 1 << 14;

/// One explosion measurement pass: base-mode subset construction over the
/// fan-out-loops workload, in RAM and again under the spill budget, with
/// the bit-identity invariant checked and the spill counters captured.
fn measure_explosion() -> msc_bench::regression::ExplosionMeasurement {
    use std::time::Instant;
    let g = fan_out_loops_graph(EXPLOSION_LOOPS);
    let mut opts = ConvertOptions::base();
    opts.max_meta_states = 1 << 21;
    opts.memory_budget = None;
    let t0 = Instant::now();
    let plain = convert(&g, &opts).expect("in-RAM conversion");
    let in_ram_secs = t0.elapsed().as_secs_f64();

    let registry = std::sync::Arc::new(msc_obs::Registry::new());
    let guard = msc_obs::install(registry.clone());
    opts.memory_budget = Some(EXPLOSION_BUDGET);
    let t0 = Instant::now();
    let spilled = convert(&g, &opts).expect("spilled conversion");
    let spilled_secs = t0.elapsed().as_secs_f64();
    drop(guard);
    let spill_bytes = registry
        .snapshot()
        .counters
        .iter()
        .find(|(name, _)| *name == "convert.spill_bytes")
        .map(|(_, v)| *v)
        .unwrap_or(0);

    msc_bench::regression::ExplosionMeasurement {
        meta_states: plain.len() as u64,
        in_ram_states_per_sec: plain.len() as f64 / in_ram_secs,
        spilled_states_per_sec: spilled.len() as f64 / spilled_secs,
        spill_bytes,
        spill_identical: plain.sets == spilled.sets
            && plain.succs == spilled.succs
            && plain.start == spilled.start,
    }
}

/// `claims -- explosion`: measure out-of-core subset construction on the
/// 3ⁿ frontier and write the committed `BENCH_explosion.json` baseline.
fn explosion() {
    println!("== EXPLOSION: out-of-core subset construction on the 3^n frontier ==");
    println!("   (writes the committed baseline BENCH_explosion.json)\n");
    let m = measure_explosion();
    println!(
        "fan_out_loops({EXPLOSION_LOOPS}), base mode: {} meta states",
        m.meta_states
    );
    println!("pass                  | states/sec");
    println!("in RAM                | {:10.0}", m.in_ram_states_per_sec);
    println!(
        "{:5}-byte budget     | {:10.0}",
        EXPLOSION_BUDGET, m.spilled_states_per_sec
    );
    println!(
        "spilled {} bytes through segment stores; bit-identical: {}",
        m.spill_bytes, m.spill_identical
    );
    assert!(m.spill_identical, "spilled automaton diverged");
    assert!(m.spill_bytes > 0, "budget never spilled");
    let json = format!(
        "{{\n  \"generated_by\": \"cargo run --release -p msc-bench --bin claims -- explosion\",\n  \
         \"workload\": \"fan_out_loops({EXPLOSION_LOOPS}), base mode\",\n  \
         \"meta_states\": {},\n  \"in_ram_states_per_sec\": {:.0},\n  \
         \"spill_budget_bytes\": {EXPLOSION_BUDGET},\n  \"spilled_states_per_sec\": {:.0},\n  \
         \"spill_bytes\": {},\n  \"spill_identical\": true\n}}\n",
        m.meta_states, m.in_ram_states_per_sec, m.spilled_states_per_sec, m.spill_bytes,
    );
    std::fs::write("BENCH_explosion.json", &json).expect("write BENCH_explosion.json");
    println!("\n   wrote BENCH_explosion.json");
    println!("   shape check: the spill budget is ~10x below the resident footprint,");
    println!("   yet conversion completes with the exact same automaton — the guard");
    println!("   is a memory budget now, not a cliff.\n");
}

/// `claims -- explosion --check`: re-measure the out-of-core conversion
/// and gate it against the committed `BENCH_explosion.json`.
fn explosion_check() -> bool {
    use msc_bench::regression::{check_explosion, parse_explosion_baseline};
    println!("== EXPLOSION --check: regression gate vs committed BENCH_explosion.json ==\n");
    let text = match std::fs::read_to_string("BENCH_explosion.json") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read BENCH_explosion.json: {e}");
            return false;
        }
    };
    let Some(baseline) = parse_explosion_baseline(&text) else {
        eprintln!("BENCH_explosion.json is missing expected keys");
        return false;
    };
    let m = measure_explosion();
    println!(
        "{} meta states (committed {}), in-RAM {:.0} states/s (committed {:.0}), \
         spilled {:.0} states/s (committed {:.0}), {} spill bytes, identical: {}",
        m.meta_states,
        baseline.meta_states,
        m.in_ram_states_per_sec,
        baseline.in_ram_states_per_sec,
        m.spilled_states_per_sec,
        baseline.spilled_states_per_sec,
        m.spill_bytes,
        m.spill_identical
    );
    write_remeasured(
        "explosion",
        &format!(
            "{{\n  \"generated_by\": \"claims -- explosion --check\",\n  \
             \"meta_states\": {},\n  \"in_ram_states_per_sec\": {:.0},\n  \
             \"spilled_states_per_sec\": {:.0},\n  \"spill_bytes\": {},\n  \
             \"spill_identical\": {}\n}}\n",
            m.meta_states,
            m.in_ram_states_per_sec,
            m.spilled_states_per_sec,
            m.spill_bytes,
            m.spill_identical
        ),
    );
    let failures = check_explosion(&baseline, &m, 0.50);
    for f in &failures {
        eprintln!("REGRESSION: {f}");
    }
    if failures.is_empty() {
        println!("\nexplosion regression gate OK (50% throughput tolerance)");
        true
    } else {
        eprintln!(
            "\nexplosion regression gate FAILED: {} regression(s)",
            failures.len()
        );
        false
    }
}

/// The regex bench workload: pattern and haystack are fixed so committed
/// and re-measured runs compare like for like.
const REGEX_PATTERN: &str = "a[bc]+x";

/// Deterministic pseudo-text haystack (LCG over a small alphabet).
fn regex_haystack(len: usize) -> Vec<u8> {
    const ALPHABET: &[u8] = b"abcxy abcz\n";
    let mut s = 0x243F_6A88_85A3_08D3u64;
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ALPHABET[((s >> 33) as usize) % ALPHABET.len()]
        })
        .collect()
}

/// One regex measurement pass: meta-automaton throughput at 1/2/8
/// threads over a 2 MiB haystack, the naive reference over a small slice
/// (it is algorithmically far slower), and the span-agreement invariant.
fn measure_regex() -> msc_bench::regression::RegexMeasurement {
    use msc_regex::Regex;
    let re = Regex::new(REGEX_PATTERN).expect("bench pattern compiles");
    let hay = regex_haystack(1 << 21);
    let shards: Vec<&[u8]> = hay.chunks(1 << 16).collect();
    let seq = re.find_all(&hay);
    let mut agree = true;
    let mbps = |bytes: usize, ns: f64| bytes as f64 * 1e3 / ns;
    let mut sharded_mbps = |threads: usize| {
        let ns = time_ns(|| {
            let found = re.find_sharded(&shards, threads);
            if found != seq {
                agree = false;
            }
            found.len()
        });
        mbps(hay.len(), ns)
    };
    let t1_mbps = sharded_mbps(1);
    let t2_mbps = sharded_mbps(2);
    let t8_mbps = sharded_mbps(8);
    // The naive engine memoizes per (node, position); a small slice is
    // plenty to measure its per-byte cost.
    let naive_slice = &hay[..1 << 12];
    let naive_ns = time_ns(|| re.naive_find_all(naive_slice).len());
    msc_bench::regression::RegexMeasurement {
        naive_mbps: mbps(naive_slice.len(), naive_ns),
        t1_mbps,
        t2_mbps,
        t8_mbps,
        matches: seq.len() as u64,
        spans_agree: agree,
    }
}

/// `claims -- regex`: measure the regex front-end and write the
/// committed `BENCH_regex.json` baseline.
fn regex() {
    println!("== REGEX: meta-automaton matcher vs naive reference ==");
    println!("   (writes the committed baseline BENCH_regex.json)\n");
    let m = measure_regex();
    println!(
        "pattern {REGEX_PATTERN:?} over 2 MiB, {} matches",
        m.matches
    );
    println!("engine        | MB/s");
    println!("naive (ref)   | {:8.2}", m.naive_mbps);
    println!("dfa 1 thread  | {:8.2}", m.t1_mbps);
    println!("dfa 2 threads | {:8.2}", m.t2_mbps);
    println!("dfa 8 threads | {:8.2}", m.t8_mbps);
    println!(
        "dfa-vs-naive speedup {:.1}x; t2/t1 {:.2}, t8/t1 {:.2}; spans agree: {}",
        m.dfa_vs_naive(),
        m.t2_mbps / m.t1_mbps,
        m.t8_mbps / m.t1_mbps,
        m.spans_agree
    );
    assert!(m.spans_agree, "sharded spans diverged from sequential");
    let json = format!(
        "{{\n  \"generated_by\": \"cargo run --release -p msc-bench --bin claims -- regex\",\n  \
         \"pattern\": \"{REGEX_PATTERN}\",\n  \"haystack_bytes\": {},\n  \
         \"matches\": {},\n  \"naive_mbps\": {:.2},\n  \"t1_mbps\": {:.2},\n  \
         \"t2_mbps\": {:.2},\n  \"t8_mbps\": {:.2},\n  \
         \"dfa_vs_naive_speedup\": {:.2},\n  \"t2_vs_t1\": {:.3},\n  \"t8_vs_t1\": {:.3},\n  \
         \"targets\": {{\n    \"t1_mbps_min\": 10.0,\n    \"t8_vs_t1_min\": 0.5\n  }}\n}}\n",
        1usize << 21,
        m.matches,
        m.naive_mbps,
        m.t1_mbps,
        m.t2_mbps,
        m.t8_mbps,
        m.dfa_vs_naive(),
        m.t2_mbps / m.t1_mbps,
        m.t8_mbps / m.t1_mbps,
    );
    std::fs::write("BENCH_regex.json", &json).expect("write BENCH_regex.json");
    println!("\n   wrote BENCH_regex.json");
    println!("   shape check: the compiled meta-automaton beats the naive reference by");
    println!("   an order of magnitude, and sharded throughput does not collapse.\n");
}

/// `claims -- regex --check`: re-measure the regex front-end and gate it
/// against the committed `BENCH_regex.json`.
fn regex_check() -> bool {
    use msc_bench::regression::{check_regex, parse_regex_baseline};
    println!("== REGEX --check: regression gate vs committed BENCH_regex.json ==\n");
    let text = match std::fs::read_to_string("BENCH_regex.json") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read BENCH_regex.json: {e}");
            return false;
        }
    };
    let Some(baseline) = parse_regex_baseline(&text) else {
        eprintln!("BENCH_regex.json is missing expected keys");
        return false;
    };
    let m = measure_regex();
    println!(
        "dfa-vs-naive {:.1}x (committed {:.1}x), t1 {:.0} MB/s (floor {:.0}), \
         t8/t1 {:.2} (floor {:.2}), spans agree: {}",
        m.dfa_vs_naive(),
        baseline.dfa_vs_naive_speedup,
        m.t1_mbps,
        baseline.t1_mbps_min,
        m.t8_mbps / m.t1_mbps,
        baseline.t8_vs_t1_min,
        m.spans_agree
    );
    write_remeasured(
        "regex",
        &format!(
            "{{\n  \"generated_by\": \"claims -- regex --check\",\n  \
             \"naive_mbps\": {:.2},\n  \"t1_mbps\": {:.2},\n  \"t2_mbps\": {:.2},\n  \
             \"t8_mbps\": {:.2},\n  \"dfa_vs_naive_speedup\": {:.2},\n  \
             \"matches\": {},\n  \"spans_agree\": {}\n}}\n",
            m.naive_mbps,
            m.t1_mbps,
            m.t2_mbps,
            m.t8_mbps,
            m.dfa_vs_naive(),
            m.matches,
            m.spans_agree
        ),
    );
    let failures = check_regex(&baseline, &m, 0.50);
    for f in &failures {
        eprintln!("REGRESSION: {f}");
    }
    if failures.is_empty() {
        println!("\nregex regression gate OK (50% speedup tolerance)");
        true
    } else {
        eprintln!(
            "\nregex regression gate FAILED: {} regression(s)",
            failures.len()
        );
        false
    }
}

/// `claims -- serve`: one load + coalesce-burst measurement against an
/// in-process daemon, printed next to the committed baseline. No gate —
/// use `--check` for that, `loadgen` to regenerate the baseline.
fn serve() {
    use msc_bench::loadbench::{measure_serve, BASELINE_CLIENTS};
    use msc_bench::regression::parse_serve_baseline;
    use std::time::Duration;

    println!("== SERVE: daemon load measurement vs committed BENCH_serve.json ==\n");
    let committed = std::fs::read_to_string("BENCH_serve.json")
        .ok()
        .and_then(|t| parse_serve_baseline(&t));
    let m = match measure_serve(BASELINE_CLIENTS, Duration::from_millis(1_000)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("serve measurement failed: {e}");
            return;
        }
    };
    println!("                | measured | committed");
    let fmt = |v: Option<f64>| {
        v.map(|v| format!("{v:9.0}"))
            .unwrap_or_else(|| "      (-)".into())
    };
    println!(
        "throughput rps  | {:8.0} | {}",
        m.throughput_rps,
        fmt(committed.as_ref().map(|b| b.throughput_rps))
    );
    println!(
        "p99 latency ms  | {:8.3} | {}",
        m.p99_ms,
        committed
            .as_ref()
            .map(|b| format!("{:9.3}", b.p99_ms))
            .unwrap_or_else(|| "      (-)".into())
    );
    println!(
        "burst compiles  | {:8} | {}",
        m.burst_compilations,
        fmt(committed.as_ref().map(|b| b.burst_compilations as f64))
    );
    println!(
        "errors          | {:8} | {}",
        m.errors,
        fmt(committed.as_ref().map(|_| 0.0))
    );
    println!("\n   shape check: one compilation per coalesced burst, zero errors;");
    println!(
        "   regenerate the committed file with `cargo run --release -p msc-bench --bin loadgen`.\n"
    );
}

/// `claims -- serve --check`: re-measure the daemon under the baseline
/// workload and gate it against the committed `BENCH_serve.json`.
/// Returns false (→ nonzero exit) on any invariant break, a p99 over the
/// absolute ceiling, or throughput >50% below the committed value.
fn serve_check() -> bool {
    use msc_bench::loadbench::{measure_serve, BASELINE_CLIENTS};
    use msc_bench::regression::{check_serve, parse_serve_baseline, ServeMeasurement};
    use std::time::Duration;

    println!("== SERVE --check: regression gate vs committed BENCH_serve.json ==\n");
    let text = match std::fs::read_to_string("BENCH_serve.json") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read BENCH_serve.json: {e}");
            return false;
        }
    };
    let Some(baseline) = parse_serve_baseline(&text) else {
        eprintln!("BENCH_serve.json is missing expected keys");
        return false;
    };
    let run = match measure_serve(BASELINE_CLIENTS, Duration::from_millis(1_000)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve measurement failed: {e}");
            return false;
        }
    };
    let measured = ServeMeasurement {
        throughput_rps: run.throughput_rps,
        p99_ms: run.p99_ms,
        errors: run.errors,
        burst_compilations: run.burst_compilations,
    };
    println!(
        "throughput {:.0} req/s (committed {:.0}), p99 {:.3}ms (ceiling {:.0}ms), \
         burst {} compilation(s), {} error(s)",
        measured.throughput_rps,
        baseline.throughput_rps,
        measured.p99_ms,
        baseline.p99_ms_max,
        measured.burst_compilations,
        measured.errors
    );
    write_remeasured(
        "serve",
        &format!(
            "{{\n  \"generated_by\": \"claims -- serve --check\",\n  \
             \"clients\": {BASELINE_CLIENTS},\n  \"requests\": {},\n  \"errors\": {},\n  \
             \"throughput_rps\": {:.0},\n  \"p99_ms\": {:.3},\n  \
             \"burst_compilations\": {}\n}}\n",
            run.requests,
            run.errors,
            measured.throughput_rps,
            measured.p99_ms,
            measured.burst_compilations
        ),
    );

    let failures = check_serve(&baseline, &measured, 0.50);
    for f in &failures {
        eprintln!("REGRESSION: {f}");
    }
    if failures.is_empty() {
        println!("\nserve regression gate OK (50% throughput tolerance)");
        true
    } else {
        eprintln!(
            "\nserve regression gate FAILED: {} regression(s)",
            failures.len()
        );
        false
    }
}

fn cluster_json(m: &msc_bench::cluster::ClusterSummary, generated_by: &str) -> String {
    format!(
        "{{\n  \"generated_by\": \"{generated_by}\",\n  \"jobs\": {},\n  \"peer_hits\": {},\n  \
         \"node_b_compilations\": {},\n  \"peer_hit_mean_ms\": {:.2},\n  \
         \"peer_hit_max_ms\": {:.2},\n  \"single_node_cold_ms\": {:.2},\n  \
         \"dead_peer_cold_ms\": {:.2},\n  \"verify_fails\": {},\n  \"errors\": {},\n  \
         \"targets\": {{\n    \"peer_hit_ms_max\": 250.0,\n    \
         \"dead_peer_overhead_ms_max\": 4000.0\n  }}\n}}\n",
        m.jobs,
        m.peer_hits,
        m.node_b_compilations,
        m.peer_hit_mean_ms,
        m.peer_hit_max_ms,
        m.single_node_cold_ms,
        m.dead_peer_cold_ms,
        m.verify_fails,
        m.errors
    )
}

fn print_cluster(m: &msc_bench::cluster::ClusterSummary) {
    println!(
        "\n   node B: {}/{} jobs served by its peer, {} local compilation(s)",
        m.peer_hits, m.jobs, m.node_b_compilations
    );
    println!(
        "   peer hit {:.2}ms mean / {:.2}ms max vs {:.2}ms single-node cold compile",
        m.peer_hit_mean_ms, m.peer_hit_max_ms, m.single_node_cold_ms
    );
    println!(
        "   dead fleet: cold compile {:.2}ms; corrupt peer: {} verify failure(s); {} error(s)",
        m.dead_peer_cold_ms, m.verify_fails, m.errors
    );
}

/// `claims -- cluster`: boot a small daemon fleet, measure node B's
/// compiles-avoided and peer-hit latency, and write the committed
/// `BENCH_cluster.json` baseline.
fn cluster() {
    println!("== CLUSTER: peer artifact sharing across daemons ==\n");
    println!("   (writes the committed baseline BENCH_cluster.json)");
    let m = match msc_bench::cluster::measure_cluster() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cluster measurement failed: {e}");
            return;
        }
    };
    print_cluster(&m);
    std::fs::write("BENCH_cluster.json", cluster_json(&m, "claims -- cluster"))
        .expect("write BENCH_cluster.json");
    println!("\n   wrote BENCH_cluster.json");
    println!("   shape check: every node-B job is a peer hit, zero local compiles,");
    println!("   and the dead-fleet compile stays within one peer deadline of single-node\n");
}

/// `claims -- cluster --check`: re-run the fleet measurement and gate it
/// against the committed `BENCH_cluster.json`. Returns false (→ nonzero
/// exit) on any invariant break or latency-bound violation.
fn cluster_check() -> bool {
    use msc_bench::regression::{check_cluster, parse_cluster_baseline, ClusterMeasurement};

    println!("== CLUSTER --check: regression gate vs committed BENCH_cluster.json ==\n");
    let text = match std::fs::read_to_string("BENCH_cluster.json") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read BENCH_cluster.json: {e}");
            return false;
        }
    };
    let Some(baseline) = parse_cluster_baseline(&text) else {
        eprintln!("BENCH_cluster.json is missing expected keys");
        return false;
    };
    let run = match msc_bench::cluster::measure_cluster() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cluster measurement failed: {e}");
            return false;
        }
    };
    print_cluster(&run);
    write_remeasured("cluster", &cluster_json(&run, "claims -- cluster --check"));
    let measured = ClusterMeasurement {
        jobs: run.jobs,
        peer_hits: run.peer_hits,
        node_b_compilations: run.node_b_compilations,
        peer_hit_mean_ms: run.peer_hit_mean_ms,
        single_node_cold_ms: run.single_node_cold_ms,
        dead_peer_cold_ms: run.dead_peer_cold_ms,
        verify_fails: run.verify_fails,
        errors: run.errors,
    };
    let failures = check_cluster(&baseline, &measured);
    for f in &failures {
        eprintln!("REGRESSION: {f}");
    }
    if failures.is_empty() {
        println!("\ncluster regression gate OK");
        true
    } else {
        eprintln!(
            "\ncluster regression gate FAILED: {} regression(s)",
            failures.len()
        );
        false
    }
}

/// The profile matrix the sweep gate runs: the committed `profiles/`
/// directory when present (so a doctored committed profile fails the
/// `--check` gate, not just tier-1), else the bundled matrix — tier-1
/// pins the two bit-equal either way.
fn sweep_profiles() -> Vec<msc_simd::MachineProfile> {
    let dir = std::path::Path::new("profiles");
    if dir.is_dir() {
        match msc_simd::MachineProfile::load_dir(dir) {
            Ok(p) if !p.is_empty() => return p,
            Ok(_) => {}
            Err(e) => eprintln!("note: profiles/ unreadable ({e}); using bundled matrix"),
        }
    }
    msc_simd::MachineProfile::bundled()
}

fn sweep_json(generated_by: &str, rows: &[msc_bench::sweep::SweepRow], hard: u64) -> String {
    let mut profiles = String::new();
    for (i, r) in rows.iter().enumerate() {
        profiles.push_str(&format!(
            "    {{ \"name\": \"{}\", \"pe_count\": {}, \"cycles\": {}, \
             \"utilization\": {:.4}, \"interp_cycles\": {}, \"speedup\": {:.4} }}{}\n",
            r.name,
            r.pe_count,
            r.cycles,
            r.utilization,
            r.interp_cycles,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    format!(
        "{{\n  \"generated_by\": \"{generated_by}\",\n  \
         \"workload\": \"branchy_source(3) == examples/dispatch_heavy.mimdc, base mode\",\n  \
         \"hard_coded_cycles\": {hard},\n  \"profiles\": [\n{profiles}  ]\n}}\n"
    )
}

fn print_sweep_rows(rows: &[msc_bench::sweep::SweepRow]) {
    println!("profile        | PEs | cycles | util% | interp | speedup");
    for r in rows {
        println!(
            "{:14} | {:3} | {:6} | {:5.1} | {:6} | {:6.2}x",
            r.name,
            r.pe_count,
            r.cycles,
            r.utilization * 100.0,
            r.interp_cycles,
            r.speedup
        );
    }
}

fn sweep() {
    use msc_bench::sweep::{dispatch_heavy_source, hard_coded_cycles, measure_sweep};
    println!("== SWEEP: the machine-profile landscape ==");
    println!("   One hard-coded cost model gives one point per claim; the profile");
    println!("   matrix turns §2.4 and §5 into a landscape: which machines does MSC");
    println!("   win on, and by how much? (writes the committed BENCH_sweep.json)\n");
    let src = dispatch_heavy_source();
    let rows = measure_sweep(&src, &msc_simd::MachineProfile::bundled());
    let hard = hard_coded_cycles(&src, 16);
    println!("dispatch-heavy workload (branchy_source(3), base mode):");
    print_sweep_rows(&rows);
    println!("hard-coded default path: {hard} cycles (paper-default must equal it)\n");

    // The §2.4 landscape: time splitting's utilization rescue, per profile.
    println!("§2.4 per profile — imbalanced_source(5, 100), utilization without/with");
    println!("time splitting:");
    println!("profile        | util (no split) | util (split)");
    for p in msc_simd::MachineProfile::bundled() {
        let src = imbalanced_source(5, 100);
        let run = |ts: bool| {
            let mut pipe = Pipeline::new(src.as_str())
                .mode(ConvertMode::Base)
                .costs(p.costs.clone());
            if ts {
                pipe = pipe.time_split(TimeSplitOptions::default());
            }
            pipe.build()
                .unwrap()
                .run_with(p.machine_config())
                .unwrap()
                .metrics
                .utilization()
        };
        println!(
            "{:14} | {:14.1}% | {:11.1}%",
            p.name,
            run(false) * 100.0,
            run(true) * 100.0
        );
    }
    let json = sweep_json(
        "cargo run --release -p msc-bench --bin claims -- sweep",
        &rows,
        hard,
    );
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    println!("\n   wrote BENCH_sweep.json");
    println!("   shape check: cheap-dispatch ≤ paper-default ≤ slow-globalor on a");
    println!("   dispatch-heavy workload; the default profile is bit-identical to the");
    println!("   hard-coded model, so every other committed BENCH_*.json stays valid.\n");
}

/// `claims -- sweep --check`: re-measure the profile matrix and gate it
/// against the committed `BENCH_sweep.json` (exact cycles — the simulator
/// is deterministic — plus the profile ordering invariants and the
/// paper-default ≡ hard-coded bit-identity).
fn sweep_check() -> bool {
    use msc_bench::regression::{check_sweep, parse_sweep_baseline};
    use msc_bench::sweep::{dispatch_heavy_source, hard_coded_cycles, measure_sweep};
    println!("== SWEEP --check: regression gate vs committed BENCH_sweep.json ==\n");
    let text = match std::fs::read_to_string("BENCH_sweep.json") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read BENCH_sweep.json: {e}");
            return false;
        }
    };
    let Some(baseline) = parse_sweep_baseline(&text) else {
        eprintln!("BENCH_sweep.json is missing expected keys");
        return false;
    };
    let src = dispatch_heavy_source();
    let rows = measure_sweep(&src, &sweep_profiles());
    let hard = hard_coded_cycles(&src, 16);
    print_sweep_rows(&rows);
    println!("hard-coded default path: {hard} cycles");
    write_remeasured("sweep", &sweep_json("claims -- sweep --check", &rows, hard));
    let failures = check_sweep(&baseline, &rows, hard);
    for f in &failures {
        eprintln!("REGRESSION: {f}");
    }
    if failures.is_empty() {
        println!("\nsweep regression gate OK (exact-cycle + ordering invariants)");
        true
    } else {
        eprintln!(
            "\nsweep regression gate FAILED: {} regression(s)",
            failures.len()
        );
        false
    }
}

fn main() {
    let mut which: Vec<String> = std::env::args().skip(1).collect();
    let check = which.iter().any(|w| w == "--check");
    which.retain(|w| w != "--check");
    if check {
        // --check gates the named claims (default: every claim that has
        // a committed baseline).
        if which.is_empty() {
            which = vec![
                "setops".into(),
                "serve".into(),
                "regex".into(),
                "explosion".into(),
                "sweep".into(),
            ];
        }
        let mut ok = true;
        for w in &which {
            ok &= match w.as_str() {
                "setops" => setops_check(),
                "serve" => serve_check(),
                "regex" => regex_check(),
                "explosion" => explosion_check(),
                "sweep" => sweep_check(),
                // Not in the default list: needs the mscc binary built
                // first (subprocess daemons) — `ci.sh cluster-smoke`
                // runs it as its own stage.
                "cluster" => cluster_check(),
                other => {
                    eprintln!(
                        "no --check gate for claim {other:?} \
                         (have: setops, serve, regex, explosion, sweep, cluster)"
                    );
                    false
                }
            };
        }
        if !ok {
            std::process::exit(1);
        }
        return;
    }
    let all = which.is_empty();
    let want = |k: &str| all || which.iter().any(|w| w == k);
    let claims: [(&str, fn()); 20] = [
        ("c1", c1),
        ("c2", c2),
        ("c3", c3),
        ("c4", c4),
        ("c5", c5),
        ("c6", c6),
        ("c7", c7),
        ("c8", c8),
        ("c9", c9),
        ("c10", c10),
        ("a1", a1),
        ("a2", a2),
        ("a3", a3),
        ("a4", a4),
        ("setops", setops),
        ("serve", serve),
        ("regex", regex),
        ("explosion", explosion),
        ("sweep", sweep),
        ("cluster", cluster),
    ];
    for (k, f) in claims {
        if want(k) {
            f();
        }
    }
}
