//! Load generator for the msc-serve daemon.
//!
//! Hammers a daemon over real sockets with a mixed workload (~90%
//! cache-hit compiles from a small source pool, ~10% never-seen-before
//! sources) and reports throughput and latency percentiles, then fires
//! a burst of identical cold requests to verify that coalescing +
//! caching perform **exactly one** compilation for the whole burst.
//! Results go to `BENCH_serve.json` (committed as the baseline).
//!
//! ```text
//! cargo run --release -p msc-bench --bin loadgen               # in-process daemon
//! cargo run --release -p msc-bench --bin loadgen -- --addr 127.0.0.1:7643
//! cargo run --release -p msc-bench --bin loadgen -- --smoke --addr HOST:PORT
//! ```
//!
//! `--smoke` is the CI mode: wait for `/healthz`, touch every endpoint
//! once, exit 0/1. No load, no output file.

use msc_obs::json::Json;
use msc_serve::client::Client;
use msc_serve::{ServeOptions, Server, ServerHandle};
use std::time::{Duration, Instant};

const HIT_POOL: [&str; 4] = [
    "main() { poly int x; x = pe_id() * 2 + 1; return(x); }",
    "main() { poly int x, acc = 0; x = pe_id() % 4; while (x > 0) { acc += x; x -= 1; } return(acc); }",
    "main() { poly int v; v = 3; if (pe_id() % 2) { v = v + 1; } else { v = v + 2; } return(v); }",
    "main() { mono int total = 0; poly int x; x = pe_id(); total += x; return(x + total); }",
];

fn miss_source(salt: u64) -> String {
    format!(
        "main() {{ poly int x, acc = {salt}; x = pe_id() % 3; \
         while (x > 0) {{ acc += x; x -= 1; }} return(acc); }}"
    )
}

fn compile_body(source: &str) -> String {
    Json::obj(vec![("source", Json::from(source))]).render()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn wait_healthy(addr: &str, budget: Duration) -> bool {
    let deadline = Instant::now() + budget;
    while Instant::now() < deadline {
        if let Ok(mut c) = Client::connect_with_timeout(addr, Duration::from_secs(2)) {
            if c.get("/healthz").map(|r| r.status == 200).unwrap_or(false) {
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    false
}

fn counter(addr: &str, name: &str) -> u64 {
    let mut c = Client::connect(addr).expect("connect for /metrics");
    let v = c
        .get("/metrics")
        .expect("/metrics")
        .json()
        .expect("metrics JSON");
    v.get("counters")
        .and_then(|cs| cs.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn smoke(addr: &str) -> bool {
    let mut ok = true;
    let mut check = |label: &str, pass: bool| {
        println!("  {} {label}", if pass { "ok " } else { "FAIL" });
        ok &= pass;
    };
    let mut c = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            println!("  FAIL connect: {e}");
            return false;
        }
    };
    check(
        "GET /healthz",
        c.get("/healthz").map(|r| r.status == 200).unwrap_or(false),
    );
    let body = compile_body(HIT_POOL[0]);
    check(
        "POST /compile",
        c.request("POST", "/compile", Some(&body))
            .map(|r| r.status == 200)
            .unwrap_or(false),
    );
    let run_body = Json::obj(vec![
        ("source", Json::from(HIT_POOL[0])),
        ("pes", Json::from(4u64)),
    ])
    .render();
    let run_ok = c
        .request("POST", "/run", Some(&run_body))
        .ok()
        .filter(|r| r.status == 200)
        .and_then(|r| r.json())
        .and_then(|v| v.get("results").and_then(|a| a.as_arr().map(|s| s.len())))
        == Some(4);
    check("POST /run returns 4 PE results", run_ok);
    let batch_body = format!(
        "{{\"jobs\":[{},{}]}}",
        compile_body(HIT_POOL[1]),
        compile_body(HIT_POOL[2])
    );
    check(
        "POST /batch",
        c.request("POST", "/batch", Some(&batch_body))
            .map(|r| r.status == 200)
            .unwrap_or(false),
    );
    check(
        "GET /metrics shows serve.requests",
        counter(addr, "serve.requests") >= 1,
    );
    check(
        "bad request answered with 4xx",
        c.request("POST", "/compile", Some("not json"))
            .map(|r| (400..500).contains(&r.status))
            .unwrap_or(false),
    );
    ok
}

/// The coalesce burst: `n` concurrent identical cold compiles must cost
/// exactly one compilation (one `cache.miss`), the rest splitting into
/// `engine.coalesced` + `cache.hit`.
fn coalesce_burst(addr: &str, n: usize) -> (u64, u64) {
    let miss_before = counter(addr, "cache.miss");
    let source = miss_source(999_999_983);
    let body = compile_body(&source);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let body = &body;
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("burst connect");
                    let r = c
                        .request("POST", "/compile", Some(body))
                        .expect("burst request");
                    assert_eq!(r.status, 200, "burst request failed: {}", r.body);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("burst client");
        }
    });
    let compilations = counter(addr, "cache.miss") - miss_before;
    let coalesced = counter(addr, "engine.coalesced");
    (compilations, coalesced)
}

struct LoadReport {
    requests: u64,
    errors: u64,
    elapsed: Duration,
    latencies: Vec<u64>,
}

fn load_phase(addr: &str, clients: usize, duration: Duration) -> LoadReport {
    let t0 = Instant::now();
    let per_client: Vec<(u64, u64, Vec<u64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("client connect");
                    let (mut n, mut errors) = (0u64, 0u64);
                    let mut lat = Vec::with_capacity(4096);
                    let deadline = Instant::now() + duration;
                    while Instant::now() < deadline {
                        // ~10% of requests are never-seen sources (cache
                        // misses); the rest rotate through the hit pool.
                        let body = if n % 10 == 9 {
                            compile_body(&miss_source(i as u64 * 1_000_000 + n))
                        } else {
                            compile_body(HIT_POOL[(n % 4) as usize])
                        };
                        let t = Instant::now();
                        match c.request("POST", "/compile", Some(&body)) {
                            Ok(r) if r.status == 200 => lat.push(t.elapsed().as_nanos() as u64),
                            Ok(_) | Err(_) => {
                                errors += 1;
                                // The connection may be gone after an error.
                                c = Client::connect(addr).expect("client reconnect");
                            }
                        }
                        n += 1;
                    }
                    (n, errors, lat)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let elapsed = t0.elapsed();
    let mut latencies = Vec::new();
    let (mut requests, mut errors) = (0, 0);
    for (n, e, l) in per_client {
        requests += n;
        errors += e;
        latencies.extend(l);
    }
    latencies.sort_unstable();
    LoadReport {
        requests,
        errors,
        elapsed,
        latencies,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut clients = 8usize;
    let mut duration_ms = 2_000u64;
    let mut smoke_mode = false;
    let mut out = "BENCH_serve.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(it.next().expect("--addr needs HOST:PORT").clone()),
            "--clients" => {
                clients = it
                    .next()
                    .expect("--clients N")
                    .parse()
                    .expect("client count")
            }
            "--duration-ms" => {
                duration_ms = it
                    .next()
                    .expect("--duration-ms N")
                    .parse()
                    .expect("duration")
            }
            "--smoke" => smoke_mode = true,
            "--out" => out = it.next().expect("--out FILE").clone(),
            other => panic!("unknown argument {other:?}"),
        }
    }

    // No --addr: spin up an in-process daemon on an ephemeral port. One
    // worker per client plus burst headroom: a keep-alive connection
    // holds its worker, so fewer workers than clients starves the rest.
    let mut handle: Option<ServerHandle> = None;
    let addr = addr.unwrap_or_else(|| {
        let h = Server::start(ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            queue_depth: 256,
            workers: clients + 17,
            ..ServeOptions::default()
        })
        .expect("start in-process daemon");
        let a = h.local_addr().to_string();
        handle = Some(h);
        a
    });

    if !wait_healthy(&addr, Duration::from_secs(10)) {
        eprintln!("loadgen: daemon at {addr} never became healthy");
        std::process::exit(1);
    }

    if smoke_mode {
        println!("== loadgen --smoke against {addr} ==");
        let ok = smoke(&addr);
        if let Some(h) = handle {
            h.shutdown();
        }
        println!("loadgen: smoke {}", if ok { "OK" } else { "FAILED" });
        std::process::exit(if ok { 0 } else { 1 });
    }

    println!("== loadgen: {clients} clients x {duration_ms}ms against {addr} ==");
    // Warm the cache so the measured phase is the advertised ~90% hit mix.
    {
        let mut c = Client::connect(&addr).expect("warmup connect");
        for src in HIT_POOL {
            let r = c
                .request("POST", "/compile", Some(&compile_body(src)))
                .expect("warmup compile");
            assert_eq!(r.status, 200, "warmup failed: {}", r.body);
        }
    }

    let report = load_phase(&addr, clients, Duration::from_millis(duration_ms));
    let throughput = report.requests as f64 / report.elapsed.as_secs_f64();
    let (p50, p90, p99) = (
        percentile(&report.latencies, 50.0),
        percentile(&report.latencies, 90.0),
        percentile(&report.latencies, 99.0),
    );
    println!(
        "requests: {} ({} errors) in {:.2}s -> {:.0} req/s",
        report.requests,
        report.errors,
        report.elapsed.as_secs_f64(),
        throughput
    );
    println!(
        "latency: p50 {:.3}ms  p90 {:.3}ms  p99 {:.3}ms  max {:.3}ms",
        p50 as f64 / 1e6,
        p90 as f64 / 1e6,
        p99 as f64 / 1e6,
        report.latencies.last().copied().unwrap_or(0) as f64 / 1e6
    );

    const BURST: usize = 16;
    let (compilations, coalesced) = coalesce_burst(&addr, BURST);
    println!(
        "coalesce burst: {BURST} identical cold requests -> {compilations} compilation(s), \
         engine.coalesced total {coalesced}"
    );
    let shed = counter(&addr, "serve.shed");
    if let Some(h) = handle {
        h.shutdown();
    }

    let json = Json::obj(vec![
        (
            "generated_by",
            Json::from("cargo run --release -p msc-bench --bin loadgen"),
        ),
        (
            "workload",
            Json::from("POST /compile, ~90% warm-cache pool of 4 sources, ~10% unique sources"),
        ),
        ("clients", Json::from(clients)),
        ("duration_ms", Json::from(duration_ms)),
        ("requests", Json::from(report.requests)),
        ("errors", Json::from(report.errors)),
        ("shed", Json::from(shed)),
        ("throughput_rps", Json::from(throughput)),
        (
            "latency_ms",
            Json::obj(vec![
                ("p50", Json::from(p50 as f64 / 1e6)),
                ("p90", Json::from(p90 as f64 / 1e6)),
                ("p99", Json::from(p99 as f64 / 1e6)),
                (
                    "max",
                    Json::from(report.latencies.last().copied().unwrap_or(0) as f64 / 1e6),
                ),
            ]),
        ),
        (
            "coalesce_burst",
            Json::obj(vec![
                ("requests", Json::from(BURST)),
                ("compilations", Json::from(compilations)),
            ]),
        ),
        (
            "targets",
            Json::obj(vec![
                ("throughput_rps_min", Json::from(5_000u64)),
                ("p99_ms_max", Json::from(50u64)),
                ("burst_compilations", Json::from(1u64)),
            ]),
        ),
    ]);
    std::fs::write(&out, json.render() + "\n").expect("write BENCH_serve.json");
    println!("wrote {out}");

    let mut failed = false;
    if compilations != 1 {
        eprintln!(
            "FAIL: burst of {BURST} identical requests cost {compilations} compilations (want 1)"
        );
        failed = true;
    }
    if report.errors > 0 {
        eprintln!("FAIL: {} request errors under load", report.errors);
        failed = true;
    }
    if throughput < 5_000.0 {
        eprintln!("WARN: throughput {throughput:.0} req/s below the 5k target on this machine");
    }
    if p99 as f64 / 1e6 > 50.0 {
        eprintln!(
            "WARN: p99 {:.3}ms above the 50ms target on this machine",
            p99 as f64 / 1e6
        );
    }
    std::process::exit(if failed { 1 } else { 0 });
}
