//! Load generator for the msc-serve daemon.
//!
//! Hammers a daemon over real sockets with a mixed workload (~90%
//! cache-hit compiles from a small source pool, ~10% never-seen-before
//! sources) and reports throughput and latency percentiles, then fires
//! a burst of identical cold requests to verify that coalescing +
//! caching perform **exactly one** compilation for the whole burst.
//! Results go to `BENCH_serve.json` (committed as the baseline, gated
//! in CI by `claims -- serve --check`).
//!
//! ```text
//! cargo run --release -p msc-bench --bin loadgen               # in-process daemon
//! cargo run --release -p msc-bench --bin loadgen -- --addr 127.0.0.1:7643
//! cargo run --release -p msc-bench --bin loadgen -- --smoke --addr HOST:PORT
//! ```
//!
//! `--smoke` is the CI mode: wait for `/healthz`, touch every endpoint
//! once, exit 0/1. No load, no output file.
//!
//! The workload mix, smoke checks, and measurement phases live in
//! [`msc_bench::loadbench`], shared with the `claims` regression gate.

use msc_bench::loadbench::{
    coalesce_burst, compile_body, counter, load_phase, percentile, smoke, wait_healthy,
    BASELINE_CLIENTS, HIT_POOL,
};
use msc_obs::json::Json;
use msc_serve::client::Client;
use msc_serve::{ServeOptions, Server, ServerHandle};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut clients = BASELINE_CLIENTS;
    let mut duration_ms = 2_000u64;
    let mut smoke_mode = false;
    let mut out = "BENCH_serve.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(it.next().expect("--addr needs HOST:PORT").clone()),
            "--clients" => {
                clients = it
                    .next()
                    .expect("--clients N")
                    .parse()
                    .expect("client count")
            }
            "--duration-ms" => {
                duration_ms = it
                    .next()
                    .expect("--duration-ms N")
                    .parse()
                    .expect("duration")
            }
            "--smoke" => smoke_mode = true,
            "--out" => out = it.next().expect("--out FILE").clone(),
            other => panic!("unknown argument {other:?}"),
        }
    }

    // No --addr: spin up an in-process daemon on an ephemeral port. The
    // reactor multiplexes all connections on one thread, so the worker
    // pool only needs compute parallelism (0 = one per core); the
    // blocking fallback parks a worker per keep-alive connection and
    // needs `workers >= clients` plus burst headroom.
    let workers = if msc_serve::reactor_available() {
        0
    } else {
        clients + 17
    };
    let mut handle: Option<ServerHandle> = None;
    let addr = addr.unwrap_or_else(|| {
        let h = Server::start(ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            queue_depth: 256,
            workers,
            ..ServeOptions::default()
        })
        .expect("start in-process daemon");
        let a = h.local_addr().to_string();
        handle = Some(h);
        a
    });

    if !wait_healthy(&addr, Duration::from_secs(10)) {
        eprintln!("loadgen: daemon at {addr} never became healthy");
        std::process::exit(1);
    }

    if smoke_mode {
        println!("== loadgen --smoke against {addr} ==");
        let ok = smoke(&addr);
        if let Some(h) = handle {
            h.shutdown();
        }
        println!("loadgen: smoke {}", if ok { "OK" } else { "FAILED" });
        std::process::exit(if ok { 0 } else { 1 });
    }

    println!("== loadgen: {clients} clients x {duration_ms}ms against {addr} ==");
    // Warm the cache so the measured phase is the advertised ~90% hit mix.
    {
        let mut c = Client::connect(&addr).expect("warmup connect");
        for src in HIT_POOL {
            let r = c
                .request("POST", "/compile", Some(&compile_body(src)))
                .expect("warmup compile");
            assert_eq!(r.status, 200, "warmup failed: {}", r.body);
        }
    }

    let report = load_phase(&addr, clients, Duration::from_millis(duration_ms));
    let throughput = report.throughput_rps();
    let (p50, p90, p99) = (
        percentile(&report.latencies, 50.0),
        percentile(&report.latencies, 90.0),
        percentile(&report.latencies, 99.0),
    );
    println!(
        "requests: {} ({} errors) in {:.2}s -> {:.0} req/s",
        report.requests,
        report.errors,
        report.elapsed.as_secs_f64(),
        throughput
    );
    println!(
        "latency: p50 {:.3}ms  p90 {:.3}ms  p99 {:.3}ms  max {:.3}ms",
        p50 as f64 / 1e6,
        p90 as f64 / 1e6,
        p99 as f64 / 1e6,
        report.latencies.last().copied().unwrap_or(0) as f64 / 1e6
    );

    const BURST: usize = 16;
    let (compilations, coalesced) = coalesce_burst(&addr, BURST);
    println!(
        "coalesce burst: {BURST} identical cold requests -> {compilations} compilation(s), \
         engine.coalesced total {coalesced}"
    );
    let shed = counter(&addr, "serve.shed");
    if let Some(h) = handle {
        h.shutdown();
    }

    let json = Json::obj(vec![
        (
            "generated_by",
            Json::from("cargo run --release -p msc-bench --bin loadgen"),
        ),
        (
            "workload",
            Json::from("POST /compile, ~90% warm-cache pool of 4 sources, ~10% unique sources"),
        ),
        ("clients", Json::from(clients)),
        ("duration_ms", Json::from(duration_ms)),
        ("requests", Json::from(report.requests)),
        ("errors", Json::from(report.errors)),
        ("shed", Json::from(shed)),
        ("throughput_rps", Json::from(throughput)),
        (
            "latency_ms",
            Json::obj(vec![
                ("p50", Json::from(p50 as f64 / 1e6)),
                ("p90", Json::from(p90 as f64 / 1e6)),
                ("p99", Json::from(p99 as f64 / 1e6)),
                (
                    "max",
                    Json::from(report.latencies.last().copied().unwrap_or(0) as f64 / 1e6),
                ),
            ]),
        ),
        (
            "coalesce_burst",
            Json::obj(vec![
                ("requests", Json::from(BURST)),
                ("compilations", Json::from(compilations)),
            ]),
        ),
        (
            "targets",
            Json::obj(vec![
                ("throughput_rps_min", Json::from(5_000u64)),
                ("p99_ms_max", Json::from(50u64)),
                ("burst_compilations", Json::from(1u64)),
            ]),
        ),
    ]);
    std::fs::write(&out, json.render() + "\n").expect("write BENCH_serve.json");
    println!("wrote {out}");

    let mut failed = false;
    if compilations != 1 {
        eprintln!(
            "FAIL: burst of {BURST} identical requests cost {compilations} compilations (want 1)"
        );
        failed = true;
    }
    if report.errors > 0 {
        eprintln!("FAIL: {} request errors under load", report.errors);
        failed = true;
    }
    if throughput < 5_000.0 {
        eprintln!("WARN: throughput {throughput:.0} req/s below the 5k target on this machine");
    }
    if p99 as f64 / 1e6 > 50.0 {
        eprintln!(
            "WARN: p99 {:.3}ms above the 50ms target on this machine",
            p99 as f64 / 1e6
        );
    }
    std::process::exit(if failed { 1 } else { 0 });
}
