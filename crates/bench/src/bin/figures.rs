//! Regenerate every figure and listing of the paper.
//!
//! ```text
//! cargo run -p msc-bench --bin figures            # all of them
//! cargo run -p msc-bench --bin figures -- fig2    # one artifact
//! ```
//!
//! Artifacts: `fig1` (MIMD state graph), `fig2` (base meta-state graph),
//! `fig34` (time splitting before/after), `fig5` (compressed graph),
//! `fig6` (barrier graph), `listing5` (generated MPL-like SIMD code).

use metastate::{ConvertMode, Pipeline, TimeSplitOptions};
use msc_ir::CostModel;

const LISTING4: &str = r#"
    main() {
        poly int x;
        if (x) { do { x = 1; } while (x); }
        else   { do { x = 2; } while (x); }
        return(x);
    }
"#;

const LISTING3: &str = r#"
    main() {
        poly int x;
        if (x) { do { x = 1; } while (x); }
        else   { do { x = 2; } while (x); }
        wait; /* barrier sync. of all threads */
        return(x);
    }
"#;

fn fig1() {
    println!("== Figure 1: MIMD state graph for Listing 1 ==\n");
    let p = msc_lang::compile(LISTING4).unwrap();
    println!("{}", msc_ir::render::text(&p.graph, &CostModel::default()));
    println!("(paper ids 0,2,6,9 = our ids 0,1,2,3; structure identical)\n");
    println!(
        "--- graphviz ---\n{}",
        msc_ir::render::dot(&p.graph, &CostModel::default())
    );
}

fn fig2() {
    println!("== Figure 2: meta-state graph (base conversion) ==\n");
    let built = Pipeline::new(LISTING4)
        .mode(ConvertMode::Base)
        .build()
        .unwrap();
    println!("{}", built.automaton_text());
    println!("meta states: {} (paper: 8)\n", built.automaton.len());
    println!("--- graphviz ---\n{}", built.automaton.dot());
}

fn fig34() {
    println!("== Figures 3–4: MIMD state time splitting ==\n");
    let src = msc_bench::workloads::imbalanced_source(5, 100);
    let costs = CostModel::default();

    let before = Pipeline::new(src.as_str())
        .mode(ConvertMode::Base)
        .build()
        .unwrap();
    println!("--- before splitting ---");
    println!("{}", msc_ir::render::text(&before.compiled.graph, &costs));
    println!(
        "max imbalance within a meta state: {} cycles\n",
        before.automaton.max_imbalance(&costs)
    );

    let after = Pipeline::new(src.as_str())
        .mode(ConvertMode::Base)
        .time_split(TimeSplitOptions::default())
        .build()
        .unwrap();
    println!(
        "--- after splitting ({} splits, {} restarts) ---",
        after.stats.splits, after.stats.restarts
    );
    println!("{}", msc_ir::render::text(&after.automaton.graph, &costs));
    println!(
        "max imbalance within a meta state: {} cycles",
        after.automaton.max_imbalance(&costs)
    );
}

fn fig5() {
    println!("== Figure 5: compressed meta-state graph ==\n");
    let built = Pipeline::new(LISTING4)
        .mode(ConvertMode::Compressed)
        .build()
        .unwrap();
    println!("{}", built.automaton_text());
    println!(
        "meta states: {} (paper: 2, \"compared to eight for the uncompressed graph\")",
        built.automaton.len()
    );
    println!("subsumed during compression: {}\n", built.stats.subsumed);
    println!("--- graphviz ---\n{}", built.automaton.dot());
}

fn fig6() {
    println!("== Figure 6: meta-state graph for Listing 3 (barrier) ==\n");
    let built = Pipeline::new(LISTING3)
        .mode(ConvertMode::Base)
        .build()
        .unwrap();
    println!("{}", built.automaton_text());
    println!(
        "meta states: {}; no meta state mixes the barrier state with loop states.\n",
        built.automaton.len()
    );
    println!("--- graphviz ---\n{}", built.automaton.dot());
}

fn listing2() {
    println!("== Listing 2 (§2.2): recursive function call via inline expansion ==\n");
    let src = r#"
        int g(int n) {
            if (n > 0) { return g(n - 1) + 1; }
            return 100;
        }
        main() {
            poly int r1, r2;
            r1 = g(pe_id() % 3);      /* position a; b follows */
            r2 = g(pe_id() % 2 + 1);  /* position c; d follows */
            return(r1 * 1000 + r2);
        }
    "#;
    let p = msc_lang::compile(src).unwrap();
    println!("{}", msc_ir::render::text(&p.graph, &CostModel::default()));
    let multis = p
        .graph
        .ids()
        .filter(|&i| matches!(p.graph.state(i).term, msc_ir::Terminator::Multi(_)))
        .count();
    println!("{multis} multiway return branches (two returns × two inline copies of g);");
    println!("each returns to its copy's statically-known sites, per §2.2.\n");
}

fn listing5() {
    println!("== Listing 5: meta-state converted SIMD code for Listing 4 ==\n");
    let built = Pipeline::new(LISTING4)
        .mode(ConvertMode::Base)
        .build()
        .unwrap();
    println!("{}", built.mpl());
}

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty();
    let want = |k: &str| all || which.iter().any(|w| w == k);
    if want("fig1") {
        fig1();
    }
    if want("fig2") {
        fig2();
    }
    if want("fig34") {
        fig34();
    }
    if want("fig5") {
        fig5();
    }
    if want("fig6") {
        fig6();
    }
    if want("listing2") {
        listing2();
    }
    if want("listing5") {
        listing5();
    }
}
