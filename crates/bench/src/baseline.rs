//! The seed's set representation, kept as a measurement baseline: meta
//! states as sorted, deduplicated `Vec<u32>`, with two-pointer merge
//! algebra. The production [`msc_core::StateSet`] replaced this with a
//! hybrid inline/bitset representation; these routines let the benchmarks
//! and the `claims` binary quantify what that bought.

/// Sorted-merge union.
pub fn vec_union(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Two-pointer set difference `a ∖ b`.
pub fn vec_difference(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len());
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
    out
}

/// Two-pointer subset test.
pub fn vec_is_subset(a: &[u32], b: &[u32]) -> bool {
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algebra_matches_definitions() {
        let a = [1u32, 3, 5, 7];
        let b = [3u32, 4, 5];
        assert_eq!(vec_union(&a, &b), vec![1, 3, 4, 5, 7]);
        assert_eq!(vec_difference(&a, &b), vec![1, 7]);
        assert!(vec_is_subset(&[3, 5], &a));
        assert!(!vec_is_subset(&[3, 4], &a));
        assert!(vec_is_subset(&[], &a));
    }
}
