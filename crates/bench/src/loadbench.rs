//! Shared load-harness pieces for the msc-serve daemon.
//!
//! One source of truth for the workload mix, the endpoint smoke checks,
//! and the measurement phases, used by both the `loadgen` binary (which
//! writes the committed `BENCH_serve.json` baseline) and
//! `claims -- serve --check` (which re-measures and gates against it).

use msc_obs::json::Json;
use msc_serve::client::Client;
use msc_serve::{ServeOptions, Server, ServerHandle};
use std::time::{Duration, Instant};

/// The warm-cache source pool: ~90% of load-phase requests rotate
/// through these four programs.
pub const HIT_POOL: [&str; 4] = [
    "main() { poly int x; x = pe_id() * 2 + 1; return(x); }",
    "main() { poly int x, acc = 0; x = pe_id() % 4; while (x > 0) { acc += x; x -= 1; } return(acc); }",
    "main() { poly int v; v = 3; if (pe_id() % 2) { v = v + 1; } else { v = v + 2; } return(v); }",
    "main() { mono int total = 0; poly int x; x = pe_id(); total += x; return(x + total); }",
];

/// A never-seen-before source (cache miss) parameterized by `salt`.
pub fn miss_source(salt: u64) -> String {
    format!(
        "main() {{ poly int x, acc = {salt}; x = pe_id() % 3; \
         while (x > 0) {{ acc += x; x -= 1; }} return(acc); }}"
    )
}

/// JSON request body for `POST /compile`.
pub fn compile_body(source: &str) -> String {
    Json::obj(vec![("source", Json::from(source))]).render()
}

/// Nearest-rank percentile over an already-sorted latency vector (ns).
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Poll `/healthz` until it answers 200 or the budget runs out.
pub fn wait_healthy(addr: &str, budget: Duration) -> bool {
    let deadline = Instant::now() + budget;
    while Instant::now() < deadline {
        if let Ok(mut c) = Client::connect_with_timeout(addr, Duration::from_secs(2)) {
            if c.get("/healthz").map(|r| r.status == 200).unwrap_or(false) {
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    false
}

/// Read one counter out of the daemon's `/metrics` endpoint.
pub fn counter(addr: &str, name: &str) -> u64 {
    let mut c = Client::connect(addr).expect("connect for /metrics");
    let v = c
        .get("/metrics")
        .expect("/metrics")
        .json()
        .expect("metrics JSON");
    v.get("counters")
        .and_then(|cs| cs.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Touch every endpoint once; print one ok/FAIL line per check.
pub fn smoke(addr: &str) -> bool {
    let mut ok = true;
    let mut check = |label: &str, pass: bool| {
        println!("  {} {label}", if pass { "ok " } else { "FAIL" });
        ok &= pass;
    };
    let mut c = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            println!("  FAIL connect: {e}");
            return false;
        }
    };
    check(
        "GET /healthz",
        c.get("/healthz").map(|r| r.status == 200).unwrap_or(false),
    );
    let body = compile_body(HIT_POOL[0]);
    let compile_key = c
        .request("POST", "/compile", Some(&body))
        .ok()
        .filter(|r| r.status == 200)
        .and_then(|r| r.json())
        .and_then(|v| v.get("key").and_then(Json::as_str).map(str::to_string));
    check("POST /compile returns the cache key", compile_key.is_some());
    // /artifact: the key just compiled must come back as a verifiable
    // envelope; a valid-but-absent key is a 404; a malformed key is 400.
    let artifact_hit = compile_key.as_deref().is_some_and(|hex| {
        let Some(key) = msc_cache::CacheKey::from_hex(hex) else {
            return false;
        };
        c.get(&format!("/artifact/{hex}"))
            .ok()
            .filter(|r| r.status == 200)
            .and_then(|r| msc_cache::wire::open(key, &r.body))
            .is_some_and(|a| a.starts_with("mscache v1\n"))
    });
    check(
        "GET /artifact/{key} serves a verified artifact",
        artifact_hit,
    );
    check(
        "GET /artifact absent key answered with 404",
        c.get(&format!("/artifact/{}", "0".repeat(32)))
            .map(|r| r.status == 404)
            .unwrap_or(false),
    );
    check(
        "GET /artifact malformed key answered with 400",
        c.get("/artifact/not-a-key")
            .map(|r| r.status == 400)
            .unwrap_or(false),
    );
    let run_body = Json::obj(vec![
        ("source", Json::from(HIT_POOL[0])),
        ("pes", Json::from(4u64)),
    ])
    .render();
    let run_ok = c
        .request("POST", "/run", Some(&run_body))
        .ok()
        .filter(|r| r.status == 200)
        .and_then(|r| r.json())
        .and_then(|v| v.get("results").and_then(|a| a.as_arr().map(|s| s.len())))
        == Some(4);
    check("POST /run returns 4 PE results", run_ok);
    let batch_body = format!(
        "{{\"jobs\":[{},{}]}}",
        compile_body(HIT_POOL[1]),
        compile_body(HIT_POOL[2])
    );
    check(
        "POST /batch",
        c.request("POST", "/batch", Some(&batch_body))
            .map(|r| r.status == 200)
            .unwrap_or(false),
    );
    // /match: a cold pattern (compile miss), the same pattern again (the
    // pattern cache must answer), and a malformed pattern (clean 422).
    let match_body = Json::obj(vec![
        ("pattern", Json::from("ab+")),
        (
            "shards",
            Json::from(vec![Json::from("xab"), Json::from("bya")]),
        ),
    ])
    .render();
    let post_match = |c: &mut Client| {
        c.request("POST", "/match", Some(&match_body))
            .ok()
            .filter(|r| r.status == 200)
            .and_then(|r| r.json())
    };
    let first = post_match(&mut c);
    check(
        "POST /match finds the boundary-spanning match",
        first
            .as_ref()
            .and_then(|v| v.get("total_matches").and_then(Json::as_u64))
            == Some(1),
    );
    let again = post_match(&mut c);
    check(
        "POST /match again hits the pattern cache",
        again
            .as_ref()
            .and_then(|v| v.get("provenance"))
            .and_then(Json::as_str)
            .is_some_and(|p| p != "fresh"),
    );
    check(
        "malformed pattern answered with 422",
        c.request(
            "POST",
            "/match",
            Some(
                &Json::obj(vec![
                    ("pattern", Json::from("a(")),
                    ("shards", Json::from(vec![Json::from("x")])),
                ])
                .render(),
            ),
        )
        .map(|r| r.status == 422)
        .unwrap_or(false),
    );
    check(
        "GET /metrics shows serve.requests",
        counter(addr, "serve.requests") >= 1,
    );
    check(
        "GET /metrics shows regex.requests",
        counter(addr, "regex.requests") >= 2,
    );
    check(
        "bad request answered with 4xx",
        c.request("POST", "/compile", Some("not json"))
            .map(|r| (400..500).contains(&r.status))
            .unwrap_or(false),
    );
    ok
}

/// The coalesce burst: `n` concurrent identical cold compiles must cost
/// exactly one compilation (one `cache.miss`), the rest splitting into
/// `engine.coalesced` + `cache.hit`. Returns `(compilations, coalesced)`.
pub fn coalesce_burst(addr: &str, n: usize) -> (u64, u64) {
    let miss_before = counter(addr, "cache.miss");
    let source = miss_source(999_999_983);
    let body = compile_body(&source);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let body = &body;
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("burst connect");
                    let r = c
                        .request("POST", "/compile", Some(body))
                        .expect("burst request");
                    assert_eq!(r.status, 200, "burst request failed: {}", r.body);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("burst client");
        }
    });
    let compilations = counter(addr, "cache.miss") - miss_before;
    let coalesced = counter(addr, "engine.coalesced");
    (compilations, coalesced)
}

/// Aggregate result of one [`load_phase`].
pub struct LoadReport {
    pub requests: u64,
    pub errors: u64,
    pub elapsed: Duration,
    /// Sorted per-request latencies in nanoseconds.
    pub latencies: Vec<u64>,
}

impl LoadReport {
    pub fn throughput_rps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64()
    }
    pub fn p99_ms(&self) -> f64 {
        percentile(&self.latencies, 99.0) as f64 / 1e6
    }
}

/// Drive `clients` keep-alive connections at the daemon for `duration`,
/// ~90% warm-pool compiles and ~10% unique sources.
pub fn load_phase(addr: &str, clients: usize, duration: Duration) -> LoadReport {
    let t0 = Instant::now();
    let per_client: Vec<(u64, u64, Vec<u64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("client connect");
                    let (mut n, mut errors) = (0u64, 0u64);
                    let mut lat = Vec::with_capacity(4096);
                    let deadline = Instant::now() + duration;
                    while Instant::now() < deadline {
                        // ~10% of requests are never-seen sources (cache
                        // misses); the rest rotate through the hit pool.
                        let body = if n % 10 == 9 {
                            compile_body(&miss_source(i as u64 * 1_000_000 + n))
                        } else {
                            compile_body(HIT_POOL[(n % 4) as usize])
                        };
                        let t = Instant::now();
                        match c.request("POST", "/compile", Some(&body)) {
                            Ok(r) if r.status == 200 => lat.push(t.elapsed().as_nanos() as u64),
                            Ok(_) | Err(_) => {
                                errors += 1;
                                // The connection may be gone after an error.
                                c = Client::connect(addr).expect("client reconnect");
                            }
                        }
                        n += 1;
                    }
                    (n, errors, lat)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let elapsed = t0.elapsed();
    let mut latencies = Vec::new();
    let (mut requests, mut errors) = (0, 0);
    for (n, e, l) in per_client {
        requests += n;
        errors += e;
        latencies.extend(l);
    }
    latencies.sort_unstable();
    LoadReport {
        requests,
        errors,
        elapsed,
        latencies,
    }
}

/// What one measurement pass produces, shaped for
/// [`crate::regression::check_serve`].
pub struct ServeRunSummary {
    pub requests: u64,
    pub errors: u64,
    pub throughput_rps: f64,
    pub p99_ms: f64,
    pub burst_requests: u64,
    pub burst_compilations: u64,
}

/// Client count the committed serve baseline is measured at.
pub const BASELINE_CLIENTS: usize = 80;

/// Boot an in-process daemon on an ephemeral port, warm the hit pool,
/// run one load phase and one 16-wide coalesce burst, then drain.
///
/// Under the epoll reactor the worker pool only runs compute, so the
/// default sizing applies; the blocking fallback parks one thread per
/// connection and needs `workers >= clients` to avoid queueing stalls.
pub fn measure_serve(clients: usize, duration: Duration) -> Result<ServeRunSummary, String> {
    let workers = if msc_serve::reactor_available() {
        0 // ServeOptions default: one worker per available core
    } else {
        clients + 17
    };
    let handle: ServerHandle = Server::start(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        queue_depth: 256,
        workers,
        ..ServeOptions::default()
    })
    .map_err(|e| format!("start in-process daemon: {e}"))?;
    let addr = handle.local_addr().to_string();
    if !wait_healthy(&addr, Duration::from_secs(10)) {
        handle.shutdown();
        return Err(format!("daemon at {addr} never became healthy"));
    }
    let mut c = Client::connect(&addr).map_err(|e| format!("warmup connect: {e}"))?;
    for src in HIT_POOL {
        let r = c
            .request("POST", "/compile", Some(&compile_body(src)))
            .map_err(|e| format!("warmup compile: {e}"))?;
        if r.status != 200 {
            handle.shutdown();
            return Err(format!("warmup failed: {}", r.body));
        }
    }
    drop(c);
    let report = load_phase(&addr, clients, duration);
    const BURST: usize = 16;
    let (burst_compilations, _coalesced) = coalesce_burst(&addr, BURST);
    handle.shutdown();
    Ok(ServeRunSummary {
        requests: report.requests,
        errors: report.errors,
        throughput_rps: report.throughput_rps(),
        p99_ms: report.p99_ms(),
        burst_requests: BURST as u64,
        burst_compilations,
    })
}
