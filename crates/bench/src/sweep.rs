//! Machine-profile sweep measurement: the library half of
//! `claims -- sweep` / `BENCH_sweep.json`.
//!
//! The sweep gate is different from the timing gates (setops, serve,
//! regex): the simulator *counts* cycles, it doesn't time anything, so
//! every number here is deterministic and the gate checks exact equality
//! plus the profile-ordering invariants the bundled matrix was designed
//! around — `cheap-dispatch` never slower than `paper-default` on the
//! dispatch-heavy workload, `slow-globalor` never faster, and
//! `paper-default` bit-identical to the untouched hard-coded path.

use metastate::Pipeline;
use msc_simd::MachineProfile;

/// One measured profile (what a `BENCH_sweep.json` entry pins).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Profile name.
    pub name: String,
    /// PEs the profile ran on.
    pub pe_count: usize,
    /// Simulated MSC cycles.
    pub cycles: u64,
    /// PE utilization inside meta-state bodies.
    pub utilization: f64,
    /// The §1.1 interpreter baseline priced under the same profile.
    pub interp_cycles: u64,
    /// `interp_cycles / cycles`.
    pub speedup: f64,
}

/// The gate's workload: three-way divergent workers
/// ([`branchy_source(3)`](crate::workloads::branchy_source)) — every
/// meta-state transition is a hashed multiway dispatch, so dispatch-cost
/// knobs move the needle (the C10 regime). Committed verbatim as
/// `examples/dispatch_heavy.mimdc` for the CLI smoke run.
pub fn dispatch_heavy_source() -> String {
    crate::workloads::branchy_source(3)
}

/// Measure one workload under one profile: the profile's cost model is
/// threaded through conversion + codegen, the run uses its machine
/// config, and the interpreter baseline is priced under the same costs.
pub fn measure_profile(src: &str, profile: &MachineProfile) -> SweepRow {
    let built = Pipeline::new(src)
        .costs(profile.costs.clone())
        .build()
        .expect("sweep workload must compile");
    let out = built
        .run_with(profile.machine_config())
        .expect("sweep workload must run");
    let p = msc_lang::compile(src).expect("sweep workload must compile");
    let (_, im) = msc_mimd::interpret_on_simd(
        &p.graph,
        p.layout.poly_words,
        p.layout.mono_words,
        profile.pe_count,
        &profile.costs,
    )
    .expect("interpreter baseline must run");
    SweepRow {
        name: profile.name.clone(),
        pe_count: profile.pe_count,
        cycles: out.metrics.cycles,
        utilization: out.metrics.utilization(),
        interp_cycles: im.cycles,
        speedup: im.cycles as f64 / out.metrics.cycles as f64,
    }
}

/// Measure the workload under every profile.
pub fn measure_sweep(src: &str, profiles: &[MachineProfile]) -> Vec<SweepRow> {
    profiles.iter().map(|p| measure_profile(src, p)).collect()
}

/// Cycles for `src` down today's untouched hard-coded path — default
/// pipeline options, [`metastate::Built::run`] — the path every committed
/// BENCH_*.json number was measured under. The gate pins the
/// `paper-default` profile bit-identical to this.
pub fn hard_coded_cycles(src: &str, n_pe: usize) -> u64 {
    Pipeline::new(src)
        .build()
        .expect("workload must compile")
        .run(n_pe)
        .expect("workload must run")
        .metrics
        .cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_example_is_the_gate_workload() {
        // `mscc sweep examples/dispatch_heavy.mimdc` (CI smoke) and
        // `claims -- sweep` (the gate) must measure the same program.
        assert_eq!(
            include_str!("../../../examples/dispatch_heavy.mimdc"),
            dispatch_heavy_source()
        );
    }

    #[test]
    fn paper_default_profile_is_bit_identical_to_hard_coded_path() {
        let src = dispatch_heavy_source();
        let row = measure_profile(&src, &MachineProfile::default());
        assert_eq!(row.cycles, hard_coded_cycles(&src, 16));
    }

    #[test]
    fn bundled_ordering_invariants_hold_on_dispatch_heavy() {
        let src = dispatch_heavy_source();
        let rows = measure_sweep(&src, &MachineProfile::bundled());
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        let base = by_name("paper-default").cycles;
        assert!(by_name("cheap-dispatch").cycles <= base);
        assert!(by_name("slow-globalor").cycles >= base);
    }

    // The other half of the gate's negative test: not a doctored
    // *baseline* (see regression::tests) but a doctored *profile* — a bad
    // committed profile file must fail `claims -- sweep --check`, which
    // measures whatever `profiles/` contains.
    #[test]
    fn doctored_profile_fails_the_sweep_gate() {
        use crate::regression::{check_sweep, parse_sweep_baseline};
        let baseline =
            parse_sweep_baseline(include_str!("../../../BENCH_sweep.json")).expect("parses");
        let src = dispatch_heavy_source();
        let hard = hard_coded_cycles(&src, 16);

        // cheap-dispatch made expensive: the ordering invariant (and the
        // exact-cycle pin) must flag it.
        let mut profiles = MachineProfile::bundled();
        profiles
            .iter_mut()
            .find(|p| p.name == "cheap-dispatch")
            .unwrap()
            .costs
            .dispatch = 500;
        let failures = check_sweep(&baseline, &measure_sweep(&src, &profiles), hard);
        assert!(
            failures.iter().any(|f| f.contains("cheap-dispatch")),
            "{failures:?}"
        );

        // paper-default nudged off the hard-coded model: the bit-identity
        // invariant must flag it.
        let mut profiles = MachineProfile::bundled();
        profiles
            .iter_mut()
            .find(|p| p.name == "paper-default")
            .unwrap()
            .costs
            .guard_switch += 1;
        let failures = check_sweep(&baseline, &measure_sweep(&src, &profiles), hard);
        assert!(
            failures.iter().any(|f| f.contains("bit-identity")),
            "{failures:?}"
        );
    }
}
