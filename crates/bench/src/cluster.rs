//! Cluster measurement: subprocess `mscc serve` daemons sharing
//! artifacts over `GET /artifact/{key}`.
//!
//! The obs install lock is process-global (one daemon per process), so
//! every node here is a real `mscc serve` subprocess logging to
//! `cluster-logs/<name>.log`. Four short-lived legs:
//!
//! 1. **node A** (no peers) compiles the workload cold — that run is
//!    the single-node baseline;
//! 2. **node B** (`--peers` = A) must answer the same workload entirely
//!    from A — zero local compilations, every response `"peer"`;
//! 3. **node C** peers at a dead address — a dead fleet must degrade to
//!    a local compile without unbounded stalling;
//! 4. **node E** peers at a rogue listener serving garbage — checksum
//!    verification must reject the body and fall back to compiling.

use crate::loadbench::{compile_body, counter, miss_source, wait_healthy};
use msc_obs::json::Json;
use msc_serve::client::Client;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Where daemon stdout/stderr goes; `ci.sh cluster-smoke` dumps these
/// on failure.
pub const LOG_DIR: &str = "cluster-logs";

/// Distinct cold sources per node, far from the loadgen salt ranges.
pub const CLUSTER_JOBS: usize = 8;

fn cluster_sources() -> Vec<String> {
    (0..CLUSTER_JOBS)
        .map(|i| miss_source(7_000_000_000 + i as u64))
        .collect()
}

/// One subprocess daemon. Killed (not drained) on drop — bench nodes
/// have nothing to flush.
pub struct Daemon {
    child: Child,
    pub addr: String,
    cache_dir: PathBuf,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.cache_dir);
    }
}

/// The `mscc` binary next to the running bench binary. The cluster
/// stage builds `msc-cli` first (`ci.sh cluster-smoke` does).
fn mscc_path() -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe
        .parent()
        .ok_or_else(|| "bench binary has no parent directory".to_string())?;
    let cand = dir.join("mscc");
    if cand.exists() {
        Ok(cand)
    } else {
        Err(format!(
            "mscc not found at {} — build it first (cargo build --release -p msc-cli)",
            cand.display()
        ))
    }
}

/// Spawn `mscc serve` on an ephemeral port with a fresh cache dir,
/// logging to `cluster-logs/<name>.log`, and parse the bound address
/// out of the log's "msc-serve listening on" line.
pub fn spawn_daemon(name: &str, peers: Option<&str>) -> Result<Daemon, String> {
    std::fs::create_dir_all(LOG_DIR).map_err(|e| format!("create {LOG_DIR}: {e}"))?;
    let log_path = format!("{LOG_DIR}/{name}.log");
    let log = std::fs::File::create(&log_path).map_err(|e| format!("create {log_path}: {e}"))?;
    let elog = log.try_clone().map_err(|e| format!("clone log: {e}"))?;
    let cache_dir = std::env::temp_dir().join(format!("msc-cluster-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut cmd = Command::new(mscc_path()?);
    cmd.arg("serve")
        .args(["--addr", "127.0.0.1:0", "--workers", "2"])
        .args(["--cache", &cache_dir.to_string_lossy()])
        .stdout(Stdio::from(log))
        .stderr(Stdio::from(elog));
    if let Some(p) = peers {
        cmd.args(["--peers", p]);
    }
    let mut child = cmd.spawn().map_err(|e| format!("spawn {name}: {e}"))?;
    let deadline = Instant::now() + Duration::from_secs(15);
    let addr = loop {
        if let Some(addr) = std::fs::read_to_string(&log_path)
            .ok()
            .and_then(|text| parse_listen_line(&text))
        {
            break addr;
        }
        if let Ok(Some(status)) = child.try_wait() {
            let _ = std::fs::remove_dir_all(&cache_dir);
            return Err(format!("{name} exited before binding: {status}"));
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            let _ = std::fs::remove_dir_all(&cache_dir);
            return Err(format!(
                "{name} never announced its address (see {log_path})"
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    let daemon = Daemon {
        child,
        addr,
        cache_dir,
    };
    if !wait_healthy(&daemon.addr, Duration::from_secs(15)) {
        return Err(format!("{name} at {} never became healthy", daemon.addr));
    }
    Ok(daemon)
}

fn parse_listen_line(text: &str) -> Option<String> {
    const TAG: &str = "msc-serve listening on ";
    let at = text.find(TAG)? + TAG.len();
    let addr = text[at..].lines().next()?.trim();
    if addr.is_empty() {
        None
    } else {
        Some(addr.to_string())
    }
}

/// An in-process rogue "sibling" answering every artifact fetch with
/// plausible HTTP but a garbage body, to exercise checksum rejection.
fn spawn_rogue_peer() -> std::io::Result<String> {
    let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming().take(32) {
            let Ok(mut s) = stream else { break };
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            let body = b"{\"key\":\"junk\",\"sum\":\"junk\",\"artifact\":\"junk\"}";
            let _ = s.write_all(
                format!(
                    "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                    body.len()
                )
                .as_bytes(),
            );
            let _ = s.write_all(body);
        }
    });
    Ok(addr)
}

/// Per-request provenance + latency for one node's pass over the
/// workload.
fn compile_all(addr: &str, sources: &[String]) -> Result<Vec<(String, f64)>, String> {
    let mut c = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    sources
        .iter()
        .map(|src| {
            let body = compile_body(src);
            let t = Instant::now();
            let r = c
                .request("POST", "/compile", Some(&body))
                .map_err(|e| format!("compile on {addr}: {e}"))?;
            let ms = t.elapsed().as_secs_f64() * 1e3;
            if r.status != 200 {
                return Err(format!(
                    "compile on {addr} answered {}: {}",
                    r.status, r.body
                ));
            }
            let provenance = r
                .json()
                .and_then(|v| v.get("provenance").and_then(Json::as_str).map(String::from))
                .ok_or_else(|| format!("compile response without provenance: {}", r.body))?;
            Ok((provenance, ms))
        })
        .collect()
}

fn mean_ms(runs: &[(String, f64)]) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter().map(|(_, ms)| ms).sum::<f64>() / runs.len() as f64
}

/// What one cluster pass produces, shaped for
/// [`crate::regression::check_cluster`].
pub struct ClusterSummary {
    /// Workload size (distinct cold sources).
    pub jobs: u64,
    /// Node B's `cache.peer_hit` after the pass — must equal `jobs`.
    pub peer_hits: u64,
    /// Node B's `cache.miss` after the pass — must be zero.
    pub node_b_compilations: u64,
    /// Mean / max wall time of node B's peer-served compiles.
    pub peer_hit_mean_ms: f64,
    pub peer_hit_max_ms: f64,
    /// Mean wall time of node A's cold compiles (the no-fleet baseline).
    pub single_node_cold_ms: f64,
    /// Cold compile wall time with only a dead peer configured.
    pub dead_peer_cold_ms: f64,
    /// Node E's `cache.peer_verify_fail` — must be at least 1.
    pub verify_fails: u64,
    /// Responses with the wrong status or provenance across all legs.
    pub errors: u64,
}

/// Run the full four-leg cluster measurement. Every daemon is a
/// subprocess; logs land in [`LOG_DIR`].
pub fn measure_cluster() -> Result<ClusterSummary, String> {
    let sources = cluster_sources();
    let mut errors = 0u64;

    // Leg 1: node A compiles everything cold (and stays up as the donor).
    let node_a = spawn_daemon("node-a", None)?;
    println!("   node A up on {} (donor)", node_a.addr);
    let cold = compile_all(&node_a.addr, &sources)?;
    errors += cold.iter().filter(|(p, _)| p != "fresh").count() as u64;
    let single_node_cold_ms = mean_ms(&cold);

    // Leg 2: node B must serve the same workload entirely from A.
    let node_b = spawn_daemon("node-b", Some(&node_a.addr))?;
    println!("   node B up on {} (peers: node A)", node_b.addr);
    let warm = compile_all(&node_b.addr, &sources)?;
    errors += warm.iter().filter(|(p, _)| p != "peer").count() as u64;
    let peer_hits = counter(&node_b.addr, "cache.peer_hit");
    let node_b_compilations = counter(&node_b.addr, "cache.miss");
    let peer_hit_mean_ms = mean_ms(&warm);
    let peer_hit_max_ms = warm.iter().map(|(_, ms)| *ms).fold(0.0, f64::max);
    drop(node_b);
    drop(node_a);

    // Leg 3: a dead fleet must degrade to a bounded local compile.
    let node_c = spawn_daemon("node-c", Some("127.0.0.1:1"))?;
    println!("   node C up on {} (peer: dead address)", node_c.addr);
    let dead = compile_all(&node_c.addr, &sources[..1])?;
    errors += dead.iter().filter(|(p, _)| p != "fresh").count() as u64;
    let dead_peer_cold_ms = mean_ms(&dead);
    drop(node_c);

    // Leg 4: a corrupt peer must fail verification, not poison the node.
    let rogue = spawn_rogue_peer().map_err(|e| format!("rogue peer: {e}"))?;
    let node_e = spawn_daemon("node-e", Some(&rogue))?;
    println!("   node E up on {} (peer: rogue listener)", node_e.addr);
    let poisoned = compile_all(&node_e.addr, &sources[..1])?;
    errors += poisoned.iter().filter(|(p, _)| p != "fresh").count() as u64;
    let verify_fails = counter(&node_e.addr, "cache.peer_verify_fail");
    drop(node_e);

    Ok(ClusterSummary {
        jobs: sources.len() as u64,
        peer_hits,
        node_b_compilations,
        peer_hit_mean_ms,
        peer_hit_max_ms,
        single_node_cold_ms,
        dead_peer_cold_ms,
        verify_fails,
        errors,
    })
}
