//! Measurement helpers shared by the claim binaries and Criterion benches:
//! run one program through each execution mode and collect the quantities
//! the paper's claims are about.

use metastate::{ConvertMode, Pipeline};
use msc_ir::CostModel;
use msc_mimd::{InterpProgram, MimdConfig, MimdReference};

/// What one execution mode did.
#[derive(Debug, Clone, Default)]
pub struct Measurement {
    /// Total cycles.
    pub cycles: u64,
    /// PE utilization (body work / available body work), when meaningful.
    pub utilization: f64,
    /// Words of program memory **per PE** (zero for meta-state code).
    pub per_pe_program_words: usize,
    /// Meta states (MSC modes only).
    pub meta_states: usize,
    /// Control-unit instructions (MSC) / image words (interpreter).
    pub program_instrs: usize,
    /// Per-PE results of `main` (for cross-checking).
    pub values: Vec<i64>,
}

/// Run through meta-state conversion + SIMD execution.
pub fn measure_msc(src: &str, n_pe: usize, mode: ConvertMode) -> Measurement {
    let built = Pipeline::new(src).mode(mode).build().expect("pipeline");
    let out = built.run(n_pe).expect("SIMD run");
    let ret = built.ret_addr();
    Measurement {
        cycles: out.metrics.cycles,
        utilization: out.metrics.utilization(),
        per_pe_program_words: built.simd.per_pe_program_words(),
        meta_states: built.automaton.len(),
        program_instrs: built.simd.control_unit_instrs(),
        values: ret
            .map(|r| (0..n_pe).map(|pe| out.machine.poly_at(pe, r)).collect())
            .unwrap_or_default(),
    }
}

/// Run through the §1.1 interpreter baseline.
pub fn measure_interp(src: &str, n_pe: usize) -> Measurement {
    let p = msc_lang::compile(src).expect("compiles");
    let image = InterpProgram::flatten(&p.graph, p.layout.poly_words, p.layout.mono_words);
    let (m, metrics) = msc_mimd::interpret_on_simd(
        &p.graph,
        p.layout.poly_words,
        p.layout.mono_words,
        n_pe,
        &CostModel::default(),
    )
    .expect("interpreter");
    Measurement {
        cycles: metrics.cycles,
        utilization: 0.0,
        per_pe_program_words: image.per_pe_program_words(),
        meta_states: 0,
        program_instrs: image.image.len(),
        values: p
            .layout
            .main_ret
            .map(|r| (0..n_pe).map(|pe| m.poly_at(pe, r)).collect())
            .unwrap_or_default(),
    }
}

/// Run through the true-MIMD reference.
pub fn measure_reference(src: &str, n_pe: usize) -> Measurement {
    let p = msc_lang::compile(src).expect("compiles");
    let cfg = MimdConfig::spmd(n_pe);
    let mut m = MimdReference::new(p.layout.poly_words, p.layout.mono_words, &cfg);
    let metrics = m.run(&p.graph, &cfg).expect("reference");
    Measurement {
        cycles: metrics.cycles,
        utilization: metrics.utilization(n_pe),
        per_pe_program_words: 0,
        meta_states: 0,
        program_instrs: 0,
        values: p
            .layout
            .main_ret
            .map(|r| (0..n_pe).map(|pe| m.poly_at(pe, r)).collect())
            .unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::branchy_source;

    #[test]
    fn all_measurers_agree_on_values() {
        let src = branchy_source(3);
        let a = measure_msc(&src, 6, ConvertMode::Base);
        let b = measure_msc(&src, 6, ConvertMode::Compressed);
        let c = measure_interp(&src, 6);
        let d = measure_reference(&src, 6);
        assert_eq!(a.values, d.values);
        assert_eq!(b.values, d.values);
        assert_eq!(c.values, d.values);
    }

    #[test]
    fn msc_has_zero_per_pe_program_memory() {
        let src = branchy_source(2);
        assert_eq!(
            measure_msc(&src, 4, ConvertMode::Base).per_pe_program_words,
            0
        );
        assert!(measure_interp(&src, 4).per_pe_program_words > 0);
    }
}
