//! # msc-bench — experiment harness
//!
//! Workload generators and measurement helpers behind the figure/claim
//! regeneration binaries (`figures`, `claims`) and the Criterion benches.
//! EXPERIMENTS.md maps every artifact and claim of the paper to these.

pub mod baseline;
pub mod cluster;
pub mod loadbench;
pub mod measure;
pub mod regression;
pub mod sweep;
pub mod workloads;

pub use measure::{measure_interp, measure_msc, measure_reference, Measurement};
