//! Bench-regression gate over the committed `BENCH_setops.json` baseline.
//!
//! `claims -- setops --check` re-measures the set-operation speedups and
//! calls [`check_speedups`]; any union / is_subset speedup more than the
//! tolerance below the committed number fails the claims binary with a
//! nonzero exit, which `ci.sh bench-smoke` turns into a red build.
//!
//! The parser is a dependency-free string scan (this repo has no serde):
//! it only needs the `size`, `union_speedup`, and `is_subset_speedup`
//! numbers out of the flat per-workload objects `setops()` writes, and it
//! tolerates reformatting as long as those keys survive.

/// The committed speedups for one workload size.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadBaseline {
    pub size: usize,
    pub union_speedup: f64,
    pub is_subset_speedup: f64,
}

/// Scan `obj` for `"key": <number>` and parse the number. Returns `None`
/// when the key is absent or the value is not numeric.
pub fn extract_number(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pull the per-size speedup baselines out of `BENCH_setops.json` text.
/// Objects that lack any of the three keys (e.g. the `subsume` section)
/// are skipped, so the result is exactly the `workloads` array.
pub fn parse_setops_baseline(json: &str) -> Vec<WorkloadBaseline> {
    json.split('{')
        .filter_map(|chunk| {
            Some(WorkloadBaseline {
                size: extract_number(chunk, "size")? as usize,
                union_speedup: extract_number(chunk, "union_speedup")?,
                is_subset_speedup: extract_number(chunk, "is_subset_speedup")?,
            })
        })
        .collect()
}

/// Compare re-measured speedups `(size, union, is_subset)` against the
/// committed baseline. A measurement may fall up to `max_regression`
/// (e.g. `0.30` = 30%) below the committed speedup before it counts as a
/// regression; running faster than the baseline is always fine. Returns
/// one human-readable line per failure — empty means the gate passes.
pub fn check_speedups(
    baseline: &[WorkloadBaseline],
    measured: &[(usize, f64, f64)],
    max_regression: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for b in baseline {
        let Some(&(_, m_union, m_subset)) = measured.iter().find(|(s, _, _)| *s == b.size) else {
            failures.push(format!(
                "size {}: baseline present but not re-measured",
                b.size
            ));
            continue;
        };
        for (op, committed, got) in [
            ("union", b.union_speedup, m_union),
            ("is_subset", b.is_subset_speedup, m_subset),
        ] {
            let floor = committed * (1.0 - max_regression);
            if got < floor {
                failures.push(format!(
                    "size {}: {op} speedup {got:.2}x fell below the {floor:.2}x floor \
                     (committed {committed:.2}x, tolerance {:.0}%)",
                    b.size,
                    max_regression * 100.0
                ));
            }
        }
    }
    failures
}

/// The committed serve-daemon baseline out of `BENCH_serve.json`:
/// the measured numbers plus the absolute targets `loadgen` wrote.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBaseline {
    /// Throughput the committed run achieved (machine-dependent; gated
    /// with a relative tolerance).
    pub throughput_rps: f64,
    /// p99 latency of the committed run, informational.
    pub p99_ms: f64,
    /// Coalesce-burst width of the committed run.
    pub burst_requests: u64,
    /// Compilations the committed burst cost (the invariant: 1).
    pub burst_compilations: u64,
    /// Absolute p99 ceiling from the `targets` section.
    pub p99_ms_max: f64,
    /// Absolute throughput floor from the `targets` section.
    pub throughput_rps_min: f64,
}

/// One re-measured serve run, shaped for [`check_serve`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeMeasurement {
    pub throughput_rps: f64,
    pub p99_ms: f64,
    pub errors: u64,
    pub burst_compilations: u64,
}

/// Pull the serve baseline out of `BENCH_serve.json` text. The burst and
/// target numbers are scoped to their sub-objects so the top-level
/// `requests` count cannot shadow the burst width.
pub fn parse_serve_baseline(json: &str) -> Option<ServeBaseline> {
    let after = |key: &str| -> Option<&str> {
        let pat = format!("\"{key}\"");
        json.find(&pat).map(|at| &json[at + pat.len()..])
    };
    let burst = after("coalesce_burst")?;
    let targets = after("targets")?;
    Some(ServeBaseline {
        throughput_rps: extract_number(json, "throughput_rps")?,
        p99_ms: extract_number(json, "p99")?,
        burst_requests: extract_number(burst, "requests")? as u64,
        burst_compilations: extract_number(burst, "compilations")? as u64,
        p99_ms_max: extract_number(targets, "p99_ms_max")?,
        throughput_rps_min: extract_number(targets, "throughput_rps_min")?,
    })
}

/// Gate a re-measured serve run against the committed baseline.
///
/// Three checks, one line per failure:
/// * **invariants** — zero request errors, and the coalesce burst costs
///   exactly the committed number of compilations (1);
/// * **absolute target** — p99 stays under the committed `p99_ms_max`
///   ceiling (generous: 50ms vs a sub-millisecond committed value);
/// * **relative throughput** — may fall at most `max_regression` (e.g.
///   `0.50` = 50%) below the committed throughput. CI runners are slower
///   and noisier than the baseline machine, so the tolerance is wide; the
///   gate exists to catch order-of-magnitude collapses (lost coalescing,
///   a dead cache, an accidental per-request compile), not 10% drift.
pub fn check_serve(
    baseline: &ServeBaseline,
    measured: &ServeMeasurement,
    max_regression: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    if measured.errors > 0 {
        failures.push(format!(
            "{} request error(s) under load (baseline had none)",
            measured.errors
        ));
    }
    if measured.burst_compilations != baseline.burst_compilations {
        failures.push(format!(
            "coalesce burst of {} identical requests cost {} compilation(s) \
             (committed {})",
            baseline.burst_requests, measured.burst_compilations, baseline.burst_compilations
        ));
    }
    if measured.p99_ms > baseline.p99_ms_max {
        failures.push(format!(
            "p99 {:.3}ms above the {:.0}ms ceiling (committed run: {:.3}ms)",
            measured.p99_ms, baseline.p99_ms_max, baseline.p99_ms
        ));
    }
    let floor = baseline.throughput_rps * (1.0 - max_regression);
    if measured.throughput_rps < floor {
        failures.push(format!(
            "throughput {:.0} req/s fell below the {:.0} req/s floor \
             (committed {:.0} req/s, tolerance {:.0}%)",
            measured.throughput_rps,
            floor,
            baseline.throughput_rps,
            max_regression * 100.0
        ));
    }
    failures
}

/// The committed regex-front-end baseline out of `BENCH_regex.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegexBaseline {
    /// Committed meta-automaton-vs-naive speedup (relative gate).
    pub dfa_vs_naive_speedup: f64,
    /// Committed single-thread throughput, informational.
    pub t1_mbps: f64,
    /// Absolute single-thread throughput floor from `targets`.
    pub t1_mbps_min: f64,
    /// Absolute floor on the 8-thread/1-thread throughput ratio from
    /// `targets` (stitching must not collapse sharded throughput).
    pub t8_vs_t1_min: f64,
}

/// One re-measured regex run, shaped for [`check_regex`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegexMeasurement {
    pub naive_mbps: f64,
    pub t1_mbps: f64,
    pub t2_mbps: f64,
    pub t8_mbps: f64,
    pub matches: u64,
    /// Did every sharded scan reproduce the sequential spans exactly?
    pub spans_agree: bool,
}

impl RegexMeasurement {
    /// Meta-automaton speedup over the naive reference (1-thread).
    pub fn dfa_vs_naive(&self) -> f64 {
        self.t1_mbps / self.naive_mbps
    }
}

/// Pull the regex baseline out of `BENCH_regex.json` text.
pub fn parse_regex_baseline(json: &str) -> Option<RegexBaseline> {
    let targets = {
        let pat = "\"targets\"";
        json.find(pat).map(|at| &json[at + pat.len()..])?
    };
    Some(RegexBaseline {
        dfa_vs_naive_speedup: extract_number(json, "dfa_vs_naive_speedup")?,
        t1_mbps: extract_number(json, "t1_mbps")?,
        t1_mbps_min: extract_number(targets, "t1_mbps_min")?,
        t8_vs_t1_min: extract_number(targets, "t8_vs_t1_min")?,
    })
}

/// Gate a re-measured regex run against the committed baseline.
///
/// * **invariant** — sharded spans must equal sequential spans exactly;
/// * **relative speedup** — dfa-vs-naive may fall at most `max_regression`
///   below the committed value (the headline claim: compiled matching
///   beats AST-walking by orders of magnitude, so even 50% slack only
///   catches collapses);
/// * **absolute floors** — 1-thread throughput above `t1_mbps_min`, and
///   the t8/t1 ratio above `t8_vs_t1_min` (sharding overhead bounded
///   even on a single-core runner).
pub fn check_regex(
    baseline: &RegexBaseline,
    measured: &RegexMeasurement,
    max_regression: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    if !measured.spans_agree {
        failures.push("sharded scan produced different spans than the sequential scan".into());
    }
    let speedup = measured.dfa_vs_naive();
    let floor = baseline.dfa_vs_naive_speedup * (1.0 - max_regression);
    if speedup < floor {
        failures.push(format!(
            "dfa-vs-naive speedup {speedup:.1}x fell below the {floor:.1}x floor \
             (committed {:.1}x, tolerance {:.0}%)",
            baseline.dfa_vs_naive_speedup,
            max_regression * 100.0
        ));
    }
    if measured.t1_mbps < baseline.t1_mbps_min {
        failures.push(format!(
            "1-thread throughput {:.0} MB/s below the {:.0} MB/s floor (committed {:.0})",
            measured.t1_mbps, baseline.t1_mbps_min, baseline.t1_mbps
        ));
    }
    let ratio = measured.t8_mbps / measured.t1_mbps;
    if ratio < baseline.t8_vs_t1_min {
        failures.push(format!(
            "t8/t1 throughput ratio {ratio:.2} below the {:.2} floor \
             (sharded stitching overhead blew up)",
            baseline.t8_vs_t1_min
        ));
    }
    failures
}

/// The committed out-of-core explosion baseline out of
/// `BENCH_explosion.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplosionBaseline {
    /// Meta states of the committed conversion (deterministic — gated
    /// exactly).
    pub meta_states: u64,
    /// Committed in-RAM conversion throughput (relative gate).
    pub in_ram_states_per_sec: f64,
    /// Committed throughput under the spill budget (relative gate).
    pub spilled_states_per_sec: f64,
}

/// One re-measured explosion run, shaped for [`check_explosion`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExplosionMeasurement {
    pub meta_states: u64,
    pub in_ram_states_per_sec: f64,
    pub spilled_states_per_sec: f64,
    /// Bytes the spilled pass actually wrote to its segment stores.
    pub spill_bytes: u64,
    /// Did the spilled conversion produce a bit-identical automaton?
    pub spill_identical: bool,
}

/// Pull the explosion baseline out of `BENCH_explosion.json` text.
pub fn parse_explosion_baseline(json: &str) -> Option<ExplosionBaseline> {
    Some(ExplosionBaseline {
        meta_states: extract_number(json, "meta_states")? as u64,
        in_ram_states_per_sec: extract_number(json, "in_ram_states_per_sec")?,
        spilled_states_per_sec: extract_number(json, "spilled_states_per_sec")?,
    })
}

/// Gate a re-measured explosion run against the committed baseline.
///
/// * **invariants** — the spilled conversion is bit-identical to the
///   in-RAM one, actually spilled (nonzero bytes written), and reaches
///   exactly the committed meta-state count (conversion is
///   deterministic);
/// * **relative throughput** — both the in-RAM and the spilled
///   states/sec may fall at most `max_regression` below the committed
///   values.
pub fn check_explosion(
    baseline: &ExplosionBaseline,
    measured: &ExplosionMeasurement,
    max_regression: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    if !measured.spill_identical {
        failures.push("spilled conversion diverged from the in-RAM automaton".into());
    }
    if measured.spill_bytes == 0 {
        failures
            .push("spill budget produced no spilled bytes (out-of-core path not exercised)".into());
    }
    if measured.meta_states != baseline.meta_states {
        failures.push(format!(
            "conversion produced {} meta states (committed {})",
            measured.meta_states, baseline.meta_states
        ));
    }
    for (what, committed, got) in [
        (
            "in-RAM",
            baseline.in_ram_states_per_sec,
            measured.in_ram_states_per_sec,
        ),
        (
            "spilled",
            baseline.spilled_states_per_sec,
            measured.spilled_states_per_sec,
        ),
    ] {
        let floor = committed * (1.0 - max_regression);
        if got < floor {
            failures.push(format!(
                "{what} conversion {got:.0} states/s fell below the {floor:.0} states/s floor \
                 (committed {committed:.0}, tolerance {:.0}%)",
                max_regression * 100.0
            ));
        }
    }
    failures
}

/// The committed cluster baseline out of `BENCH_cluster.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterBaseline {
    /// Workload size of the committed run.
    pub jobs: u64,
    /// Peer hits of the committed run (the invariant: == jobs).
    pub peer_hits: u64,
    /// Node B compilations of the committed run (the invariant: 0).
    pub node_b_compilations: u64,
    /// Mean peer-hit latency of the committed run, informational.
    pub peer_hit_mean_ms: f64,
    /// Absolute mean peer-hit latency ceiling from `targets`.
    pub peer_hit_ms_max: f64,
    /// From `targets`: how much slower than the single-node cold
    /// compile the dead-fleet cold compile may be (one peer-path
    /// deadline plus scheduling slack).
    pub dead_peer_overhead_ms_max: f64,
}

/// One re-measured cluster pass, shaped for [`check_cluster`]
/// (mirrors `crate::cluster::ClusterSummary`).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterMeasurement {
    pub jobs: u64,
    pub peer_hits: u64,
    pub node_b_compilations: u64,
    pub peer_hit_mean_ms: f64,
    pub single_node_cold_ms: f64,
    pub dead_peer_cold_ms: f64,
    pub verify_fails: u64,
    pub errors: u64,
}

/// Pull the cluster baseline out of `BENCH_cluster.json` text. The
/// targets are scoped to their sub-object.
pub fn parse_cluster_baseline(json: &str) -> Option<ClusterBaseline> {
    let targets = {
        let pat = "\"targets\"";
        json.find(pat).map(|at| &json[at + pat.len()..])?
    };
    Some(ClusterBaseline {
        jobs: extract_number(json, "jobs")? as u64,
        peer_hits: extract_number(json, "peer_hits")? as u64,
        node_b_compilations: extract_number(json, "node_b_compilations")? as u64,
        peer_hit_mean_ms: extract_number(json, "peer_hit_mean_ms")?,
        peer_hit_ms_max: extract_number(targets, "peer_hit_ms_max")?,
        dead_peer_overhead_ms_max: extract_number(targets, "dead_peer_overhead_ms_max")?,
    })
}

/// Gate a re-measured cluster pass against the committed baseline.
///
/// * **invariants** — zero errors; node B serves *every* job from its
///   peer (peer hits == jobs, zero local compilations); the corrupt-
///   peer leg actually tripped checksum verification at least once;
/// * **absolute latency ceiling** — mean peer-hit latency under the
///   committed `peer_hit_ms_max` (a peer hit must stay far cheaper
///   than a compile);
/// * **degradation bound** — a dead fleet may cost at most
///   `dead_peer_overhead_ms_max` over the single-node cold compile:
///   losing every peer must never be slower than having none beyond
///   one peer-path deadline.
pub fn check_cluster(baseline: &ClusterBaseline, measured: &ClusterMeasurement) -> Vec<String> {
    let mut failures = Vec::new();
    if measured.errors > 0 {
        failures.push(format!(
            "{} response error(s) across the cluster legs (baseline had none)",
            measured.errors
        ));
    }
    if measured.peer_hits != measured.jobs || measured.jobs != baseline.jobs {
        failures.push(format!(
            "node B took {} peer hit(s) for {} job(s) (committed: {} of {})",
            measured.peer_hits, measured.jobs, baseline.peer_hits, baseline.jobs
        ));
    }
    if measured.node_b_compilations != baseline.node_b_compilations {
        failures.push(format!(
            "node B compiled {} job(s) locally despite a warm donor (committed {})",
            measured.node_b_compilations, baseline.node_b_compilations
        ));
    }
    if measured.verify_fails == 0 {
        failures.push(
            "corrupt-peer leg recorded no cache.peer_verify_fail \
             (checksum verification not exercised)"
                .into(),
        );
    }
    if measured.peer_hit_mean_ms > baseline.peer_hit_ms_max {
        failures.push(format!(
            "mean peer-hit latency {:.2}ms above the {:.0}ms ceiling (committed run: {:.2}ms)",
            measured.peer_hit_mean_ms, baseline.peer_hit_ms_max, baseline.peer_hit_mean_ms
        ));
    }
    let dead_ceiling = measured.single_node_cold_ms + baseline.dead_peer_overhead_ms_max;
    if measured.dead_peer_cold_ms > dead_ceiling {
        failures.push(format!(
            "dead-fleet cold compile {:.1}ms above the {:.1}ms bound \
             (single-node {:.1}ms + {:.0}ms deadline budget)",
            measured.dead_peer_cold_ms,
            dead_ceiling,
            measured.single_node_cold_ms,
            baseline.dead_peer_overhead_ms_max
        ));
    }
    failures
}

/// Scan `obj` for `"key": "<string>"` and return the string (no escape
/// handling — profile names are plain identifiers).
pub fn extract_string(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// One committed profile row out of `BENCH_sweep.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepProfileBaseline {
    /// Profile name.
    pub name: String,
    /// Committed simulated cycles (deterministic — gated exactly).
    pub cycles: u64,
    /// Committed speedup vs the interpreter baseline.
    pub speedup: f64,
}

/// The committed sweep baseline: the hard-coded-path cycle count plus
/// every per-profile row.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepBaseline {
    /// Cycles down the untouched default path (no profile threading) —
    /// the bit-identity anchor for `paper-default`.
    pub hard_coded_cycles: u64,
    /// Per-profile rows.
    pub profiles: Vec<SweepProfileBaseline>,
}

/// Pull the sweep baseline out of `BENCH_sweep.json` text. Chunks lacking
/// a `name` (the header object) are skipped; `"hard_coded_cycles"` does
/// not collide with the `"cycles":` scan because the pattern requires the
/// opening quote.
pub fn parse_sweep_baseline(json: &str) -> Option<SweepBaseline> {
    let hard_coded_cycles = extract_number(json, "hard_coded_cycles")? as u64;
    let profiles: Vec<SweepProfileBaseline> = json
        .split('{')
        .filter_map(|chunk| {
            Some(SweepProfileBaseline {
                name: extract_string(chunk, "name")?,
                cycles: extract_number(chunk, "cycles")? as u64,
                speedup: extract_number(chunk, "speedup")?,
            })
        })
        .collect();
    if profiles.is_empty() {
        return None;
    }
    Some(SweepBaseline {
        hard_coded_cycles,
        profiles,
    })
}

/// Gate a re-measured sweep against the committed baseline.
///
/// Unlike the timing gates, everything here is deterministic (the
/// simulator counts cycles), so there is no tolerance on cycles:
///
/// * **exactness** — every committed profile re-measures to exactly the
///   committed cycle count (drift means the cost model or converter
///   changed and the baseline must be regenerated deliberately);
/// * **bit-identity** — `paper-default` equals the freshly measured
///   hard-coded-path cycles AND the committed anchor, so the profile
///   subsystem provably does not perturb every other committed
///   BENCH_*.json;
/// * **ordering** — on the dispatch-heavy workload, `cheap-dispatch` is
///   never slower than `paper-default` and `slow-globalor` never faster
///   (a doctored profile file breaks these);
/// * speedups are checked within a small epsilon (they are ratios of the
///   exact integers above).
pub fn check_sweep(
    baseline: &SweepBaseline,
    measured: &[crate::sweep::SweepRow],
    hard_coded: u64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for b in &baseline.profiles {
        let Some(m) = measured.iter().find(|m| m.name == b.name) else {
            failures.push(format!("profile {}: committed but not re-measured", b.name));
            continue;
        };
        if m.cycles != b.cycles {
            failures.push(format!(
                "profile {}: measured {} cycles, committed {} \
                 (deterministic — any drift is a conversion or cost-model change)",
                b.name, m.cycles, b.cycles
            ));
        }
        if (m.speedup - b.speedup).abs() > 0.01 {
            failures.push(format!(
                "profile {}: measured {:.3}x speedup, committed {:.3}x",
                b.name, m.speedup, b.speedup
            ));
        }
    }
    if baseline.hard_coded_cycles != hard_coded {
        failures.push(format!(
            "hard-coded path measured {hard_coded} cycles, committed {} \
             (the default cost model itself moved)",
            baseline.hard_coded_cycles
        ));
    }
    let find = |name: &str| measured.iter().find(|m| m.name == name);
    match find("paper-default") {
        None => failures.push("paper-default missing from the sweep".into()),
        Some(d) => {
            if d.cycles != hard_coded {
                failures.push(format!(
                    "paper-default measured {} cycles but the hard-coded path measured \
                     {hard_coded} (profile ≡ default bit-identity broken)",
                    d.cycles
                ));
            }
            match find("cheap-dispatch") {
                None => failures.push("cheap-dispatch missing from the sweep".into()),
                Some(c) if c.cycles > d.cycles => failures.push(format!(
                    "cheap-dispatch ({} cycles) slower than paper-default ({}) on the \
                     dispatch-heavy workload",
                    c.cycles, d.cycles
                )),
                Some(_) => {}
            }
            match find("slow-globalor") {
                None => failures.push("slow-globalor missing from the sweep".into()),
                Some(s) if s.cycles < d.cycles => failures.push(format!(
                    "slow-globalor ({} cycles) faster than paper-default ({}) — router \
                     latency not charged",
                    s.cycles, d.cycles
                )),
                Some(_) => {}
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    const COMMITTED: &str = include_str!("../../../BENCH_setops.json");
    const COMMITTED_SERVE: &str = include_str!("../../../BENCH_serve.json");
    const COMMITTED_SWEEP: &str = include_str!("../../../BENCH_sweep.json");

    #[test]
    fn parses_the_committed_sweep_baseline() {
        let b = parse_sweep_baseline(COMMITTED_SWEEP).expect("baseline parses");
        assert!(b.hard_coded_cycles > 0);
        let names: Vec<&str> = b.profiles.iter().map(|p| p.name.as_str()).collect();
        for want in [
            "paper-default",
            "wide-simd",
            "slow-globalor",
            "cheap-dispatch",
        ] {
            assert!(names.contains(&want), "{names:?} missing {want}");
        }
        let default = b
            .profiles
            .iter()
            .find(|p| p.name == "paper-default")
            .unwrap();
        assert_eq!(default.cycles, b.hard_coded_cycles, "bit-identity anchor");
    }

    #[test]
    fn honest_sweep_remeasurement_passes() {
        let b = parse_sweep_baseline(COMMITTED_SWEEP).unwrap();
        let src = crate::sweep::dispatch_heavy_source();
        let measured = crate::sweep::measure_sweep(&src, &msc_simd::MachineProfile::bundled());
        let hard = crate::sweep::hard_coded_cycles(&src, 16);
        let failures = check_sweep(&b, &measured, hard);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn doctored_sweep_baseline_fails_check() {
        // The negative test for the CI gate: inflate the committed cycle
        // counts and the honest re-measurement must fail — exactly, not
        // within a tolerance.
        let mut b = parse_sweep_baseline(COMMITTED_SWEEP).unwrap();
        for p in &mut b.profiles {
            p.cycles += 1000;
        }
        b.hard_coded_cycles += 1000;
        let src = crate::sweep::dispatch_heavy_source();
        let measured = crate::sweep::measure_sweep(&src, &msc_simd::MachineProfile::bundled());
        let hard = crate::sweep::hard_coded_cycles(&src, 16);
        let failures = check_sweep(&b, &measured, hard);
        assert!(
            failures.len() > b.profiles.len(),
            "every profile plus the anchor must fail: {failures:?}"
        );
    }

    #[test]
    fn extract_string_scopes_to_the_chunk() {
        assert_eq!(
            extract_string(r#"{"name": "wide-simd", "cycles": 1}"#, "name").as_deref(),
            Some("wide-simd")
        );
        assert_eq!(extract_string(r#"{"cycles": 1}"#, "name"), None);
    }

    #[test]
    fn parses_the_committed_baseline() {
        let b = parse_setops_baseline(COMMITTED);
        assert_eq!(b.len(), 3, "{b:?}");
        assert_eq!(
            b.iter().map(|w| w.size).collect::<Vec<_>>(),
            vec![64, 256, 1024]
        );
        for w in &b {
            assert!(w.union_speedup > 1.0, "{w:?}");
            assert!(w.is_subset_speedup > 1.0, "{w:?}");
        }
    }

    #[test]
    fn matching_measurements_pass() {
        let b = parse_setops_baseline(COMMITTED);
        let measured: Vec<(usize, f64, f64)> = b
            .iter()
            .map(|w| (w.size, w.union_speedup, w.is_subset_speedup))
            .collect();
        assert!(check_speedups(&b, &measured, 0.30).is_empty());
    }

    #[test]
    fn inflated_baseline_fails_check() {
        // The negative test for the CI gate: if someone doubles the
        // committed speedups, re-measuring the honest values must fail.
        let mut b = parse_setops_baseline(COMMITTED);
        let honest: Vec<(usize, f64, f64)> = b
            .iter()
            .map(|w| (w.size, w.union_speedup, w.is_subset_speedup))
            .collect();
        for w in &mut b {
            w.union_speedup *= 2.0;
            w.is_subset_speedup *= 2.0;
        }
        let failures = check_speedups(&b, &honest, 0.30);
        assert_eq!(failures.len(), 6, "{failures:?}");
        assert!(failures[0].contains("union"), "{failures:?}");
    }

    #[test]
    fn missing_size_is_a_failure() {
        let b = parse_setops_baseline(COMMITTED);
        let failures = check_speedups(&b, &[], 0.30);
        assert_eq!(failures.len(), 3, "{failures:?}");
    }

    fn committed_serve() -> ServeBaseline {
        parse_serve_baseline(COMMITTED_SERVE).expect("parse BENCH_serve.json")
    }

    fn honest_serve_run(b: &ServeBaseline) -> ServeMeasurement {
        ServeMeasurement {
            throughput_rps: b.throughput_rps,
            p99_ms: b.p99_ms,
            errors: 0,
            burst_compilations: b.burst_compilations,
        }
    }

    #[test]
    fn parses_the_committed_serve_baseline() {
        let b = committed_serve();
        assert!(b.throughput_rps > 1_000.0, "{b:?}");
        assert!(b.p99_ms > 0.0 && b.p99_ms < b.p99_ms_max, "{b:?}");
        assert_eq!(b.burst_requests, 16);
        assert_eq!(b.burst_compilations, 1);
        assert_eq!(b.p99_ms_max, 50.0);
        assert_eq!(b.throughput_rps_min, 5000.0);
    }

    #[test]
    fn matching_serve_run_passes() {
        let b = committed_serve();
        assert!(check_serve(&b, &honest_serve_run(&b), 0.50).is_empty());
    }

    #[test]
    fn doctored_serve_baseline_fails_check() {
        // The negative test for the CI gate: inflate the committed
        // throughput; re-measuring the honest value must now fail.
        let mut b = committed_serve();
        let honest = honest_serve_run(&b);
        b.throughput_rps *= 4.0;
        let failures = check_serve(&b, &honest, 0.50);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("throughput"), "{failures:?}");
    }

    #[test]
    fn serve_invariant_breaks_fail_check() {
        let b = committed_serve();
        let mut bad = honest_serve_run(&b);
        bad.errors = 3;
        bad.burst_compilations = 16; // coalescing lost entirely
        bad.p99_ms = b.p99_ms_max * 2.0;
        let failures = check_serve(&b, &bad, 0.50);
        assert_eq!(failures.len(), 3, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("error")), "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("burst")), "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("p99")), "{failures:?}");
    }

    const COMMITTED_REGEX: &str = include_str!("../../../BENCH_regex.json");

    fn committed_regex() -> RegexBaseline {
        parse_regex_baseline(COMMITTED_REGEX).expect("parse BENCH_regex.json")
    }

    fn honest_regex_run(b: &RegexBaseline) -> RegexMeasurement {
        RegexMeasurement {
            naive_mbps: b.t1_mbps / b.dfa_vs_naive_speedup,
            t1_mbps: b.t1_mbps,
            t2_mbps: b.t1_mbps,
            t8_mbps: b.t1_mbps,
            matches: 1,
            spans_agree: true,
        }
    }

    #[test]
    fn parses_the_committed_regex_baseline() {
        let b = committed_regex();
        assert!(b.dfa_vs_naive_speedup > 10.0, "{b:?}");
        assert!(b.t1_mbps > b.t1_mbps_min, "{b:?}");
        assert_eq!(b.t8_vs_t1_min, 0.5);
    }

    #[test]
    fn matching_regex_run_passes() {
        let b = committed_regex();
        assert!(check_regex(&b, &honest_regex_run(&b), 0.50).is_empty());
    }

    #[test]
    fn doctored_regex_baseline_fails_check() {
        // The negative test for the CI gate: inflate the committed
        // speedup; re-measuring the honest value must now fail.
        let mut b = committed_regex();
        let honest = honest_regex_run(&b);
        b.dfa_vs_naive_speedup *= 4.0;
        let failures = check_regex(&b, &honest, 0.50);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("speedup"), "{failures:?}");
    }

    #[test]
    fn regex_invariant_breaks_fail_check() {
        let b = committed_regex();
        let mut bad = honest_regex_run(&b);
        bad.spans_agree = false;
        bad.t1_mbps = b.t1_mbps_min / 2.0;
        bad.t8_mbps = bad.t1_mbps * 0.1;
        let failures = check_regex(&b, &bad, 0.50);
        assert!(failures.len() >= 3, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("spans")), "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("floor")), "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("t8/t1")), "{failures:?}");
    }

    const COMMITTED_EXPLOSION: &str = include_str!("../../../BENCH_explosion.json");

    fn committed_explosion() -> ExplosionBaseline {
        parse_explosion_baseline(COMMITTED_EXPLOSION).expect("parse BENCH_explosion.json")
    }

    fn honest_explosion_run(b: &ExplosionBaseline) -> ExplosionMeasurement {
        ExplosionMeasurement {
            meta_states: b.meta_states,
            in_ram_states_per_sec: b.in_ram_states_per_sec,
            spilled_states_per_sec: b.spilled_states_per_sec,
            spill_bytes: 1 << 16,
            spill_identical: true,
        }
    }

    #[test]
    fn parses_the_committed_explosion_baseline() {
        let b = committed_explosion();
        assert!(b.meta_states > 1000, "{b:?}");
        assert!(b.in_ram_states_per_sec > 0.0, "{b:?}");
        assert!(b.spilled_states_per_sec > 0.0, "{b:?}");
    }

    #[test]
    fn matching_explosion_run_passes() {
        let b = committed_explosion();
        assert!(check_explosion(&b, &honest_explosion_run(&b), 0.50).is_empty());
    }

    #[test]
    fn doctored_explosion_baseline_fails_check() {
        // The negative test for the CI gate: inflate the committed
        // throughput numbers; re-measuring the honest values must fail.
        let mut b = committed_explosion();
        let honest = honest_explosion_run(&b);
        b.in_ram_states_per_sec *= 4.0;
        b.spilled_states_per_sec *= 4.0;
        let failures = check_explosion(&b, &honest, 0.50);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures.iter().all(|f| f.contains("floor")), "{failures:?}");
    }

    #[test]
    fn explosion_invariant_breaks_fail_check() {
        let b = committed_explosion();
        let mut bad = honest_explosion_run(&b);
        bad.spill_identical = false;
        bad.spill_bytes = 0;
        bad.meta_states += 1;
        let failures = check_explosion(&b, &bad, 0.50);
        assert_eq!(failures.len(), 3, "{failures:?}");
        assert!(
            failures.iter().any(|f| f.contains("diverged")),
            "{failures:?}"
        );
        assert!(
            failures.iter().any(|f| f.contains("spilled bytes")),
            "{failures:?}"
        );
        assert!(
            failures.iter().any(|f| f.contains("meta states")),
            "{failures:?}"
        );
    }

    const COMMITTED_CLUSTER: &str = include_str!("../../../BENCH_cluster.json");

    fn committed_cluster() -> ClusterBaseline {
        parse_cluster_baseline(COMMITTED_CLUSTER).expect("parse BENCH_cluster.json")
    }

    fn honest_cluster_run(b: &ClusterBaseline) -> ClusterMeasurement {
        ClusterMeasurement {
            jobs: b.jobs,
            peer_hits: b.peer_hits,
            node_b_compilations: b.node_b_compilations,
            peer_hit_mean_ms: b.peer_hit_mean_ms,
            single_node_cold_ms: 10.0,
            dead_peer_cold_ms: 12.0,
            verify_fails: 1,
            errors: 0,
        }
    }

    #[test]
    fn parses_the_committed_cluster_baseline() {
        let b = committed_cluster();
        assert!(b.jobs >= 2, "{b:?}");
        assert_eq!(b.peer_hits, b.jobs, "{b:?}");
        assert_eq!(b.node_b_compilations, 0, "{b:?}");
        assert!(
            b.peer_hit_mean_ms > 0.0 && b.peer_hit_mean_ms < b.peer_hit_ms_max,
            "{b:?}"
        );
        assert!(b.dead_peer_overhead_ms_max > 0.0, "{b:?}");
    }

    #[test]
    fn matching_cluster_run_passes() {
        let b = committed_cluster();
        assert!(check_cluster(&b, &honest_cluster_run(&b)).is_empty());
    }

    #[test]
    fn doctored_cluster_baseline_fails_check() {
        // The negative test for the CI gate: tighten the committed
        // latency ceiling below what the honest run measures; the gate
        // must now fail.
        let mut b = committed_cluster();
        let honest = honest_cluster_run(&b);
        b.peer_hit_ms_max = honest.peer_hit_mean_ms / 2.0;
        let failures = check_cluster(&b, &honest);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("peer-hit latency"), "{failures:?}");
    }

    #[test]
    fn cluster_invariant_breaks_fail_check() {
        let b = committed_cluster();
        let mut bad = honest_cluster_run(&b);
        bad.errors = 2;
        bad.peer_hits = 0;
        bad.node_b_compilations = bad.jobs; // fleet path entirely dead
        bad.verify_fails = 0;
        bad.dead_peer_cold_ms = bad.single_node_cold_ms + b.dead_peer_overhead_ms_max + 1.0;
        let failures = check_cluster(&b, &bad);
        assert_eq!(failures.len(), 5, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("error")), "{failures:?}");
        assert!(
            failures.iter().any(|f| f.contains("peer hit")),
            "{failures:?}"
        );
        assert!(
            failures.iter().any(|f| f.contains("compiled")),
            "{failures:?}"
        );
        assert!(
            failures.iter().any(|f| f.contains("verify")),
            "{failures:?}"
        );
        assert!(
            failures.iter().any(|f| f.contains("dead-fleet")),
            "{failures:?}"
        );
    }

    #[test]
    fn extract_number_handles_scientific_and_negatives() {
        assert_eq!(extract_number("{\"x\": -1.5e2}", "x"), Some(-150.0));
        assert_eq!(extract_number("{\"x\": 37.21,", "x"), Some(37.21));
        assert_eq!(extract_number("{\"y\": 1}", "x"), None);
        assert_eq!(extract_number("{\"x\": \"nope\"}", "x"), None);
    }
}
