//! Bench-regression gate over the committed `BENCH_setops.json` baseline.
//!
//! `claims -- setops --check` re-measures the set-operation speedups and
//! calls [`check_speedups`]; any union / is_subset speedup more than the
//! tolerance below the committed number fails the claims binary with a
//! nonzero exit, which `ci.sh bench-smoke` turns into a red build.
//!
//! The parser is a dependency-free string scan (this repo has no serde):
//! it only needs the `size`, `union_speedup`, and `is_subset_speedup`
//! numbers out of the flat per-workload objects `setops()` writes, and it
//! tolerates reformatting as long as those keys survive.

/// The committed speedups for one workload size.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadBaseline {
    pub size: usize,
    pub union_speedup: f64,
    pub is_subset_speedup: f64,
}

/// Scan `obj` for `"key": <number>` and parse the number. Returns `None`
/// when the key is absent or the value is not numeric.
pub fn extract_number(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pull the per-size speedup baselines out of `BENCH_setops.json` text.
/// Objects that lack any of the three keys (e.g. the `subsume` section)
/// are skipped, so the result is exactly the `workloads` array.
pub fn parse_setops_baseline(json: &str) -> Vec<WorkloadBaseline> {
    json.split('{')
        .filter_map(|chunk| {
            Some(WorkloadBaseline {
                size: extract_number(chunk, "size")? as usize,
                union_speedup: extract_number(chunk, "union_speedup")?,
                is_subset_speedup: extract_number(chunk, "is_subset_speedup")?,
            })
        })
        .collect()
}

/// Compare re-measured speedups `(size, union, is_subset)` against the
/// committed baseline. A measurement may fall up to `max_regression`
/// (e.g. `0.30` = 30%) below the committed speedup before it counts as a
/// regression; running faster than the baseline is always fine. Returns
/// one human-readable line per failure — empty means the gate passes.
pub fn check_speedups(
    baseline: &[WorkloadBaseline],
    measured: &[(usize, f64, f64)],
    max_regression: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for b in baseline {
        let Some(&(_, m_union, m_subset)) = measured.iter().find(|(s, _, _)| *s == b.size) else {
            failures.push(format!(
                "size {}: baseline present but not re-measured",
                b.size
            ));
            continue;
        };
        for (op, committed, got) in [
            ("union", b.union_speedup, m_union),
            ("is_subset", b.is_subset_speedup, m_subset),
        ] {
            let floor = committed * (1.0 - max_regression);
            if got < floor {
                failures.push(format!(
                    "size {}: {op} speedup {got:.2}x fell below the {floor:.2}x floor \
                     (committed {committed:.2}x, tolerance {:.0}%)",
                    b.size,
                    max_regression * 100.0
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    const COMMITTED: &str = include_str!("../../../BENCH_setops.json");

    #[test]
    fn parses_the_committed_baseline() {
        let b = parse_setops_baseline(COMMITTED);
        assert_eq!(b.len(), 3, "{b:?}");
        assert_eq!(
            b.iter().map(|w| w.size).collect::<Vec<_>>(),
            vec![64, 256, 1024]
        );
        for w in &b {
            assert!(w.union_speedup > 1.0, "{w:?}");
            assert!(w.is_subset_speedup > 1.0, "{w:?}");
        }
    }

    #[test]
    fn matching_measurements_pass() {
        let b = parse_setops_baseline(COMMITTED);
        let measured: Vec<(usize, f64, f64)> = b
            .iter()
            .map(|w| (w.size, w.union_speedup, w.is_subset_speedup))
            .collect();
        assert!(check_speedups(&b, &measured, 0.30).is_empty());
    }

    #[test]
    fn inflated_baseline_fails_check() {
        // The negative test for the CI gate: if someone doubles the
        // committed speedups, re-measuring the honest values must fail.
        let mut b = parse_setops_baseline(COMMITTED);
        let honest: Vec<(usize, f64, f64)> = b
            .iter()
            .map(|w| (w.size, w.union_speedup, w.is_subset_speedup))
            .collect();
        for w in &mut b {
            w.union_speedup *= 2.0;
            w.is_subset_speedup *= 2.0;
        }
        let failures = check_speedups(&b, &honest, 0.30);
        assert_eq!(failures.len(), 6, "{failures:?}");
        assert!(failures[0].contains("union"), "{failures:?}");
    }

    #[test]
    fn missing_size_is_a_failure() {
        let b = parse_setops_baseline(COMMITTED);
        let failures = check_speedups(&b, &[], 0.30);
        assert_eq!(failures.len(), 3, "{failures:?}");
    }

    #[test]
    fn extract_number_handles_scientific_and_negatives() {
        assert_eq!(extract_number("{\"x\": -1.5e2}", "x"), Some(-150.0));
        assert_eq!(extract_number("{\"x\": 37.21,", "x"), Some(37.21));
        assert_eq!(extract_number("{\"y\": 1}", "x"), None);
        assert_eq!(extract_number("{\"x\": \"nope\"}", "x"), None);
    }
}
