//! Small shared utilities: a fast integer hasher (Fx-style) used for the
//! hot interning maps in the converter, plus convenient map/set aliases.
//!
//! The Rust Performance Book recommends a cheap integer hasher for hot maps
//! keyed by small integers; `rustc-hash` is not on this project's approved
//! dependency list, so the same multiply-rotate-xor scheme is implemented
//! here (~20 lines) instead of pulling a crate.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplication constant (64-bit golden-ratio-derived odd value).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher in the style of `FxHasher` (the rustc
/// internal hasher): each written word is folded in with
/// `hash = (hash.rotate_left(5) ^ word) * SEED`.
///
/// Not HashDoS-resistant — only use for internal maps keyed by trusted data
/// (state ids, interned set handles), never by untrusted input.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"meta-state"), hash_of(&"meta-state"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a strong guarantee in general, but these must differ for the
        // hasher to be useful at all.
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
        assert_ne!(hash_of(&vec![1u32, 2]), hash_of(&vec![2u32, 1]));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn partial_chunk_hashing_differs_from_padded() {
        // 7 bytes vs the same 7 bytes plus an explicit zero byte must not be
        // forced equal by the implementation's padding of the remainder
        // (lengths differ via the slice Hash impl writing a length prefix).
        let a: &[u8] = &[1, 2, 3, 4, 5, 6, 7];
        let b: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 0];
        assert_ne!(hash_of(&a), hash_of(&b));
    }
}
