//! Optional IR optimization passes.
//!
//! The paper's prototype emits unoptimized stack code ("Future work will
//! integrate the code generation process", §5). These passes are the
//! obvious next steps a production version of the converter would take,
//! and the ablation experiments measure what they buy:
//!
//! * [`peephole_ops`] / [`MimdGraph::peephole`] — local constant folding
//!   and stack-traffic cleanup inside basic blocks. Smaller blocks mean
//!   fewer issued SIMD instructions *and* cheaper meta states.
//! * [`MimdGraph::minimize`] — partition-refinement (Moore) merging of
//!   bisimilar MIMD states. Inline expansion (§2.2) duplicates code per
//!   call site; minimization folds identical duplicates back together,
//!   which shrinks the meta-state space the converter must explore.

use crate::graph::{MimdGraph, StateId, Terminator};
use crate::op::{Op, UnOp};
use crate::util::FxHashMap;

/// One round of local rewrites over a straight-line op sequence. Returns
/// true if anything changed. Rewrites applied:
///
/// * `Push a; Push b; Bin op`   → `Push (a op b)` (integer constant fold)
/// * `PushF a; PushF b; Bin op` → folded float op (on stored bit patterns)
/// * `Push a; Un op`            → `Push (op a)`
/// * `Push _ / PushF _ / Dup / PeId / NProc; Pop(1)` → (removed)
/// * `Push 0; Bin Add/Sub/Or/Xor/Shl/Shr` → (removed — identity)
/// * `Push 1; Bin Mul/Div`      → (removed — identity)
/// * `Pop(0)`                   → (removed)
fn peephole_round(ops: &mut Vec<Op>) -> bool {
    let mut changed = false;
    let mut i = 0;
    while i < ops.len() {
        // Window of up to three ops starting at i.
        let rewritten: Option<(usize, Vec<Op>)> = match (&ops[i], ops.get(i + 1), ops.get(i + 2)) {
            // Constant folds.
            (Op::Push(a), Some(Op::Push(b)), Some(Op::Bin(op))) if !op.is_float() => {
                Some((3, vec![Op::Push(op.apply(*a, *b))]))
            }
            (Op::PushF(a), Some(Op::PushF(b)), Some(Op::Bin(op))) if op.is_float() => {
                Some((3, vec![Op::Push(op.apply(*a as i64, *b as i64))]))
            }
            (Op::Push(a), Some(Op::Un(u)), _) if !matches!(u, UnOp::FNeg) => {
                Some((2, vec![Op::Push(u.apply(*a))]))
            }
            // Dead pushes.
            (Op::Push(_) | Op::PushF(_) | Op::Dup | Op::PeId | Op::NProc, Some(Op::Pop(1)), _) => {
                Some((2, vec![]))
            }
            // Algebraic identities on the running stack value.
            (
                Op::Push(0),
                Some(Op::Bin(
                    crate::op::BinOp::Add
                    | crate::op::BinOp::Sub
                    | crate::op::BinOp::Or
                    | crate::op::BinOp::Xor
                    | crate::op::BinOp::Shl
                    | crate::op::BinOp::Shr,
                )),
                _,
            ) => Some((2, vec![])),
            (Op::Push(1), Some(Op::Bin(crate::op::BinOp::Mul | crate::op::BinOp::Div)), _) => {
                Some((2, vec![]))
            }
            (Op::Pop(0), _, _) => Some((1, vec![])),
            _ => None,
        };
        if let Some((consumed, replacement)) = rewritten {
            ops.splice(i..i + consumed, replacement);
            changed = true;
            // Back up one so newly adjacent ops get considered.
            i = i.saturating_sub(1);
        } else {
            i += 1;
        }
    }
    changed
}

/// Run the rewrite rounds to a fixed point on one op sequence. Returns the
/// number of rounds that changed something.
pub fn peephole_ops(ops: &mut Vec<Op>) -> u32 {
    let mut rounds = 0;
    while peephole_round(ops) {
        rounds += 1;
        if rounds > 64 {
            break; // safety; rewrites strictly shrink, so unreachable
        }
    }
    rounds
}

impl MimdGraph {
    /// Peephole-optimize every block. Returns the number of ops removed.
    pub fn peephole(&mut self) -> usize {
        let before: usize = self.states.iter().map(|s| s.ops.len()).sum();
        for st in &mut self.states {
            peephole_ops(&mut st.ops);
        }
        let after: usize = self.states.iter().map(|s| s.ops.len()).sum();
        before - after
    }

    /// Merge bisimilar states by partition refinement: two states are
    /// equivalent iff they have identical code, the same barrier flag, and
    /// congruent terminators (successors in pairwise-equal classes).
    /// Returns the number of states removed.
    ///
    /// This directly counteracts the code duplication of per-call-site
    /// inline expansion (§2.2): identical inlined bodies fold together, so
    /// the meta-state construction sees a smaller MIMD state space.
    pub fn minimize(&mut self) -> usize {
        let n = self.states.len();
        if n == 0 {
            return 0;
        }
        // Initial partition: (ops, barrier, terminator shape).
        let mut class: Vec<u32> = vec![0; n];
        {
            let mut key_to_class: FxHashMap<(Vec<Op>, bool, u8), u32> = FxHashMap::default();
            for (i, st) in self.states.iter().enumerate() {
                let shape = match st.term {
                    Terminator::Halt => 0u8,
                    Terminator::Jump(_) => 1,
                    Terminator::Branch { .. } => 2,
                    Terminator::Multi(_) => 3,
                    Terminator::Spawn { .. } => 4,
                };
                let next = key_to_class.len() as u32;
                let c = *key_to_class
                    .entry((st.ops.clone(), st.barrier, shape))
                    .or_insert(next);
                class[i] = c;
            }
        }
        // Refine until stable: signature = (class, successor classes).
        loop {
            let mut sig_to_class: FxHashMap<(u32, Vec<u32>), u32> = FxHashMap::default();
            let mut new_class = vec![0u32; n];
            for (i, st) in self.states.iter().enumerate() {
                let succ_classes: Vec<u32> = st
                    .term
                    .successors()
                    .iter()
                    .map(|s| class[s.idx()])
                    .collect();
                let next = sig_to_class.len() as u32;
                let c = *sig_to_class.entry((class[i], succ_classes)).or_insert(next);
                new_class[i] = c;
            }
            if new_class == class {
                break;
            }
            class = new_class;
        }
        // Representative = lowest-id state of each class.
        let mut rep: FxHashMap<u32, StateId> = FxHashMap::default();
        for (i, &c) in class.iter().enumerate() {
            rep.entry(c).or_insert(StateId(i as u32));
        }
        let removed = n - rep.len();
        if removed == 0 {
            return 0;
        }
        for st in &mut self.states {
            st.term.map_successors(|s| rep[&class[s.idx()]]);
        }
        self.start = rep[&class[self.start.idx()]];
        self.compact();
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::MimdState;
    use crate::op::{Addr, BinOp};

    #[test]
    fn folds_integer_constants() {
        let mut ops = vec![
            Op::Push(2),
            Op::Push(3),
            Op::Bin(BinOp::Mul),
            Op::St(Addr::poly(0)),
        ];
        peephole_ops(&mut ops);
        assert_eq!(ops, vec![Op::Push(6), Op::St(Addr::poly(0))]);
    }

    #[test]
    fn folds_cascaded_constants() {
        // (2*3)+4 folds completely through re-examination.
        let mut ops = vec![
            Op::Push(2),
            Op::Push(3),
            Op::Bin(BinOp::Mul),
            Op::Push(4),
            Op::Bin(BinOp::Add),
        ];
        peephole_ops(&mut ops);
        assert_eq!(ops, vec![Op::Push(10)]);
    }

    #[test]
    fn folds_unary() {
        let mut ops = vec![Op::Push(5), Op::Un(UnOp::Neg)];
        peephole_ops(&mut ops);
        assert_eq!(ops, vec![Op::Push(-5)]);
    }

    #[test]
    fn removes_dead_push_pop() {
        let mut ops = vec![
            Op::PeId,
            Op::Pop(1),
            Op::Push(1),
            Op::Pop(1),
            Op::Ld(Addr::poly(0)),
        ];
        peephole_ops(&mut ops);
        assert_eq!(ops, vec![Op::Ld(Addr::poly(0))]);
    }

    #[test]
    fn removes_additive_identity() {
        let mut ops = vec![Op::Ld(Addr::poly(0)), Op::Push(0), Op::Bin(BinOp::Add)];
        peephole_ops(&mut ops);
        assert_eq!(ops, vec![Op::Ld(Addr::poly(0))]);
    }

    #[test]
    fn removes_multiplicative_identity() {
        let mut ops = vec![Op::Ld(Addr::poly(0)), Op::Push(1), Op::Bin(BinOp::Mul)];
        peephole_ops(&mut ops);
        assert_eq!(ops, vec![Op::Ld(Addr::poly(0))]);
    }

    #[test]
    fn preserves_float_neg_bits() {
        // FNeg on a Push'd integer must NOT fold (it operates on f64 bits).
        let mut ops = vec![Op::Push(5), Op::Un(UnOp::FNeg)];
        peephole_ops(&mut ops);
        assert_eq!(ops, vec![Op::Push(5), Op::Un(UnOp::FNeg)]);
    }

    #[test]
    fn folds_float_constants() {
        let a = 1.5f64.to_bits();
        let b = 2.25f64.to_bits();
        let mut ops = vec![Op::PushF(a), Op::PushF(b), Op::Bin(BinOp::FAdd)];
        peephole_ops(&mut ops);
        assert_eq!(ops.len(), 1);
        let Op::Push(bits) = ops[0] else {
            panic!("expected folded push")
        };
        assert_eq!(f64::from_bits(bits as u64), 3.75);
    }

    #[test]
    fn graph_peephole_counts_removed() {
        let mut g = MimdGraph::new();
        g.add(MimdState::new(
            vec![
                Op::Push(1),
                Op::Push(2),
                Op::Bin(BinOp::Add),
                Op::St(Addr::poly(0)),
            ],
            Terminator::Halt,
        ));
        g.start = StateId(0);
        assert_eq!(g.peephole(), 2);
    }

    #[test]
    fn minimize_merges_identical_tails() {
        // Two identical "epilogue" states reached from a branch.
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(
            vec![Op::Ld(Addr::poly(0))],
            Terminator::Halt,
        ));
        let e1 = g.add(MimdState::new(
            vec![Op::Push(9), Op::St(Addr::poly(1))],
            Terminator::Halt,
        ));
        let e2 = g.add(MimdState::new(
            vec![Op::Push(9), Op::St(Addr::poly(1))],
            Terminator::Halt,
        ));
        g.state_mut(a).term = Terminator::Branch { t: e1, f: e2 };
        g.start = a;
        assert_eq!(g.minimize(), 1);
        assert_eq!(g.len(), 2);
        let Terminator::Branch { t, f } = g.state(g.start).term else {
            panic!()
        };
        assert_eq!(t, f, "both arcs now reach the merged epilogue");
    }

    #[test]
    fn minimize_merges_identical_loops() {
        // Two structurally identical self-loops (same code) merge; their
        // distinct predecessors keep them apart only if code differs.
        let mut g = MimdGraph::new();
        let end = g.add(MimdState::new(vec![], Terminator::Halt));
        let l1 = g.add(MimdState::new(
            vec![Op::Ld(Addr::poly(0))],
            Terminator::Halt,
        ));
        let l2 = g.add(MimdState::new(
            vec![Op::Ld(Addr::poly(0))],
            Terminator::Halt,
        ));
        g.state_mut(l1).term = Terminator::Branch { t: l1, f: end };
        g.state_mut(l2).term = Terminator::Branch { t: l2, f: end };
        let a = g.add(MimdState::new(
            vec![Op::PeId],
            Terminator::Branch { t: l1, f: l2 },
        ));
        g.start = a;
        assert_eq!(g.minimize(), 1, "bisimilar self-loops merge");
        g.validate().unwrap();
    }

    #[test]
    fn minimize_keeps_distinct_code_apart() {
        let mut g = MimdGraph::new();
        let e1 = g.add(MimdState::new(vec![Op::Push(1)], Terminator::Halt));
        let e2 = g.add(MimdState::new(vec![Op::Push(2)], Terminator::Halt));
        let a = g.add(MimdState::new(
            vec![Op::PeId],
            Terminator::Branch { t: e1, f: e2 },
        ));
        g.start = a;
        assert_eq!(g.minimize(), 0);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn minimize_respects_barrier_flags() {
        let mut g = MimdGraph::new();
        let e1 = g.add(MimdState::new(vec![Op::Push(1)], Terminator::Halt));
        let e2 = g.add(MimdState::new(vec![Op::Push(1)], Terminator::Halt).with_barrier());
        let a = g.add(MimdState::new(
            vec![Op::PeId],
            Terminator::Branch { t: e1, f: e2 },
        ));
        g.start = a;
        assert_eq!(
            g.minimize(),
            0,
            "barrier state must not merge with plain state"
        );
    }

    #[test]
    fn minimize_handles_multi_and_spawn_congruence() {
        let mut g = MimdGraph::new();
        let end = g.add(MimdState::new(vec![], Terminator::Halt));
        let m1 = g.add(MimdState::new(
            vec![Op::PopRet],
            Terminator::Multi(vec![end, end]),
        ));
        let m2 = g.add(MimdState::new(
            vec![Op::PopRet],
            Terminator::Multi(vec![end, end]),
        ));
        let a = g.add(MimdState::new(
            vec![Op::PeId],
            Terminator::Branch { t: m1, f: m2 },
        ));
        g.start = a;
        assert_eq!(g.minimize(), 1);
        g.validate().unwrap();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::op::{Addr, BinOp, Op, UnOp};
    use proptest::prelude::*;

    /// Tiny single-PE evaluator for straight-line op sequences: enough to
    /// check that peephole rewrites preserve observable behaviour (final
    /// memory + final stack). Underflows evaluate to a sentinel error.
    fn eval(ops: &[Op], mem_words: usize) -> Result<(Vec<i64>, Vec<i64>), ()> {
        let mut mem = vec![0i64; mem_words];
        let mut stack: Vec<i64> = Vec::new();
        for op in ops {
            match op {
                Op::Push(v) => stack.push(*v),
                Op::PushF(b) => stack.push(*b as i64),
                Op::Dup => {
                    let v = *stack.last().ok_or(())?;
                    stack.push(v);
                }
                Op::Pop(n) => {
                    for _ in 0..*n {
                        stack.pop().ok_or(())?;
                    }
                }
                Op::Ld(a) => stack.push(mem[a.index as usize]),
                Op::St(a) => {
                    let v = stack.pop().ok_or(())?;
                    mem[a.index as usize] = v;
                }
                Op::Bin(b) => {
                    let rhs = stack.pop().ok_or(())?;
                    let lhs = stack.pop().ok_or(())?;
                    stack.push(b.apply(lhs, rhs));
                }
                Op::Un(u) => {
                    let v = stack.pop().ok_or(())?;
                    stack.push(u.apply(v));
                }
                Op::PeId => stack.push(3),
                Op::NProc => stack.push(8),
                _ => return Err(()), // not generated
            }
        }
        Ok((mem, stack))
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (-16i64..32).prop_map(Op::Push),
            (0u32..4).prop_map(|i| Op::Ld(Addr::poly(i))),
            (0u32..4).prop_map(|i| Op::St(Addr::poly(i))),
            Just(Op::Dup),
            Just(Op::Pop(1)),
            Just(Op::PeId),
            Just(Op::NProc),
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::Div),
                Just(BinOp::And),
                Just(BinOp::Xor),
                Just(BinOp::Lt),
            ]
            .prop_map(Op::Bin),
            prop_oneof![Just(UnOp::Neg), Just(UnOp::Not), Just(UnOp::BitNot)].prop_map(Op::Un),
        ]
    }

    proptest! {
        /// Peephole rewrites preserve the observable result (final memory
        /// and stack) of any sequence that evaluates without underflow.
        #[test]
        fn peephole_preserves_semantics(ops in prop::collection::vec(arb_op(), 0..24)) {
            if let Ok(before) = eval(&ops, 4) {
                let mut optimized = ops.clone();
                peephole_ops(&mut optimized);
                let after = eval(&optimized, 4);
                prop_assert_eq!(
                    after, Ok(before),
                    "peephole changed behaviour:\n  in:  {:?}\n  out: {:?}", ops, optimized
                );
            }
        }

        /// Peephole never grows a sequence.
        #[test]
        fn peephole_never_grows(ops in prop::collection::vec(arb_op(), 0..24)) {
            let mut optimized = ops.clone();
            peephole_ops(&mut optimized);
            prop_assert!(optimized.len() <= ops.len());
        }

        /// Minimization preserves graph validity on arbitrary small graphs.
        #[test]
        fn minimize_keeps_graphs_valid(
            n in 2usize..8,
            seeds in prop::collection::vec(0u32..1000, 2..8),
        ) {
            use crate::graph::{MimdGraph, MimdState, Terminator};
            let mut g = MimdGraph::new();
            let k = n.min(seeds.len());
            for seed in seeds.iter().take(k) {
                g.add(MimdState::new(vec![Op::Push((seed % 3) as i64)], Terminator::Halt));
            }
            for (i, seed) in seeds.iter().take(k).enumerate() {
                let s = *seed as usize;
                let t = StateId(((s / 7) % k) as u32);
                let f = StateId(((s / 13) % k) as u32);
                g.state_mut(StateId(i as u32)).term = match s % 3 {
                    0 => Terminator::Halt,
                    1 => Terminator::Jump(t),
                    _ => Terminator::Branch { t, f },
                };
            }
            g.start = StateId(0);
            g.minimize();
            prop_assert!(g.validate().is_ok());
        }
    }
}
