//! The MIMD state graph (§2.1).
//!
//! Each node — a *MIMD state* — is a maximal basic block with zero, one, or
//! two exit arcs (plus the k-ary multiway branch produced by inline-expanded
//! `return`s, §2.2, and the `spawn` pseudo-branch of §3.2.5). A state may be
//! flagged as a *barrier wait* (§2.6): entering it means the process has
//! reached a `wait` and may not proceed until every live process has.
//!
//! The graph also implements the normalization the paper applies before
//! conversion: *code straightening* and *removal of empty nodes*
//! ("Constructing the control-flow graph in the usual way, code
//! straightening and removal of empty nodes are applied to obtain the
//! simplest possible graph").

use crate::op::{CostModel, Op};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a MIMD state (a node in the [`MimdGraph`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct StateId(pub u32);

impl StateId {
    /// The index as a usize, for vector indexing.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// How control leaves a MIMD state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// No exit arc: the process ends here ("A MIMD state with no exit arcs
    /// marks the end of that process"). On SIMD hardware the PE's `pc` is
    /// cleared and it returns to the idle pool (§3.2.5).
    Halt,
    /// One exit arc: unconditional sequencing.
    Jump(StateId),
    /// Two exit arcs: the block's last computed value is popped as the
    /// condition; nonzero goes to `t`, zero to `f` (the paper's
    /// `JumpF(f, t)` stack macro).
    Branch {
        /// Successor when the popped condition is TRUE (nonzero).
        t: StateId,
        /// Successor when the popped condition is FALSE (zero).
        f: StateId,
    },
    /// k-ary multiway branch: pops a selector word and jumps to
    /// `targets[selector]`. Produced by inline-expanded `return`
    /// statements (§2.2), whose target set is computed statically.
    Multi(Vec<StateId>),
    /// Restricted dynamic process creation (§3.2.5): "looks just like a
    /// conditional jump, except the semantics are that both paths must be
    /// taken". The executing process continues at `next`; a recruited idle
    /// PE starts at `child`.
    Spawn {
        /// Entry state of the newly created process.
        child: StateId,
        /// Continuation of the spawning process.
        next: StateId,
    },
}

impl Terminator {
    /// All exit arcs, in a stable order.
    pub fn successors(&self) -> Vec<StateId> {
        match self {
            Terminator::Halt => vec![],
            Terminator::Jump(s) => vec![*s],
            Terminator::Branch { t, f } => vec![*t, *f],
            Terminator::Multi(v) => v.clone(),
            Terminator::Spawn { child, next } => vec![*child, *next],
        }
    }

    /// Rewrite every successor through `f`.
    pub fn map_successors(&mut self, mut f: impl FnMut(StateId) -> StateId) {
        match self {
            Terminator::Halt => {}
            Terminator::Jump(s) => *s = f(*s),
            Terminator::Branch { t, f: fl } => {
                *t = f(*t);
                *fl = f(*fl);
            }
            Terminator::Multi(v) => {
                for s in v.iter_mut() {
                    *s = f(*s);
                }
            }
            Terminator::Spawn { child, next } => {
                *child = f(*child);
                *next = f(*next);
            }
        }
    }

    /// Number of words this terminator pops from the operand stack.
    pub fn pops(&self) -> u32 {
        match self {
            Terminator::Halt | Terminator::Jump(_) | Terminator::Spawn { .. } => 0,
            Terminator::Branch { .. } | Terminator::Multi(_) => 1,
        }
    }
}

/// A MIMD state: one maximal basic block plus its exit behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MimdState {
    /// Straight-line stack code of the block.
    pub ops: Vec<Op>,
    /// Exit arcs.
    pub term: Terminator,
    /// True when entry to this state is a barrier synchronization point
    /// (§2.6): a process reaching it must wait until *all* live processes
    /// are in barrier states before any transition past it.
    pub barrier: bool,
    /// Human-readable label for rendering (e.g. `"B;C"` in Figure 1).
    pub label: String,
}

impl MimdState {
    /// A state with the given code and terminator, no barrier, empty label.
    pub fn new(ops: Vec<Op>, term: Terminator) -> Self {
        MimdState {
            ops,
            term,
            barrier: false,
            label: String::new(),
        }
    }

    /// Builder-style label attachment.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Builder-style barrier flag.
    pub fn with_barrier(mut self) -> Self {
        self.barrier = true;
        self
    }
}

/// Errors detected by [`MimdGraph::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A terminator references a state id that does not exist.
    DanglingArc {
        /// State whose terminator is bad.
        from: StateId,
        /// The nonexistent target.
        to: StateId,
    },
    /// The designated start state does not exist.
    BadStart(StateId),
    /// A `Multi` terminator with no targets (a `return` with no possible
    /// return site).
    EmptyMulti(StateId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DanglingArc { from, to } => {
                write!(f, "state {from} has an arc to nonexistent state {to}")
            }
            GraphError::BadStart(s) => write!(f, "start state {s} does not exist"),
            GraphError::EmptyMulti(s) => write!(f, "state {s} has an empty multiway branch"),
        }
    }
}

impl std::error::Error for GraphError {}

/// The MIMD control-flow graph for an SPMD program.
///
/// Per the paper's SPMD restriction (§1.2), all processes begin execution in
/// the same [`start`](Self::start) state simultaneously; asynchrony arises
/// only from processors computing different branch conditions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MimdGraph {
    /// The states; a [`StateId`] indexes this vector.
    pub states: Vec<MimdState>,
    /// The MIMD start state all processes begin in.
    pub start: StateId,
}

impl MimdGraph {
    /// An empty graph with start pointing at the (future) state 0.
    pub fn new() -> Self {
        MimdGraph {
            states: Vec::new(),
            start: StateId(0),
        }
    }

    /// Append a state, returning its id.
    pub fn add(&mut self, state: MimdState) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states.push(state);
        id
    }

    /// Borrow a state.
    pub fn state(&self, id: StateId) -> &MimdState {
        &self.states[id.idx()]
    }

    /// Mutably borrow a state.
    pub fn state_mut(&mut self, id: StateId) -> &mut MimdState {
        &mut self.states[id.idx()]
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the graph has no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// All state ids.
    pub fn ids(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.states.len() as u32).map(StateId)
    }

    /// Cycle cost of one state's block under `costs`.
    pub fn state_cost(&self, id: StateId, costs: &CostModel) -> u64 {
        costs.block_cost(&self.states[id.idx()].ops)
    }

    /// Check structural invariants.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.start.idx() >= self.states.len() {
            return Err(GraphError::BadStart(self.start));
        }
        for (i, st) in self.states.iter().enumerate() {
            let from = StateId(i as u32);
            if matches!(&st.term, Terminator::Multi(v) if v.is_empty()) {
                return Err(GraphError::EmptyMulti(from));
            }
            for s in st.term.successors() {
                if s.idx() >= self.states.len() {
                    return Err(GraphError::DanglingArc { from, to: s });
                }
            }
        }
        Ok(())
    }

    /// Predecessor counts (how many arcs enter each state; the start state
    /// gets one extra virtual predecessor).
    pub fn pred_counts(&self) -> Vec<u32> {
        let mut preds = vec![0u32; self.states.len()];
        preds[self.start.idx()] += 1;
        for st in &self.states {
            for s in st.term.successors() {
                preds[s.idx()] += 1;
            }
        }
        preds
    }

    /// States reachable from the start state.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.states.len()];
        let mut queue = VecDeque::new();
        if self.start.idx() < self.states.len() {
            seen[self.start.idx()] = true;
            queue.push_back(self.start);
        }
        while let Some(s) = queue.pop_front() {
            for n in self.states[s.idx()].term.successors() {
                if !seen[n.idx()] {
                    seen[n.idx()] = true;
                    queue.push_back(n);
                }
            }
        }
        seen
    }

    /// Code straightening (§2.1, \[CoS70\]): merge `a → b` chains where `a`
    /// ends in an unconditional jump to `b` and `b` has exactly one
    /// predecessor and is not a barrier or the start state. This maximizes
    /// basic-block size, which is the paper's initial state-space reduction.
    ///
    /// Returns the number of merges performed.
    pub fn straighten(&mut self) -> usize {
        let mut merges = 0;
        loop {
            let preds = self.pred_counts();
            let mut merged_this_round = false;
            for i in 0..self.states.len() {
                let a = StateId(i as u32);
                let b = match self.states[i].term {
                    Terminator::Jump(b) => b,
                    _ => continue,
                };
                if b == a || preds[b.idx()] != 1 || b == self.start || self.states[b.idx()].barrier
                {
                    continue;
                }
                // Merge b's code and terminator into a.
                let b_state = self.states[b.idx()].clone();
                let a_state = &mut self.states[i];
                a_state.ops.extend(b_state.ops);
                a_state.term = b_state.term;
                if !b_state.label.is_empty() {
                    if a_state.label.is_empty() {
                        a_state.label = b_state.label;
                    } else {
                        a_state.label = format!("{};{}", a_state.label, b_state.label);
                    }
                }
                // b becomes dead; make it an isolated halt so ids stay stable
                // until compaction.
                self.states[b.idx()] = MimdState::new(vec![], Terminator::Halt);
                merges += 1;
                merged_this_round = true;
            }
            if !merged_this_round {
                break;
            }
        }
        if merges > 0 {
            self.compact();
        }
        merges
    }

    /// Remove empty nodes (§2.1): a state with no code, no barrier, and an
    /// unconditional jump is bypassed — every arc into it is redirected to
    /// its successor. Self-looping empty nodes are kept (they are genuine
    /// spin states). Returns the number of nodes removed.
    pub fn remove_empty(&mut self) -> usize {
        // Resolve chains of empty jumps with path compression.
        let n = self.states.len();
        let mut target: Vec<StateId> = (0..n as u32).map(StateId).collect();
        fn resolve(target: &mut [StateId], s: StateId, graph: &[MimdState]) -> StateId {
            let mut path = vec![];
            let mut cur = s;
            loop {
                if target[cur.idx()] != cur {
                    // Already resolved by an earlier walk.
                    cur = target[cur.idx()];
                    break;
                }
                let st = &graph[cur.idx()];
                let next = match st.term {
                    Terminator::Jump(nx) if st.ops.is_empty() && !st.barrier && nx != cur => nx,
                    _ => break,
                };
                path.push(cur);
                cur = next;
                if path.contains(&cur) {
                    // Cycle of empty nodes; keep as-is.
                    return s;
                }
            }
            for p in path {
                target[p.idx()] = cur;
            }
            cur
        }
        let states_snapshot = self.states.clone();
        for i in 0..n {
            resolve(&mut target, StateId(i as u32), &states_snapshot);
        }
        let removed = (0..n).filter(|&i| target[i] != StateId(i as u32)).count();
        if removed == 0 {
            return 0;
        }
        for st in &mut self.states {
            st.term.map_successors(|s| target[s.idx()]);
        }
        self.start = target[self.start.idx()];
        self.compact();
        removed
    }

    /// Drop unreachable states and renumber the rest densely. Terminators
    /// and the start state are rewritten to the new numbering.
    pub fn compact(&mut self) {
        let reach = self.reachable();
        let mut remap = vec![StateId(u32::MAX); self.states.len()];
        let mut new_states = Vec::with_capacity(self.states.len());
        for (i, keep) in reach.iter().enumerate() {
            if *keep {
                remap[i] = StateId(new_states.len() as u32);
                new_states.push(self.states[i].clone());
            }
        }
        for st in &mut new_states {
            st.term.map_successors(|s| remap[s.idx()]);
        }
        self.start = remap[self.start.idx()];
        self.states = new_states;
    }

    /// Normalize: straighten then remove empty nodes, repeating to a fixed
    /// point ("applied to obtain the simplest possible graph").
    pub fn normalize(&mut self) {
        loop {
            let a = self.straighten();
            let b = self.remove_empty();
            if a + b == 0 {
                break;
            }
        }
    }

    /// Split state `id` into a prefix of at most `budget` cycles and a
    /// suffix holding the remainder (Figures 3–4). The prefix keeps `id`
    /// (so arcs into the state are unchanged) and jumps unconditionally to
    /// the new suffix state, which inherits the original terminator and
    /// barrier-exit behaviour.
    ///
    /// The split point is the op boundary with cumulative cost closest to
    /// `budget` from below, but at least one op stays on each side; if the
    /// block has fewer than two ops, or the first op alone exceeds the
    /// budget and the paper's heuristic would leave an empty prefix, the
    /// split fails and `None` is returned.
    pub fn split_state(&mut self, id: StateId, budget: u64, costs: &CostModel) -> Option<StateId> {
        let ops = &self.states[id.idx()].ops;
        if ops.len() < 2 {
            return None;
        }
        // Find the last boundary with prefix cost <= budget (boundary k means
        // ops[..k] | ops[k..], 1 <= k <= len-1).
        let mut acc = 0u64;
        let mut best: Option<usize> = None;
        for (k, op) in ops.iter().enumerate() {
            acc += costs.op_cost(op) as u64;
            let boundary = k + 1;
            if boundary >= ops.len() {
                break;
            }
            if acc <= budget {
                best = Some(boundary);
            } else {
                break;
            }
        }
        let k = best?;
        let suffix_ops = self.states[id.idx()].ops.split_off(k);
        let orig_term = std::mem::replace(&mut self.states[id.idx()].term, Terminator::Halt);
        let label = self.states[id.idx()].label.clone();
        let suffix = self.add(MimdState {
            ops: suffix_ops,
            term: orig_term,
            barrier: false,
            label: if label.is_empty() {
                String::new()
            } else {
                format!("{label}'")
            },
        });
        self.states[id.idx()].term = Terminator::Jump(suffix);
        if !label.is_empty() {
            self.states[id.idx()].label = format!("{label}\u{2080}");
        }
        Some(suffix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Addr, BinOp};

    fn push_block(n: i64) -> Vec<Op> {
        vec![Op::Push(n), Op::St(Addr::poly(0))]
    }

    /// The Listing 1 state graph of Figure 1, hand-built:
    /// 0:A → {2:B;C, 6:D;E}; 2 → {2, 9:F}; 6 → {6, 9}; 9 → end.
    pub(crate) fn figure1() -> MimdGraph {
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(vec![Op::Ld(Addr::poly(0))], Terminator::Halt).labeled("A"));
        let b = g.add(MimdState::new(vec![Op::Ld(Addr::poly(0))], Terminator::Halt).labeled("B;C"));
        let d = g.add(MimdState::new(vec![Op::Ld(Addr::poly(0))], Terminator::Halt).labeled("D;E"));
        let f = g.add(MimdState::new(vec![], Terminator::Halt).labeled("F"));
        g.state_mut(a).term = Terminator::Branch { t: b, f: d };
        g.state_mut(b).term = Terminator::Branch { t: b, f };
        g.state_mut(d).term = Terminator::Branch { t: d, f };
        g.start = a;
        g
    }

    #[test]
    fn validate_accepts_figure1() {
        assert_eq!(figure1().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_dangling_arc() {
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(vec![], Terminator::Jump(StateId(7))));
        assert_eq!(
            g.validate(),
            Err(GraphError::DanglingArc {
                from: a,
                to: StateId(7)
            })
        );
    }

    #[test]
    fn validate_rejects_bad_start() {
        let g = MimdGraph::new();
        assert_eq!(g.validate(), Err(GraphError::BadStart(StateId(0))));
    }

    #[test]
    fn validate_rejects_empty_multi() {
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(vec![], Terminator::Multi(vec![])));
        assert_eq!(g.validate(), Err(GraphError::EmptyMulti(a)));
    }

    #[test]
    fn straighten_merges_linear_chain() {
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(push_block(1), Terminator::Halt).labeled("a"));
        let b = g.add(MimdState::new(push_block(2), Terminator::Halt).labeled("b"));
        let c = g.add(MimdState::new(push_block(3), Terminator::Halt).labeled("c"));
        g.state_mut(a).term = Terminator::Jump(b);
        g.state_mut(b).term = Terminator::Jump(c);
        g.start = a;
        let merges = g.straighten();
        assert_eq!(merges, 2);
        assert_eq!(g.len(), 1);
        assert_eq!(g.state(g.start).ops.len(), 6);
        assert_eq!(g.state(g.start).label, "a;b;c");
        assert_eq!(g.state(g.start).term, Terminator::Halt);
    }

    #[test]
    fn straighten_keeps_join_points() {
        // a → c, b → c: c has two preds, must not merge.
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(push_block(1), Terminator::Halt));
        let c = g.add(MimdState::new(push_block(3), Terminator::Halt));
        g.state_mut(a).term = Terminator::Branch { t: c, f: c };
        g.start = a;
        assert_eq!(g.straighten(), 0);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn straighten_respects_barriers() {
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(push_block(1), Terminator::Halt));
        let b = g.add(MimdState::new(push_block(2), Terminator::Halt).with_barrier());
        g.state_mut(a).term = Terminator::Jump(b);
        g.start = a;
        assert_eq!(
            g.straighten(),
            0,
            "barrier entry must stay a distinct state"
        );
    }

    #[test]
    fn remove_empty_bypasses_chain() {
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(push_block(1), Terminator::Halt));
        let e1 = g.add(MimdState::new(vec![], Terminator::Halt));
        let e2 = g.add(MimdState::new(vec![], Terminator::Halt));
        let d = g.add(MimdState::new(push_block(2), Terminator::Halt));
        g.state_mut(a).term = Terminator::Branch { t: e1, f: d };
        g.state_mut(e1).term = Terminator::Jump(e2);
        g.state_mut(e2).term = Terminator::Jump(d);
        g.start = a;
        let removed = g.remove_empty();
        assert_eq!(removed, 2);
        assert_eq!(g.len(), 2);
        match g.state(g.start).term {
            Terminator::Branch { t, f } => assert_eq!(t, f),
            ref t => panic!("unexpected terminator {t:?}"),
        }
    }

    #[test]
    fn remove_empty_keeps_empty_self_loop() {
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(vec![], Terminator::Halt));
        g.state_mut(a).term = Terminator::Jump(a);
        g.start = a;
        assert_eq!(g.remove_empty(), 0);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn compact_drops_unreachable() {
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(push_block(1), Terminator::Halt));
        let _dead = g.add(MimdState::new(push_block(2), Terminator::Halt));
        g.start = a;
        g.compact();
        assert_eq!(g.len(), 1);
        assert_eq!(g.start, StateId(0));
    }

    #[test]
    fn split_state_halves_cost() {
        let costs = CostModel::default();
        let mut g = MimdGraph::new();
        // 4 pushes + a store: cost 4*1 + 2 = 6; budget 2 ⇒ prefix = 2 pushes.
        let ops = vec![
            Op::Push(1),
            Op::Push(2),
            Op::Push(3),
            Op::Push(4),
            Op::St(Addr::poly(0)),
        ];
        let a = g.add(MimdState::new(ops, Terminator::Halt).labeled("β"));
        g.start = a;
        let suffix = g.split_state(a, 2, &costs).expect("splittable");
        assert_eq!(g.state(a).ops.len(), 2);
        assert_eq!(g.state(a).term, Terminator::Jump(suffix));
        assert_eq!(g.state(suffix).ops.len(), 3);
        assert_eq!(g.state(suffix).term, Terminator::Halt);
        assert_eq!(g.state_cost(a, &costs), 2);
        assert_eq!(g.state_cost(a, &costs) + g.state_cost(suffix, &costs), 6);
    }

    #[test]
    fn split_state_preserves_branch_terminator() {
        let costs = CostModel::default();
        let mut g = MimdGraph::new();
        let ops = vec![
            Op::Push(1),
            Op::Push(2),
            Op::Bin(BinOp::Add),
            Op::Ld(Addr::poly(0)),
        ];
        let a = g.add(MimdState::new(ops, Terminator::Halt));
        let b = g.add(MimdState::new(vec![], Terminator::Halt));
        g.state_mut(a).term = Terminator::Branch { t: a, f: b };
        g.start = a;
        let suffix = g.split_state(a, 2, &costs).unwrap();
        assert!(matches!(g.state(suffix).term, Terminator::Branch { .. }));
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn split_state_refuses_single_op() {
        let costs = CostModel::default();
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(vec![Op::Push(1)], Terminator::Halt));
        g.start = a;
        assert_eq!(g.split_state(a, 100, &costs), None);
    }

    #[test]
    fn split_refuses_when_budget_below_first_op() {
        let costs = CostModel::default();
        let mut g = MimdGraph::new();
        // First op costs 16 (div); budget 2 cannot make a non-empty prefix.
        let a = g.add(MimdState::new(
            vec![Op::Bin(BinOp::Div), Op::Push(1)],
            Terminator::Halt,
        ));
        g.start = a;
        assert_eq!(g.split_state(a, 2, &costs), None);
    }

    #[test]
    fn normalize_is_idempotent() {
        let mut g = figure1();
        g.normalize();
        let snap = g.clone();
        g.normalize();
        assert_eq!(g, snap);
    }

    #[test]
    fn pred_counts_match_figure1() {
        let g = figure1();
        let p = g.pred_counts();
        // start(A): 1 virtual; B: A + self = 2; D: 2; F: from B and D = 2.
        assert_eq!(p, vec![1, 2, 2, 2]);
    }
}
