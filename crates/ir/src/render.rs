//! Text and Graphviz renderings of MIMD state graphs, used by the
//! figure-regeneration binaries (Figures 1, 3, 4 of the paper) and for
//! debugging.

use crate::graph::{MimdGraph, Terminator};
use crate::op::CostModel;
use std::fmt::Write as _;

/// Render a graph as indented text, one state per line:
///
/// ```text
/// s0 [A] cost=2 -> T:s1 F:s2
/// s1 [B;C] cost=5 -> T:s1 F:s3
/// ```
pub fn text(graph: &MimdGraph, costs: &CostModel) -> String {
    let mut out = String::new();
    for id in graph.ids() {
        let st = graph.state(id);
        let _ = write!(out, "{id}");
        if !st.label.is_empty() {
            let _ = write!(out, " [{}]", st.label);
        }
        if st.barrier {
            let _ = write!(out, " (barrier)");
        }
        let _ = write!(out, " cost={}", graph.state_cost(id, costs));
        match &st.term {
            Terminator::Halt => {
                let _ = write!(out, " -> end");
            }
            Terminator::Jump(s) => {
                let _ = write!(out, " -> {s}");
            }
            Terminator::Branch { t, f } => {
                let _ = write!(out, " -> T:{t} F:{f}");
            }
            Terminator::Multi(v) => {
                let _ = write!(out, " -> multi[");
                for (i, s) in v.iter().enumerate() {
                    if i > 0 {
                        let _ = write!(out, ",");
                    }
                    let _ = write!(out, "{s}");
                }
                let _ = write!(out, "]");
            }
            Terminator::Spawn { child, next } => {
                let _ = write!(out, " -> spawn:{child} next:{next}");
            }
        }
        if id == graph.start {
            let _ = write!(out, "  <- start");
        }
        out.push('\n');
    }
    out
}

/// Render a graph in Graphviz `dot` syntax. Barrier states are drawn as
/// double octagons, TRUE arcs solid, FALSE arcs dashed, spawn arcs dotted.
pub fn dot(graph: &MimdGraph, costs: &CostModel) -> String {
    let mut out = String::from("digraph mimd {\n  rankdir=TB;\n  node [shape=box];\n");
    for id in graph.ids() {
        let st = graph.state(id);
        let label = if st.label.is_empty() {
            format!("{id}")
        } else {
            format!("{id}: {}", st.label)
        };
        let shape = if st.barrier {
            " shape=doubleoctagon"
        } else {
            ""
        };
        let start = if id == graph.start { " penwidth=2" } else { "" };
        let _ = writeln!(
            out,
            "  {} [label=\"{label}\\ncost={}\"{shape}{start}];",
            id.0,
            graph.state_cost(id, costs)
        );
    }
    for id in graph.ids() {
        let st = graph.state(id);
        match &st.term {
            Terminator::Halt => {}
            Terminator::Jump(s) => {
                let _ = writeln!(out, "  {} -> {};", id.0, s.0);
            }
            Terminator::Branch { t, f } => {
                let _ = writeln!(out, "  {} -> {} [label=T];", id.0, t.0);
                let _ = writeln!(out, "  {} -> {} [label=F style=dashed];", id.0, f.0);
            }
            Terminator::Multi(v) => {
                for (i, s) in v.iter().enumerate() {
                    let _ = writeln!(out, "  {} -> {} [label=\"ret {i}\"];", id.0, s.0);
                }
            }
            Terminator::Spawn { child, next } => {
                let _ = writeln!(out, "  {} -> {} [label=spawn style=dotted];", id.0, child.0);
                let _ = writeln!(out, "  {} -> {};", id.0, next.0);
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{MimdGraph, MimdState, Terminator};
    use crate::op::{Addr, Op};

    fn sample() -> MimdGraph {
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(vec![Op::Ld(Addr::poly(0))], Terminator::Halt).labeled("A"));
        let b = g.add(
            MimdState::new(vec![], Terminator::Halt)
                .labeled("F")
                .with_barrier(),
        );
        g.state_mut(a).term = Terminator::Branch { t: a, f: b };
        g.start = a;
        g
    }

    #[test]
    fn text_mentions_every_state_and_arcs() {
        let s = text(&sample(), &CostModel::default());
        assert!(s.contains("s0 [A]"));
        assert!(s.contains("T:s0 F:s1"));
        assert!(s.contains("(barrier)"));
        assert!(s.contains("<- start"));
        assert!(s.contains("-> end"));
    }

    #[test]
    fn dot_is_well_formed() {
        let d = dot(&sample(), &CostModel::default());
        assert!(d.starts_with("digraph"));
        assert!(d.trim_end().ends_with('}'));
        assert!(d.contains("doubleoctagon"));
        assert!(d.contains("label=T"));
        assert!(d.contains("style=dashed"));
    }

    #[test]
    fn dot_renders_multi_and_spawn() {
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(vec![], Terminator::Halt));
        let b = g.add(MimdState::new(vec![], Terminator::Halt));
        let c = g.add(MimdState::new(
            vec![Op::Push(0)],
            Terminator::Multi(vec![a, b]),
        ));
        g.state_mut(a).term = Terminator::Spawn { child: b, next: c };
        g.start = a;
        let d = dot(&g, &CostModel::default());
        assert!(d.contains("ret 0"));
        assert!(d.contains("ret 1"));
        assert!(d.contains("label=spawn"));
    }
}
