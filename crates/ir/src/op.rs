//! Stack-machine operations executed inside a MIMD basic block, and the
//! cycle cost model that drives time splitting (§2.4) and all simulator
//! accounting.
//!
//! The instruction set mirrors the MPL stack macros visible in the paper's
//! Listing 5 (`Push`, `LdL`, `StL`, `Pop`, `JumpF`, `Ret`) extended with the
//! MIMDC language features of §4.1: `mono` (replicated/shared) versus `poly`
//! (private) storage and "parallel subscripting" — direct access to another
//! processor's `poly` values through the router.
//!
//! Values are 64-bit words. `float` values are stored as the raw bits of an
//! `f64` and reinterpreted by the floating-point operators; this keeps the
//! per-PE operand stack a single homogeneous `Vec<i64>` exactly like a real
//! word-addressed SIMD PE.

use std::fmt;

/// Which address space a memory reference touches (§4.1 of the paper).
///
/// `mono` variables are replicated in each processor's local memory: loads
/// are local and fast, stores broadcast to every copy. `poly` variables are
/// private per processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Space {
    /// Shared variable, replicated per PE; stores broadcast.
    Mono,
    /// Private per-PE variable.
    Poly,
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Space::Mono => write!(f, "mono"),
            Space::Poly => write!(f, "poly"),
        }
    }
}

/// A word address within one of the two address spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr {
    /// Address space the slot lives in.
    pub space: Space,
    /// Word index within the space.
    pub index: u32,
}

impl Addr {
    /// A `poly` (per-PE private) address.
    pub const fn poly(index: u32) -> Self {
        Addr {
            space: Space::Poly,
            index,
        }
    }

    /// A `mono` (replicated shared) address.
    pub const fn mono(index: u32) -> Self {
        Addr {
            space: Space::Mono,
            index,
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.space {
            Space::Mono => write!(f, "m{}", self.index),
            Space::Poly => write!(f, "p{}", self.index),
        }
    }
}

/// Binary operators. Both integer and floating variants are provided so the
/// cost model can price them differently (the paper's §2.4 motivates time
/// splitting with "instruction sets in which even the execution time of
/// different types of instruction varies widely").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Floating add on f64 bit patterns.
    FAdd,
    FSub,
    FMul,
    FDiv,
    FLt,
    FLe,
    FGt,
    FGe,
    FEq,
    FNe,
}

impl BinOp {
    /// True when the operator consumes/produces floating-point bit patterns.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::FAdd
                | BinOp::FSub
                | BinOp::FMul
                | BinOp::FDiv
                | BinOp::FLt
                | BinOp::FLe
                | BinOp::FGt
                | BinOp::FGe
                | BinOp::FEq
                | BinOp::FNe
        )
    }

    /// Apply the operator to two words. Integer division by zero yields 0
    /// (the simulated machine traps to a benign value rather than aborting
    /// the whole SIMD array).
    pub fn apply(self, a: i64, b: i64) -> i64 {
        fn fb(x: i64) -> f64 {
            f64::from_bits(x as u64)
        }
        fn bf(x: f64) -> i64 {
            x.to_bits() as i64
        }
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & 63),
            BinOp::Shr => a.wrapping_shr(b as u32 & 63),
            BinOp::Eq => (a == b) as i64,
            BinOp::Ne => (a != b) as i64,
            BinOp::Lt => (a < b) as i64,
            BinOp::Le => (a <= b) as i64,
            BinOp::Gt => (a > b) as i64,
            BinOp::Ge => (a >= b) as i64,
            BinOp::FAdd => bf(fb(a) + fb(b)),
            BinOp::FSub => bf(fb(a) - fb(b)),
            BinOp::FMul => bf(fb(a) * fb(b)),
            BinOp::FDiv => bf(fb(a) / fb(b)),
            BinOp::FLt => (fb(a) < fb(b)) as i64,
            BinOp::FLe => (fb(a) <= fb(b)) as i64,
            BinOp::FGt => (fb(a) > fb(b)) as i64,
            BinOp::FGe => (fb(a) >= fb(b)) as i64,
            BinOp::FEq => (fb(a) == fb(b)) as i64,
            BinOp::FNe => (fb(a) != fb(b)) as i64,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::FAdd => "+.",
            BinOp::FSub => "-.",
            BinOp::FMul => "*.",
            BinOp::FDiv => "/.",
            BinOp::FLt => "<.",
            BinOp::FLe => "<=.",
            BinOp::FGt => ">.",
            BinOp::FGe => ">=.",
            BinOp::FEq => "==.",
            BinOp::FNe => "!=.",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Logical not (`!x`): 1 if zero, else 0.
    Not,
    /// Bitwise complement.
    BitNot,
    /// Floating negation on f64 bit patterns.
    FNeg,
    /// Convert integer word to f64 bit pattern.
    IntToFloat,
    /// Truncate f64 bit pattern to integer word.
    FloatToInt,
}

impl UnOp {
    /// Apply the operator to one word.
    pub fn apply(self, a: i64) -> i64 {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => (a == 0) as i64,
            UnOp::BitNot => !a,
            UnOp::FNeg => (-f64::from_bits(a as u64)).to_bits() as i64,
            UnOp::IntToFloat => (a as f64).to_bits() as i64,
            UnOp::FloatToInt => f64::from_bits(a as u64) as i64,
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::BitNot => "bnot",
            UnOp::FNeg => "fneg",
            UnOp::IntToFloat => "i2f",
            UnOp::FloatToInt => "f2i",
        };
        write!(f, "{s}")
    }
}

/// One straight-line stack instruction inside a basic block.
///
/// Control transfer is *not* an [`Op`]: a block's exit behaviour lives in its
/// [`crate::graph::Terminator`], because the meta-state conversion reasons
/// about exit arcs, not about instructions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// Push an immediate word.
    Push(i64),
    /// Push an f64 immediate (stored as bits).
    PushF(u64),
    /// Push a copy of the top of stack.
    Dup,
    /// Pop `n` words.
    Pop(u8),
    /// Push the value at `addr` (local copy for `mono`).
    Ld(Addr),
    /// Pop a value and store it at `addr`. For `mono` this is a broadcast
    /// store updating every PE's copy.
    St(Addr),
    /// Pop a PE index, push the `poly` value at `addr` on that PE
    /// (parallel subscript read, `x[[j]]`).
    LdRemote(Addr),
    /// Pop a PE index, pop a value, store into `addr` on that PE
    /// (parallel subscript write, `x[[i]] = v`).
    StRemote(Addr),
    /// Apply a binary operator to the top two words (`… a b → … (a op b)`).
    Bin(BinOp),
    /// Apply a unary operator to the top word.
    Un(UnOp),
    /// Push this processor's id (MIMDC built-in `pe_id()`).
    PeId,
    /// Push the number of processors (MIMDC built-in `nproc()`).
    NProc,
    /// Pop a return-site index and push it on the per-PE call stack
    /// (supports §2.2's inline-expanded function returns).
    PushRet,
    /// Pop the top of the per-PE call stack and push it on the operand
    /// stack; consumed by a `Terminator::Multi` return dispatch.
    PopRet,
}

impl Op {
    /// Net change this op makes to the operand stack depth.
    pub fn stack_delta(&self) -> i32 {
        match self {
            Op::Push(_) | Op::PushF(_) | Op::Dup | Op::PeId | Op::NProc | Op::PopRet => 1,
            Op::Pop(n) => -(*n as i32),
            Op::Ld(_) => 1,
            Op::St(_) => -1,
            Op::LdRemote(_) => 0,
            Op::StRemote(_) => -2,
            Op::Bin(_) => -1,
            Op::Un(_) => 0,
            Op::PushRet => -1,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Push(v) => write!(f, "Push({v})"),
            Op::PushF(b) => write!(f, "PushF({})", f64::from_bits(*b)),
            Op::Dup => write!(f, "Dup"),
            Op::Pop(n) => write!(f, "Pop({n})"),
            Op::Ld(a) => write!(f, "Ld({a})"),
            Op::St(a) => write!(f, "St({a})"),
            Op::LdRemote(a) => write!(f, "LdRemote({a})"),
            Op::StRemote(a) => write!(f, "StRemote({a})"),
            Op::Bin(b) => write!(f, "Bin({b})"),
            Op::Un(u) => write!(f, "Un({u})"),
            Op::PeId => write!(f, "PeId"),
            Op::NProc => write!(f, "NProc"),
            Op::PushRet => write!(f, "PushRet"),
            Op::PopRet => write!(f, "PopRet"),
        }
    }
}

/// Coarse operation classes, used by the CSI scheduler (\[Die92\]) for search
/// pruning and by the statistics in the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Stack shuffling and immediates.
    Stack,
    /// Integer ALU.
    IntAlu,
    /// Floating-point unit.
    FloatAlu,
    /// Local memory traffic.
    Memory,
    /// Router / broadcast communication.
    Comm,
    /// Call-stack bookkeeping.
    Control,
}

impl Op {
    /// The operation class of this op.
    pub fn class(&self) -> OpClass {
        match self {
            Op::Push(_) | Op::PushF(_) | Op::Dup | Op::Pop(_) | Op::PeId | Op::NProc => {
                OpClass::Stack
            }
            Op::Bin(b) if b.is_float() => OpClass::FloatAlu,
            Op::Bin(_) => OpClass::IntAlu,
            Op::Un(u) => match u {
                UnOp::FNeg | UnOp::IntToFloat | UnOp::FloatToInt => OpClass::FloatAlu,
                _ => OpClass::IntAlu,
            },
            Op::Ld(_) => OpClass::Memory,
            Op::St(a) if a.space == Space::Poly => OpClass::Memory,
            Op::St(_) => OpClass::Comm, // mono store broadcasts
            Op::LdRemote(_) | Op::StRemote(_) => OpClass::Comm,
            Op::PushRet | Op::PopRet => OpClass::Control,
        }
    }
}

/// Cycle costs for every instruction, the "execution time associated with
/// each MIMD state" that §2.4's time-splitting heuristic consumes.
///
/// The defaults model a MasPar-class machine: single-cycle stack ops, a
/// multi-cycle multiplier/divider, 2-cycle local memory, an expensive router
/// hop for parallel subscripts, and a broadcast for `mono` stores. All
/// fields are public so experiments can sweep them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Push/Pop/Dup/PeId/NProc.
    pub stack: u32,
    /// Integer add/sub/logical/compare.
    pub int_simple: u32,
    /// Integer multiply.
    pub int_mul: u32,
    /// Integer divide/remainder.
    pub int_div: u32,
    /// Floating add/sub/compare.
    pub float_simple: u32,
    /// Floating multiply.
    pub float_mul: u32,
    /// Floating divide.
    pub float_div: u32,
    /// Local (poly, or mono read) memory access.
    pub mem_local: u32,
    /// Router hop for `LdRemote`/`StRemote`.
    pub comm_remote: u32,
    /// Broadcast for a `mono` store.
    pub comm_broadcast: u32,
    /// Call-stack push/pop.
    pub control: u32,
    /// Cost of one meta-state dispatch: `globalor` reduction + hashed
    /// multiway branch (§3.2.3).
    pub dispatch: u32,
    /// Cost of changing the PE enable mask between differently-guarded
    /// instruction groups inside a meta state (priced by the CSI scheduler).
    pub guard_switch: u32,
    /// Per-instruction fetch+decode overhead charged by the *interpreter*
    /// baseline of §1.1 (zero for meta-state code, which has no fetch).
    pub interp_fetch_decode: u32,
    /// Loop-back overhead per interpreter dispatch round (§1.1 problem 3).
    pub interp_loop: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            stack: 1,
            int_simple: 1,
            int_mul: 4,
            int_div: 16,
            float_simple: 4,
            float_mul: 6,
            float_div: 24,
            mem_local: 2,
            comm_remote: 20,
            comm_broadcast: 10,
            control: 2,
            dispatch: 8,
            guard_switch: 1,
            interp_fetch_decode: 4,
            interp_loop: 2,
        }
    }
}

impl CostModel {
    /// Cycle cost of a single straight-line op.
    pub fn op_cost(&self, op: &Op) -> u32 {
        match op {
            Op::Push(_) | Op::PushF(_) | Op::Dup | Op::Pop(_) | Op::PeId | Op::NProc => self.stack,
            Op::Bin(b) => match b {
                BinOp::Mul => self.int_mul,
                BinOp::Div | BinOp::Rem => self.int_div,
                BinOp::FMul => self.float_mul,
                BinOp::FDiv => self.float_div,
                b if b.is_float() => self.float_simple,
                _ => self.int_simple,
            },
            Op::Un(u) => match u {
                UnOp::FNeg | UnOp::IntToFloat | UnOp::FloatToInt => self.float_simple,
                _ => self.int_simple,
            },
            Op::Ld(_) => self.mem_local,
            Op::St(a) => match a.space {
                Space::Poly => self.mem_local,
                Space::Mono => self.comm_broadcast,
            },
            Op::LdRemote(_) | Op::StRemote(_) => self.comm_remote,
            Op::PushRet | Op::PopRet => self.control,
        }
    }

    /// Total cycle cost of a straight-line op sequence.
    pub fn block_cost(&self, ops: &[Op]) -> u64 {
        ops.iter().map(|o| self.op_cost(o) as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_integer_semantics() {
        assert_eq!(BinOp::Add.apply(2, 3), 5);
        assert_eq!(BinOp::Sub.apply(2, 3), -1);
        assert_eq!(BinOp::Mul.apply(-4, 3), -12);
        assert_eq!(BinOp::Div.apply(7, 2), 3);
        assert_eq!(BinOp::Div.apply(7, 0), 0, "div-by-zero traps to 0");
        assert_eq!(BinOp::Rem.apply(7, 0), 0, "rem-by-zero traps to 0");
        assert_eq!(BinOp::Lt.apply(1, 2), 1);
        assert_eq!(BinOp::Ge.apply(1, 2), 0);
        assert_eq!(BinOp::Shl.apply(1, 65), 2, "shift amounts wrap mod 64");
    }

    #[test]
    fn binop_float_roundtrip() {
        let a = 1.5f64.to_bits() as i64;
        let b = 2.25f64.to_bits() as i64;
        let sum = BinOp::FAdd.apply(a, b);
        assert_eq!(f64::from_bits(sum as u64), 3.75);
        assert_eq!(BinOp::FLt.apply(a, b), 1);
        assert_eq!(BinOp::FEq.apply(a, a), 1);
    }

    #[test]
    fn unop_semantics() {
        assert_eq!(UnOp::Neg.apply(5), -5);
        assert_eq!(UnOp::Not.apply(0), 1);
        assert_eq!(UnOp::Not.apply(7), 0);
        assert_eq!(UnOp::BitNot.apply(0), -1);
        let f = UnOp::IntToFloat.apply(3);
        assert_eq!(f64::from_bits(f as u64), 3.0);
        assert_eq!(UnOp::FloatToInt.apply(f), 3);
    }

    #[test]
    fn stack_deltas_balance_simple_sequences() {
        // x = 1;  ≡  Push(1) St(p0) — net 0.
        let seq = [Op::Push(1), Op::St(Addr::poly(0))];
        let net: i32 = seq.iter().map(Op::stack_delta).sum();
        assert_eq!(net, 0);
        // cond eval leaves 1: Ld(p0) — net 1.
        assert_eq!(Op::Ld(Addr::poly(0)).stack_delta(), 1);
    }

    #[test]
    fn default_costs_are_ordered_sensibly() {
        let c = CostModel::default();
        assert!(c.int_mul > c.int_simple);
        assert!(c.int_div > c.int_mul);
        assert!(c.float_div > c.float_mul);
        assert!(c.comm_remote > c.mem_local);
        assert!(c.comm_broadcast > c.mem_local);
    }

    #[test]
    fn mono_store_costs_broadcast() {
        let c = CostModel::default();
        assert_eq!(c.op_cost(&Op::St(Addr::mono(0))), c.comm_broadcast);
        assert_eq!(c.op_cost(&Op::St(Addr::poly(0))), c.mem_local);
    }

    #[test]
    fn block_cost_sums() {
        let c = CostModel::default();
        let ops = vec![
            Op::Push(1),
            Op::Push(2),
            Op::Bin(BinOp::Mul),
            Op::St(Addr::poly(0)),
        ];
        assert_eq!(
            c.block_cost(&ops),
            (2 * c.stack + c.int_mul + c.mem_local) as u64
        );
    }

    #[test]
    fn op_classes() {
        assert_eq!(Op::Push(1).class(), OpClass::Stack);
        assert_eq!(Op::Bin(BinOp::Add).class(), OpClass::IntAlu);
        assert_eq!(Op::Bin(BinOp::FMul).class(), OpClass::FloatAlu);
        assert_eq!(Op::Ld(Addr::poly(0)).class(), OpClass::Memory);
        assert_eq!(Op::St(Addr::mono(0)).class(), OpClass::Comm);
        assert_eq!(Op::LdRemote(Addr::poly(0)).class(), OpClass::Comm);
        assert_eq!(Op::PushRet.class(), OpClass::Control);
    }
}
