//! # msc-ir — the MIMD intermediate representation
//!
//! This crate defines the program form that the rest of the Meta-State
//! Conversion (MSC) pipeline operates on, following §2.1 of Dietz,
//! *Meta-State Conversion* (Purdue TR-EE 93-6, 1993):
//!
//! > "the code for the MIMD processes is converted into a set of control
//! > flow graphs in which each node (MIMD state) represents a basic block.
//! > Each of these MIMD states has zero, one, or two exit arcs."
//!
//! The pieces:
//!
//! * [`op`] — the stack-machine instruction set executed inside a basic
//!   block, together with the [`op::CostModel`] that assigns every
//!   instruction a cycle cost (the timing base for §2.4's time splitting).
//! * [`graph`] — [`graph::MimdGraph`]: the MIMD state graph. Nodes are
//!   maximal basic blocks with an exit [`graph::Terminator`]; the graph
//!   also records barrier-wait states (§2.6) and spawn states (§3.2.5).
//!   Includes the normalization passes the paper applies before
//!   conversion: code straightening and empty-node removal.
//! * [`render`] — human-readable and Graphviz renderings of state graphs,
//!   used by the figure-regeneration binaries.
//! * [`util`] — a fast integer hasher (Fx-style) and interning helpers
//!   used throughout the pipeline.
//!
//! The IR is deliberately close to the MPL stack code in the paper's
//! Listing 5 (`Push`, `LdL`, `StL`, `JumpF`, …) so that generated SIMD
//! programs are recognizably the same shape as the prototype's output.

pub mod graph;
pub mod op;
pub mod opt;
pub mod render;
pub mod util;

pub use graph::{MimdGraph, MimdState, StateId, Terminator};
pub use op::{Addr, BinOp, CostModel, Op, OpClass, Space, UnOp};
