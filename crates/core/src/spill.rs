//! Out-of-core storage for the 3ⁿ frontier.
//!
//! Subset construction's memory is dominated by two append-mostly
//! streams: the interned meta-state sets (the [`SetArena`](crate::SetArena)
//! word stream) and the BFS worklist. Both are written once and read back
//! roughly in order, which is the easy case for external memory: spill a
//! cold *prefix* to a temp-file segment store, keep the hot suffix
//! resident, and reload segments on demand with explicit reads — no mmap,
//! no unsafe, std only.
//!
//! * [`SegmentStore`] — an append-only temp file of `u64` words with
//!   positioned reads. Created lazily on first eviction, deleted on drop.
//!   Word offsets are *stable*: logical word `i` of the stream always
//!   lands at byte `8·i`, because evictions always spill a contiguous
//!   prefix in order.
//! * [`SpillQueue`] — a FIFO of `u32` ids whose middle section lives in
//!   chunked segments on disk: a resident front (oldest), spilled chunks,
//!   and a resident back (newest). Pop order is exactly the push order at
//!   any spill threshold.
//!
//! **Recovery semantics:** spill files are private to one conversion and
//! carry no cross-run state — a crash leaves at worst an orphaned
//! `msc-spill-*` file in the temp dir (best-effort deleted on drop). Any
//! I/O error while spilling disables further spilling and keeps data
//! resident, so running out of disk degrades to the old all-in-RAM
//! behaviour instead of corrupting the conversion; an I/O error while
//! *reloading* already-spilled words panics, since the data exists nowhere
//! else (this mirrors what an allocation failure would have done in-RAM).
//!
//! The budget that triggers spilling comes from
//! [`ConvertOptions::memory_budget`](crate::ConvertOptions) or, by
//! default, the `MSC_MEMORY_BUDGET` environment variable (bytes, with
//! optional `k`/`m`/`g` suffix) — which is how CI runs the whole tier-1
//! suite with a tiny budget to exercise this path end to end.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Parse a byte count with an optional `k`/`m`/`g` (or `kb`/`mb`/`gb`,
/// any case) suffix: `"65536"`, `"64k"`, `"8M"`, `"1gb"`.
pub fn parse_bytes(s: &str) -> Option<usize> {
    let t = s.trim().to_ascii_lowercase();
    let (digits, mult) = match t.trim_end_matches(['k', 'm', 'g', 'b']) {
        d if t.ends_with('k') || t.ends_with("kb") => (d, 1usize << 10),
        d if t.ends_with('m') || t.ends_with("mb") => (d, 1 << 20),
        d if t.ends_with('g') || t.ends_with("gb") => (d, 1 << 30),
        d if d.len() == t.len() => (d, 1),
        _ => return None, // a bare "b" suffix or similar
    };
    let n: usize = digits.parse().ok()?;
    n.checked_mul(mult)
}

/// The process-wide default memory budget: `MSC_MEMORY_BUDGET` parsed once
/// via [`parse_bytes`], `None` when unset or unparsable.
pub fn default_memory_budget() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("MSC_MEMORY_BUDGET")
            .ok()
            .and_then(|v| parse_bytes(&v))
    })
}

/// An append-only temp file of `u64` words with positioned reads.
pub struct SegmentStore {
    file: File,
    path: PathBuf,
    bytes: u64,
    /// Reusable I/O staging buffer (words ↔ little-endian bytes).
    buf: Vec<u8>,
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("path", &self.path)
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl SegmentStore {
    /// Create a fresh store as `msc-spill-<pid>-<n>-<tag>.seg` in the
    /// system temp dir. The file is deleted when the store is dropped.
    pub fn create(tag: &str) -> std::io::Result<SegmentStore> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "msc-spill-{}-{}-{}.seg",
            std::process::id(),
            n,
            tag
        ));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        Ok(SegmentStore {
            file,
            path,
            bytes: 0,
            buf: Vec::new(),
        })
    }

    /// Bytes appended so far.
    pub fn len(&self) -> u64 {
        self.bytes
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    /// Append `words` at the end, returning the byte offset they start at.
    pub fn append_words(&mut self, words: &[u64]) -> std::io::Result<u64> {
        let off = self.bytes;
        self.buf.clear();
        self.buf.reserve(words.len() * 8);
        for &w in words {
            self.buf.extend_from_slice(&w.to_le_bytes());
        }
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(&self.buf)?;
        self.bytes += self.buf.len() as u64;
        Ok(off)
    }

    /// Read `out.len()` words starting at `byte_off`.
    pub fn read_words(&mut self, byte_off: u64, out: &mut [u64]) -> std::io::Result<()> {
        self.buf.clear();
        self.buf.resize(out.len() * 8, 0);
        self.file.seek(SeekFrom::Start(byte_off))?;
        self.file.read_exact(&mut self.buf)?;
        for (i, w) in out.iter_mut().enumerate() {
            *w = u64::from_le_bytes(self.buf[i * 8..i * 8 + 8].try_into().unwrap());
        }
        Ok(())
    }
}

impl Drop for SegmentStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Entries per spilled [`SpillQueue`] chunk (32 KiB of ids).
const QUEUE_CHUNK: usize = 8192;

/// A FIFO of `u32` ids whose cold middle lives on disk.
///
/// Layout (oldest → newest): `front` (resident) → `chunks` (on disk, in
/// order) → `back` (resident). With spilling disabled it degenerates to a
/// plain `VecDeque`.
#[derive(Debug)]
pub struct SpillQueue {
    front: VecDeque<u32>,
    back: Vec<u32>,
    /// `(byte offset, entry count)` per spilled chunk, oldest first.
    chunks: VecDeque<(u64, u32)>,
    store: Option<SegmentStore>,
    spill: bool,
    chunk_entries: usize,
    len: usize,
}

impl SpillQueue {
    /// A queue that spills once its resident tail reaches the default
    /// chunk size (when `spill` is true) or never does (false).
    pub fn new(spill: bool) -> SpillQueue {
        SpillQueue::with_chunk(spill, QUEUE_CHUNK)
    }

    /// [`SpillQueue::new`] with an explicit chunk size (tests).
    pub fn with_chunk(spill: bool, chunk_entries: usize) -> SpillQueue {
        SpillQueue {
            front: VecDeque::new(),
            back: Vec::new(),
            chunks: VecDeque::new(),
            store: None,
            spill,
            chunk_entries: chunk_entries.max(2),
            len: 0,
        }
    }

    /// Number of queued entries (resident + spilled).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueue at the tail.
    pub fn push_back(&mut self, v: u32) {
        self.len += 1;
        if !self.spill {
            self.front.push_back(v);
            return;
        }
        self.back.push(v);
        if self.back.len() >= self.chunk_entries {
            self.flush_back();
        }
    }

    /// Dequeue from the head (FIFO).
    pub fn pop_front(&mut self) -> Option<u32> {
        if self.front.is_empty() {
            if let Some((off, count)) = self.chunks.pop_front() {
                self.load_chunk(off, count);
            } else if !self.back.is_empty() {
                self.front.extend(self.back.drain(..));
            }
        }
        let v = self.front.pop_front();
        if v.is_some() {
            self.len -= 1;
        }
        v
    }

    /// Spill the resident tail as one chunk. On any I/O failure the queue
    /// falls back to resident-only operation (data is never lost).
    fn flush_back(&mut self) {
        let store = match &mut self.store {
            Some(s) => s,
            None => match SegmentStore::create("worklist") {
                Ok(s) => self.store.insert(s),
                Err(_) => {
                    self.spill = false;
                    return;
                }
            },
        };
        // Pack two ids per word; odd tails are padded with a zero that the
        // entry count makes unambiguous.
        let words: Vec<u64> = self
            .back
            .chunks(2)
            .map(|c| (c[0] as u64) | ((c.get(1).copied().unwrap_or(0) as u64) << 32))
            .collect();
        match store.append_words(&words) {
            Ok(off) => {
                msc_obs::count("convert.spill_bytes", (words.len() * 8) as u64);
                self.chunks.push_back((off, self.back.len() as u32));
                self.back.clear();
            }
            Err(_) => self.spill = false,
        }
    }

    /// Reload one spilled chunk into the resident front.
    fn load_chunk(&mut self, off: u64, count: u32) {
        let store = self.store.as_mut().expect("chunk recorded without store");
        let mut words = vec![0u64; (count as usize).div_ceil(2)];
        store
            .read_words(off, &mut words)
            .expect("spilled worklist chunk must be readable");
        msc_obs::count("engine.spill_reload", 1);
        for i in 0..count as usize {
            let w = words[i / 2];
            self.front.push_back(if i % 2 == 0 {
                w as u32
            } else {
                (w >> 32) as u32
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_bytes_understands_suffixes() {
        assert_eq!(parse_bytes("65536"), Some(65536));
        assert_eq!(parse_bytes("64k"), Some(64 << 10));
        assert_eq!(parse_bytes("64KB"), Some(64 << 10));
        assert_eq!(parse_bytes(" 8M "), Some(8 << 20));
        assert_eq!(parse_bytes("1g"), Some(1 << 30));
        assert_eq!(parse_bytes("2gb"), Some(2 << 30));
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("k"), None);
        assert_eq!(parse_bytes("12q"), None);
        assert_eq!(parse_bytes("-1"), None);
    }

    #[test]
    fn segment_store_roundtrips_words() {
        let mut s = SegmentStore::create("test").unwrap();
        let a = s.append_words(&[1, 2, 3]).unwrap();
        let b = s.append_words(&[u64::MAX, 0x0123_4567_89ab_cdef]).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 24);
        assert_eq!(s.len(), 40);
        let mut out = [0u64; 2];
        s.read_words(b, &mut out).unwrap();
        assert_eq!(out, [u64::MAX, 0x0123_4567_89ab_cdef]);
        let mut out = [0u64; 3];
        s.read_words(a, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    fn segment_store_file_is_removed_on_drop() {
        let s = SegmentStore::create("droptest").unwrap();
        let path = s.path.clone();
        assert!(path.exists());
        drop(s);
        assert!(!path.exists());
    }

    #[test]
    fn spill_queue_is_fifo_across_chunk_boundaries() {
        for &(spill, chunk) in &[(false, 4usize), (true, 4), (true, 7), (true, 1000)] {
            let mut q = SpillQueue::with_chunk(spill, chunk);
            let n = 100u32;
            for i in 0..n {
                q.push_back(i);
            }
            assert_eq!(q.len(), n as usize);
            for i in 0..n {
                assert_eq!(q.pop_front(), Some(i), "spill={spill} chunk={chunk}");
            }
            assert_eq!(q.pop_front(), None);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn spill_queue_interleaves_push_and_pop() {
        let mut q = SpillQueue::with_chunk(true, 3);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        // A deterministic interleaving: pushes in bursts, pops between.
        for round in 0..50 {
            for _ in 0..(round % 5 + 1) {
                q.push_back(next);
                model.push_back(next);
                next += 1;
            }
            for _ in 0..(round % 3) {
                assert_eq!(q.pop_front(), model.pop_front());
            }
            assert_eq!(q.len(), model.len());
        }
        while let Some(v) = model.pop_front() {
            assert_eq!(q.pop_front(), Some(v));
        }
        assert_eq!(q.pop_front(), None);
    }

    #[test]
    fn spill_queue_actually_spills() {
        let mut q = SpillQueue::with_chunk(true, 4);
        for i in 0..20 {
            q.push_back(i);
        }
        assert!(!q.chunks.is_empty(), "expected spilled chunks");
        assert!(q.store.is_some());
    }
}
