//! Meta-state membership sets.
//!
//! A meta state *is* a set of MIMD states (§1.2: "it is also possible to
//! view the set of processor states at a particular time as \[a\] single,
//! aggregate, 'Meta State'"). The converter manipulates huge numbers of
//! these sets — §2.3's base construction unions, hashes, and interns one
//! candidate set per successor choice, up to 3ⁿ per meta state — so the
//! representation is a hybrid tuned for that workload:
//!
//! * **Small** (≤ `SMALL_MAX` members): the ids live inline in a fixed
//!   array, no heap allocation. Typical meta states are sparse, so this is
//!   the common case on real programs.
//! * **Bits** (> `SMALL_MAX` members): a dense `Vec<u64>` bitset with
//!   trailing zero words trimmed. `union` / `difference` / `is_subset` run
//!   word-parallel (64 members per operation), which is what keeps the
//!   state-explosion workloads at memory bandwidth.
//!
//! Membership count is cached in both variants, so [`StateSet::len`] is
//! O(1). The representation is **canonical** — a set has ≤ `SMALL_MAX`
//! members if and only if it is `Small`, every operation re-normalizes,
//! and unused inline slots are zeroed — so structural equality and hashing
//! never need to compare across variants. Hash stability matters beyond
//! this crate: the parallel engine shards its interner by the set's Fx
//! hash, and identical hashing on every shard (and every thread) is what
//! keeps its output bit-identical to the sequential converter.
//!
//! Sets are interned in a [`SetArena`]: each distinct set is stored once
//! and referred to by a compact [`SetId`] handle. Dense bitsets cope fine
//! with time splitting (§2.4) growing the MIMD state id space dynamically:
//! ids grow by appending states, so the word vector grows at the tail.

use crate::spill::{default_memory_budget, SegmentStore};
use msc_ir::util::{FxHashMap, FxHasher};
use msc_ir::StateId;
use msc_simd::setops;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Largest member count stored inline (spill threshold of the hybrid).
const SMALL_MAX: usize = 4;

/// Canonical storage: `Small` iff the set has ≤ [`SMALL_MAX`] members.
/// `Small` keeps members sorted ascending with unused slots zeroed (so the
/// derived equality is structural equality); `Bits` keeps `len` cached and
/// the last word non-zero.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    Small { buf: [u32; SMALL_MAX], len: u8 },
    Bits { len: u32, words: Vec<u64> },
}

/// A set of MIMD state ids: one meta state's members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSet(Repr);

impl Default for StateSet {
    fn default() -> Self {
        StateSet::empty()
    }
}

/// Build the canonical representation from a sorted, deduplicated slice.
fn from_sorted(v: &[u32]) -> Repr {
    if v.len() <= SMALL_MAX {
        let mut buf = [0u32; SMALL_MAX];
        buf[..v.len()].copy_from_slice(v);
        Repr::Small {
            buf,
            len: v.len() as u8,
        }
    } else {
        let n_words = (*v.last().unwrap() as usize >> 6) + 1;
        let mut words = vec![0u64; n_words];
        for &x in v {
            words[(x >> 6) as usize] |= 1u64 << (x & 63);
        }
        Repr::Bits {
            len: v.len() as u32,
            words,
        }
    }
}

/// Re-normalize a word vector whose population is `len`: spill back to
/// `Small` when it shrank to the inline range, otherwise trim trailing
/// zero words.
fn normalize_bits(len: u32, mut words: Vec<u64>) -> Repr {
    if len as usize <= SMALL_MAX {
        let mut buf = [0u32; SMALL_MAX];
        let mut n = 0usize;
        for (wi, &w) in words.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                buf[n] = (wi as u32) << 6 | w.trailing_zeros();
                w &= w - 1;
                n += 1;
            }
        }
        debug_assert_eq!(n, len as usize);
        Repr::Small {
            buf,
            len: len as u8,
        }
    } else {
        while words.last() == Some(&0) {
            words.pop();
        }
        Repr::Bits { len, words }
    }
}

impl StateSet {
    /// The empty set.
    pub fn empty() -> Self {
        StateSet(Repr::Small {
            buf: [0; SMALL_MAX],
            len: 0,
        })
    }

    /// Build from an arbitrary iterator of state ids (sorts and dedups).
    #[allow(clippy::should_implement_trait)] // also provided via FromIterator below
    pub fn from_iter(iter: impl IntoIterator<Item = StateId>) -> Self {
        let mut v: Vec<u32> = iter.into_iter().map(|s| s.0).collect();
        v.sort_unstable();
        v.dedup();
        StateSet(from_sorted(&v))
    }

    /// A singleton set.
    pub fn singleton(s: StateId) -> Self {
        let mut buf = [0u32; SMALL_MAX];
        buf[0] = s.0;
        StateSet(Repr::Small { buf, len: 1 })
    }

    /// Number of member MIMD states (the meta state's *width*, which §2.5
    /// notes governs SIMD efficiency). O(1): cached in both variants.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Small { len, .. } => *len as usize,
            Repr::Bits { len, .. } => *len as usize,
        }
    }

    /// True when the set has no members (program termination).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test: inline scan or single bit probe.
    pub fn contains(&self, s: StateId) -> bool {
        match &self.0 {
            Repr::Small { buf, len } => buf[..*len as usize].contains(&s.0),
            Repr::Bits { words, .. } => {
                let wi = (s.0 >> 6) as usize;
                wi < words.len() && words[wi] & (1u64 << (s.0 & 63)) != 0
            }
        }
    }

    /// Iterate members in ascending order.
    pub fn iter(&self) -> Members<'_> {
        Members(match &self.0 {
            Repr::Small { buf, len } => MembersInner::Small(buf[..*len as usize].iter()),
            Repr::Bits { words, .. } => MembersInner::Bits {
                words,
                wi: 0,
                cur: words.first().copied().unwrap_or(0),
            },
        })
    }

    /// Members as a freshly allocated sorted vector (tests, rendering).
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().map(|s| s.0).collect()
    }

    /// Set union. Small∪Small is a bounded merge; anything involving a
    /// bitset is a word-parallel OR.
    pub fn union(&self, other: &StateSet) -> StateSet {
        match (&self.0, &other.0) {
            (Repr::Small { buf: a, len: la }, Repr::Small { buf: b, len: lb }) => {
                let (a, b) = (&a[..*la as usize], &b[..*lb as usize]);
                let mut out = [0u32; 2 * SMALL_MAX];
                let (mut i, mut j, mut n) = (0, 0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        Ordering::Less => {
                            out[n] = a[i];
                            i += 1;
                        }
                        Ordering::Greater => {
                            out[n] = b[j];
                            j += 1;
                        }
                        Ordering::Equal => {
                            out[n] = a[i];
                            i += 1;
                            j += 1;
                        }
                    }
                    n += 1;
                }
                while i < a.len() {
                    out[n] = a[i];
                    i += 1;
                    n += 1;
                }
                while j < b.len() {
                    out[n] = b[j];
                    j += 1;
                    n += 1;
                }
                StateSet(from_sorted(&out[..n]))
            }
            (Repr::Bits { words: a, .. }, Repr::Bits { words: b, .. }) => {
                let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
                // One fused SIMD pass: OR + popcount straight into a fresh
                // exactly-sized vector (no clone-then-recount).
                let mut words = Vec::new();
                let len = setops::union_count(long, short, &mut words);
                // A union with a bitset operand has > SMALL_MAX members.
                StateSet(Repr::Bits { len, words })
            }
            (Repr::Small { buf, len }, Repr::Bits { .. }) => {
                other.union_with_small(&buf[..*len as usize])
            }
            (Repr::Bits { .. }, Repr::Small { buf, len }) => {
                self.union_with_small(&buf[..*len as usize])
            }
        }
    }

    /// `self` must be `Bits`; OR in a short sorted member list.
    fn union_with_small(&self, small: &[u32]) -> StateSet {
        let Repr::Bits { len, words } = &self.0 else {
            unreachable!("caller checked the variant");
        };
        let mut words = words.clone();
        let mut len = *len;
        for &x in small {
            let wi = (x >> 6) as usize;
            if wi >= words.len() {
                words.resize(wi + 1, 0);
            }
            let bit = 1u64 << (x & 63);
            if words[wi] & bit == 0 {
                words[wi] |= bit;
                len += 1;
            }
        }
        StateSet(Repr::Bits { len, words })
    }

    /// In-place union with a single element.
    pub fn insert(&mut self, s: StateId) {
        match &mut self.0 {
            Repr::Small { buf, len } => {
                let n = *len as usize;
                let pos = buf[..n].partition_point(|&x| x < s.0);
                if pos < n && buf[pos] == s.0 {
                    return;
                }
                if n < SMALL_MAX {
                    buf.copy_within(pos..n, pos + 1);
                    buf[pos] = s.0;
                    *len += 1;
                } else {
                    // Spill: 5 members now.
                    let mut v = [0u32; SMALL_MAX + 1];
                    v[..pos].copy_from_slice(&buf[..pos]);
                    v[pos] = s.0;
                    v[pos + 1..].copy_from_slice(&buf[pos..]);
                    self.0 = from_sorted(&v);
                }
            }
            Repr::Bits { len, words } => {
                let wi = (s.0 >> 6) as usize;
                if wi >= words.len() {
                    words.resize(wi + 1, 0);
                }
                let bit = 1u64 << (s.0 & 63);
                if words[wi] & bit == 0 {
                    words[wi] |= bit;
                    *len += 1;
                }
            }
        }
    }

    /// Set difference `self \ other` (word-parallel AND-NOT on bitsets).
    pub fn difference(&self, other: &StateSet) -> StateSet {
        match (&self.0, &other.0) {
            (Repr::Small { buf, len }, _) => {
                let mut out = [0u32; SMALL_MAX];
                let mut n = 0;
                for &x in &buf[..*len as usize] {
                    if !other.contains(StateId(x)) {
                        out[n] = x;
                        n += 1;
                    }
                }
                StateSet(from_sorted(&out[..n]))
            }
            (Repr::Bits { words: a, .. }, Repr::Bits { words: b, .. }) => {
                let mut words = Vec::new();
                let len = setops::andnot_count(a, b, &mut words);
                StateSet(normalize_bits(len, words))
            }
            (Repr::Bits { words, .. }, Repr::Small { buf, len: lb }) => {
                let mut words = words.clone();
                for &x in &buf[..*lb as usize] {
                    let wi = (x >> 6) as usize;
                    if wi < words.len() {
                        words[wi] &= !(1u64 << (x & 63));
                    }
                }
                let len = setops::popcount(&words);
                StateSet(normalize_bits(len, words))
            }
        }
    }

    /// Members satisfying `pred` (e.g. "is a barrier wait state", §2.6).
    pub fn filter(&self, mut pred: impl FnMut(StateId) -> bool) -> StateSet {
        match &self.0 {
            Repr::Small { buf, len } => {
                let mut out = [0u32; SMALL_MAX];
                let mut n = 0;
                for &x in &buf[..*len as usize] {
                    if pred(StateId(x)) {
                        out[n] = x;
                        n += 1;
                    }
                }
                StateSet(from_sorted(&out[..n]))
            }
            Repr::Bits { words, .. } => {
                let mut words = words.clone();
                let mut len = 0u32;
                for (wi, w) in words.iter_mut().enumerate() {
                    let mut probe = *w;
                    while probe != 0 {
                        let bit = probe & probe.wrapping_neg();
                        if !pred(StateId((wi as u32) << 6 | bit.trailing_zeros())) {
                            *w &= !bit;
                        }
                        probe &= probe - 1;
                    }
                    len += w.count_ones();
                }
                StateSet(normalize_bits(len, words))
            }
        }
    }

    /// True when every member of `self` is in `other` (word-parallel on
    /// bitset pairs).
    pub fn is_subset(&self, other: &StateSet) -> bool {
        if self.len() > other.len() {
            return false;
        }
        match (&self.0, &other.0) {
            (Repr::Small { buf, len }, _) => buf[..*len as usize]
                .iter()
                .all(|&x| other.contains(StateId(x))),
            (Repr::Bits { words: a, .. }, Repr::Bits { words: b, .. }) => {
                // Trailing words are trimmed, so extra words of `a` would
                // hold members `b` lacks.
                a.len() <= b.len() && setops::subset_of(a, b)
            }
            // A bitset has > SMALL_MAX members; the length check above
            // already rejected it against any Small set.
            (Repr::Bits { .. }, Repr::Small { .. }) => unreachable!("len check rejects Bits⊆Small"),
        }
    }

    /// True when `self ⊂ other` strictly.
    pub fn is_strict_subset(&self, other: &StateSet) -> bool {
        self.len() < other.len() && self.is_subset(other)
    }

    /// Append this set's bitset words (trailing zeros trimmed) to `out`,
    /// returning how many words were written. Small sets expand into bit
    /// words here; the output is what a `Bits` representation of the same
    /// members would hold, so slices from different sets are directly
    /// comparable by the word-parallel kernels (e.g.
    /// [`setops::subset_of_many`]).
    pub fn append_bit_words(&self, out: &mut Vec<u64>) -> usize {
        match &self.0 {
            Repr::Small { buf, len } => {
                let start = out.len();
                for &m in &buf[..*len as usize] {
                    let w = (m >> 6) as usize;
                    while out.len() - start <= w {
                        out.push(0);
                    }
                    out[start + w] |= 1u64 << (m & 63);
                }
                out.len() - start
            }
            Repr::Bits { words, .. } => {
                out.extend_from_slice(words);
                words.len()
            }
        }
    }

    /// Union into a reusable scratch buffer, fusing the Fx hash of the
    /// result into the same pass — the allocation-free primitive the
    /// converter's 3ⁿ candidate enumeration runs on. Returns exactly what
    /// [`fx_hash`] of the materialized union would return, so a caller can
    /// dedup candidates by `(hash, `[`UnionScratch::matches`]`)` and only
    /// pay an allocation ([`UnionScratch::materialize`]) for sets that are
    /// genuinely new.
    pub fn union_into_scratch(&self, other: &StateSet, s: &mut UnionScratch) -> u64 {
        match (&self.0, &other.0) {
            (Repr::Small { buf: a, len: la }, Repr::Small { buf: b, len: lb }) => {
                let (a, b) = (&a[..*la as usize], &b[..*lb as usize]);
                let (mut i, mut j, mut n) = (0, 0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        Ordering::Less => {
                            s.small[n] = a[i];
                            i += 1;
                        }
                        Ordering::Greater => {
                            s.small[n] = b[j];
                            j += 1;
                        }
                        Ordering::Equal => {
                            s.small[n] = a[i];
                            i += 1;
                            j += 1;
                        }
                    }
                    n += 1;
                }
                while i < a.len() {
                    s.small[n] = a[i];
                    i += 1;
                    n += 1;
                }
                while j < b.len() {
                    s.small[n] = b[j];
                    j += 1;
                    n += 1;
                }
                s.small_len = n;
                s.len = n as u32;
                if n <= SMALL_MAX {
                    s.is_small = true;
                    let g = |k: usize| if k < n { s.small[k] as u64 } else { 0 };
                    let mut h = FxHasher::default();
                    h.write_u64(g(0) | g(1) << 32);
                    h.write_u64(g(2) | g(3) << 32);
                    h.write_u8(n as u8);
                    s.hash = h.finish();
                } else {
                    s.is_small = false;
                    let nw = (s.small[n - 1] as usize >> 6) + 1;
                    s.words.clear();
                    s.words.resize(nw, 0);
                    for &x in &s.small[..n] {
                        s.words[(x >> 6) as usize] |= 1u64 << (x & 63);
                    }
                    s.hash = hash_bits_words(&s.words, s.len);
                }
            }
            (Repr::Bits { words: a, .. }, Repr::Bits { words: b, .. }) => {
                let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
                let mut h = FxHasher::default();
                s.len = setops::union_count_hash(long, short, &mut s.words, &mut h);
                h.write_u32(s.len);
                s.is_small = false;
                s.hash = h.finish();
            }
            (Repr::Small { buf, len }, Repr::Bits { .. })
            | (Repr::Bits { .. }, Repr::Small { buf, len }) => {
                let (bits, small) = if matches!(self.0, Repr::Bits { .. }) {
                    (self, &buf[..*len as usize])
                } else {
                    (other, &buf[..*len as usize])
                };
                let Repr::Bits {
                    len: blen,
                    words: bwords,
                } = &bits.0
                else {
                    unreachable!("selected the Bits operand");
                };
                s.words.clear();
                s.words.extend_from_slice(bwords);
                s.len = *blen;
                for &x in small {
                    let wi = (x >> 6) as usize;
                    if wi >= s.words.len() {
                        s.words.resize(wi + 1, 0);
                    }
                    let bit = 1u64 << (x & 63);
                    if s.words[wi] & bit == 0 {
                        s.words[wi] |= bit;
                        s.len += 1;
                    }
                }
                s.is_small = false;
                s.hash = hash_bits_words(&s.words, s.len);
            }
        }
        s.hash
    }
}

/// The Fx hash the [`Hash`] impl produces for a `Bits` set with these
/// words and member count.
fn hash_bits_words(words: &[u64], len: u32) -> u64 {
    let mut h = FxHasher::default();
    for &w in words {
        h.write_u64(w);
    }
    h.write_u32(len);
    h.finish()
}

/// Reusable result buffer for [`StateSet::union_into_scratch`]: holds one
/// candidate union (inline members or bitset words) without owning an
/// allocation per candidate.
#[derive(Debug, Default)]
pub struct UnionScratch {
    /// Bitset words of the candidate (when `!is_small`), trailing word
    /// non-zero (canonical).
    words: Vec<u64>,
    /// Merged members (sorted) while the candidate still fits inline.
    small: [u32; 2 * SMALL_MAX],
    small_len: usize,
    len: u32,
    is_small: bool,
    hash: u64,
}

impl UnionScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Member count of the held candidate.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the held candidate is the empty set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Structural equality between the held candidate and a materialized
    /// set — used to resolve hash-bucket collisions without allocating.
    pub fn matches(&self, set: &StateSet) -> bool {
        match (&set.0, self.is_small) {
            (Repr::Small { buf, len }, true) => {
                *len as usize == self.small_len
                    && buf[..self.small_len] == self.small[..self.small_len]
            }
            (Repr::Bits { len, words }, false) => *len == self.len && words[..] == self.words[..],
            _ => false,
        }
    }

    /// Allocate the held candidate as an owned, canonical [`StateSet`].
    pub fn materialize(&self) -> StateSet {
        if self.is_small {
            StateSet(from_sorted(&self.small[..self.small_len]))
        } else {
            StateSet(Repr::Bits {
                len: self.len,
                words: self.words.clone(),
            })
        }
    }
}

/// Iterator over a set's members in ascending order.
pub struct Members<'a>(MembersInner<'a>);

enum MembersInner<'a> {
    Small(std::slice::Iter<'a, u32>),
    Bits {
        words: &'a [u64],
        wi: usize,
        cur: u64,
    },
}

impl Iterator for Members<'_> {
    type Item = StateId;

    fn next(&mut self) -> Option<StateId> {
        match &mut self.0 {
            MembersInner::Small(it) => it.next().map(|&x| StateId(x)),
            MembersInner::Bits { words, wi, cur } => {
                while *cur == 0 {
                    *wi += 1;
                    *cur = *words.get(*wi)?;
                }
                let bit = cur.trailing_zeros();
                *cur &= *cur - 1;
                Some(StateId((*wi as u32) << 6 | bit))
            }
        }
    }
}

impl Hash for StateSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The representation is canonical, so per-variant hashing is
        // consistent: equal sets are always the same variant with the same
        // payload. Both arms hash whole 64-bit words.
        match &self.0 {
            Repr::Small { buf, len } => {
                state.write_u64((buf[0] as u64) | (buf[1] as u64) << 32);
                state.write_u64((buf[2] as u64) | (buf[3] as u64) << 32);
                state.write_u8(*len);
            }
            Repr::Bits { len, words } => {
                for &w in words {
                    state.write_u64(w);
                }
                state.write_u32(*len);
            }
        }
    }
}

impl PartialOrd for StateSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for StateSet {
    /// Lexicographic over the ascending member sequence — identical to the
    /// former sorted-`Vec<u32>` ordering, which test expectations and the
    /// deterministic successor orderings rely on.
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.0, &other.0) {
            (Repr::Small { buf: a, len: la }, Repr::Small { buf: b, len: lb }) => {
                a[..*la as usize].cmp(&b[..*lb as usize])
            }
            _ => self.iter().cmp(other.iter()),
        }
    }
}

impl fmt::Display for StateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, x) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", x.0)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<StateId> for StateSet {
    fn from_iter<T: IntoIterator<Item = StateId>>(iter: T) -> Self {
        StateSet::from_iter(iter)
    }
}

/// The set's Fx hash — the key both the arena and the engine's sharded
/// interner bucket by, so a set hashes identically everywhere.
pub fn fx_hash(set: &StateSet) -> u64 {
    let mut h = FxHasher::default();
    set.hash(&mut h);
    h.finish()
}

/// Interned handle to a [`StateSet`] inside a [`SetArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetId(pub u32);

impl SetId {
    /// The index as a usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Interning arena: each distinct [`StateSet`] is stored exactly once.
///
/// Sets live in a struct-of-arrays bump arena — per-set `(len, span)`
/// descriptors over one contiguous `words: Vec<u64>` block — instead of a
/// `Vec<StateSet>` with a heap allocation per bitset. Inline ("small") sets
/// pack their members into two words using the same packing the `Hash`
/// impl hashes, so every set has exactly one encoded form.
///
/// When a memory `budget` is set (explicitly via [`SetArena::with_budget`]
/// or process-wide via `MSC_MEMORY_BUDGET`), the arena spills its *cold
/// prefix* — sets are appended in discovery order and the subset
/// construction mostly probes recent sets — to an unlinked-on-drop
/// [`SegmentStore`] temp file once resident words exceed the budget.
/// Because eviction only ever moves a contiguous prefix, a logical word
/// offset maps to a stable file byte offset (`off * 8`) forever. Spill
/// *write* failures degrade back to in-RAM operation (the budget is
/// dropped, never the data); reload failures panic, since the words exist
/// nowhere else.
#[derive(Debug, Default)]
pub struct SetArena {
    /// Per-set member count.
    lens: Vec<u32>,
    /// Per-set `(logical word offset, word count)` into the arena stream.
    spans: Vec<(u64, u32)>,
    /// Resident suffix of the arena word stream.
    words: Vec<u64>,
    /// Logical word offset of `words[0]`; everything below it is spilled.
    base: u64,
    /// Index of the first set whose span is resident.
    first_resident: usize,
    store: Option<SegmentStore>,
    budget: Option<usize>,
    lookup: FxHashMap<u64, Vec<SetId>>,
    /// Peak resident words bytes, for `convert.arena_high_water`.
    high_water: u64,
    /// Reload buffer for spilled spans (`get`/`intern` on a cold set).
    reload: Vec<u64>,
}

impl SetArena {
    /// An empty arena, honoring the process-wide `MSC_MEMORY_BUDGET` spill
    /// budget when set.
    pub fn new() -> Self {
        Self::with_budget(default_memory_budget())
    }

    /// An empty arena with an explicit resident-words budget in bytes
    /// (`None` = never spill).
    pub fn with_budget(budget: Option<usize>) -> Self {
        SetArena {
            budget,
            ..SetArena::default()
        }
    }

    /// Encode a set's arena words: dense bitset words for `Bits`, the two
    /// hash-packing words for non-empty `Small`, nothing for the empty set.
    fn encode<'a>(set: &'a StateSet, inline: &'a mut [u64; 2]) -> &'a [u64] {
        match &set.0 {
            Repr::Small { len: 0, .. } => &[],
            Repr::Small { buf, .. } => {
                inline[0] = (buf[0] as u64) | (buf[1] as u64) << 32;
                inline[1] = (buf[2] as u64) | (buf[3] as u64) << 32;
                &inline[..]
            }
            Repr::Bits { words, .. } => words,
        }
    }

    /// Decode arena words back into a canonical [`StateSet`].
    fn decode(len: u32, words: &[u64]) -> StateSet {
        if len == 0 {
            return StateSet::empty();
        }
        if len as usize <= SMALL_MAX {
            let buf = [
                words[0] as u32,
                (words[0] >> 32) as u32,
                words[1] as u32,
                (words[1] >> 32) as u32,
            ];
            StateSet(Repr::Small {
                buf,
                len: len as u8,
            })
        } else {
            StateSet(Repr::Bits {
                len,
                words: words.to_vec(),
            })
        }
    }

    /// Intern a set, returning its stable handle.
    pub fn intern(&mut self, set: StateSet) -> SetId {
        let hash = fx_hash(&set);
        let mut inline = [0u64; 2];
        let len = set.len() as u32;
        // Probe the hash bucket by index (not iterator) so a cold candidate
        // can be reloaded mid-scan without holding a borrow of `lookup`.
        let bucket_len = self.lookup.get(&hash).map_or(0, |b| b.len());
        for k in 0..bucket_len {
            let id = self.lookup[&hash][k];
            let enc = Self::encode(&set, &mut inline);
            if self.words_match(id, len, enc) {
                return id;
            }
        }
        let enc = Self::encode(&set, &mut inline);
        let id = SetId(self.lens.len() as u32);
        let off = self.base + self.words.len() as u64;
        self.words.extend_from_slice(enc);
        self.spans.push((off, enc.len() as u32));
        self.lens.push(len);
        self.lookup.entry(hash).or_default().push(id);
        let resident = (self.words.len() * 8) as u64;
        if resident > self.high_water {
            self.high_water = resident;
            msc_obs::value("convert.arena_high_water", resident);
        }
        self.maybe_evict();
        id
    }

    /// True when set `id`'s stored words equal `enc` (with member count
    /// `len`), reloading from the segment store if the span is cold.
    fn words_match(&mut self, id: SetId, len: u32, enc: &[u64]) -> bool {
        if self.lens[id.idx()] != len {
            return false;
        }
        let (off, nw) = self.spans[id.idx()];
        if nw as usize != enc.len() {
            return false;
        }
        if nw == 0 {
            return true;
        }
        if off >= self.base {
            let s = (off - self.base) as usize;
            self.words[s..s + nw as usize] == *enc
        } else {
            self.reload_span(off, nw);
            self.reload[..nw as usize] == *enc
        }
    }

    /// Fill `self.reload` with a spilled span's words.
    fn reload_span(&mut self, off: u64, nw: u32) {
        self.reload.clear();
        self.reload.resize(nw as usize, 0);
        self.store
            .as_mut()
            .expect("spilled span without a segment store")
            .read_words(off * 8, &mut self.reload)
            .expect("spilled meta-state words must be readable");
        msc_obs::count("engine.spill_reload", 1);
    }

    /// Spill the cold prefix of the arena when resident words exceed the
    /// budget, keeping roughly half the budget resident (hysteresis so a
    /// stream of interns doesn't trigger a file write each time).
    fn maybe_evict(&mut self) {
        let Some(budget) = self.budget else { return };
        if self.words.len() * 8 <= budget {
            return;
        }
        let keep_words = budget / 2 / 8;
        let target_cut = self.words.len().saturating_sub(keep_words);
        // Advance to the first span boundary at or past the target; only
        // whole spans move so file offsets stay stable.
        let mut j = self.first_resident;
        while j < self.spans.len() && ((self.spans[j].0 - self.base) as usize) < target_cut {
            j += 1;
        }
        let cut = if j < self.spans.len() {
            (self.spans[j].0 - self.base) as usize
        } else {
            self.words.len()
        };
        if cut == 0 {
            return;
        }
        let store = match &mut self.store {
            Some(s) => s,
            None => match SegmentStore::create("arena") {
                Ok(s) => self.store.insert(s),
                Err(_) => {
                    // Can't create the spill file: degrade to in-RAM.
                    self.budget = None;
                    return;
                }
            },
        };
        debug_assert_eq!(store.len(), self.base * 8, "store is the spilled prefix");
        match store.append_words(&self.words[..cut]) {
            Ok(_) => {
                msc_obs::count("convert.spill_bytes", (cut * 8) as u64);
                self.words.copy_within(cut.., 0);
                let kept = self.words.len() - cut;
                self.words.truncate(kept);
                self.base += cut as u64;
                self.first_resident = j;
            }
            Err(_) => {
                // Spill write failed: keep everything resident instead.
                self.budget = None;
            }
        }
    }

    /// Materialize a set by handle. Takes `&mut self` because a cold
    /// (spilled) set is staged through the reload buffer.
    pub fn get(&mut self, id: SetId) -> StateSet {
        let len = self.lens[id.idx()];
        let (off, nw) = self.spans[id.idx()];
        if len == 0 {
            return StateSet::empty();
        }
        if off >= self.base {
            let s = (off - self.base) as usize;
            Self::decode(len, &self.words[s..s + nw as usize])
        } else {
            self.reload_span(off, nw);
            Self::decode(len, &self.reload[..nw as usize])
        }
    }

    /// Member count of set `id` without materializing it.
    pub fn len_of(&self, id: SetId) -> usize {
        self.lens[id.idx()] as usize
    }

    /// Number of distinct sets interned.
    pub fn len(&self) -> usize {
        self.lens.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Bytes of set words currently resident in RAM.
    pub fn resident_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Bytes of set words spilled to the segment store so far.
    pub fn spilled_bytes(&self) -> u64 {
        self.base * 8
    }

    /// Peak resident bytes over the arena's lifetime.
    pub fn high_water_bytes(&self) -> u64 {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> StateSet {
        StateSet::from_iter(v.iter().map(|&x| StateId(x)))
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        assert_eq!(set(&[3, 1, 2, 1, 3]).to_vec(), &[1, 2, 3]);
    }

    #[test]
    fn union_is_sorted_merge() {
        assert_eq!(
            set(&[1, 3, 5]).union(&set(&[2, 3, 6])).to_vec(),
            &[1, 2, 3, 5, 6]
        );
        assert_eq!(set(&[]).union(&set(&[2])).to_vec(), &[2]);
        assert_eq!(set(&[2]).union(&set(&[])).to_vec(), &[2]);
    }

    #[test]
    fn difference_removes_members() {
        assert_eq!(set(&[1, 2, 3]).difference(&set(&[2])).to_vec(), &[1, 3]);
        assert_eq!(
            set(&[1, 2]).difference(&set(&[1, 2])).to_vec(),
            &[] as &[u32]
        );
    }

    #[test]
    fn subset_relations() {
        assert!(set(&[1, 3]).is_subset(&set(&[1, 2, 3])));
        assert!(set(&[1, 3]).is_strict_subset(&set(&[1, 2, 3])));
        assert!(set(&[1, 2, 3]).is_subset(&set(&[1, 2, 3])));
        assert!(!set(&[1, 2, 3]).is_strict_subset(&set(&[1, 2, 3])));
        assert!(!set(&[1, 4]).is_subset(&set(&[1, 2, 3])));
        assert!(set(&[]).is_subset(&set(&[1])));
    }

    #[test]
    fn insert_keeps_order() {
        let mut s = set(&[1, 5]);
        s.insert(StateId(3));
        s.insert(StateId(3));
        assert_eq!(s.to_vec(), &[1, 3, 5]);
    }

    #[test]
    fn insert_spills_small_to_bits_and_stays_canonical() {
        let mut s = set(&[1, 3, 5, 7]);
        s.insert(StateId(200));
        assert_eq!(s.to_vec(), &[1, 3, 5, 7, 200]);
        assert_eq!(s.len(), 5);
        assert_eq!(s, set(&[200, 7, 5, 3, 1]), "spilled set compares equal");
        s.insert(StateId(200));
        assert_eq!(s.len(), 5, "re-insert is a no-op");
    }

    #[test]
    fn shrinking_bits_normalizes_back_to_small() {
        let big = set(&[1, 2, 3, 4, 5, 6, 700]);
        let small = big.difference(&set(&[2, 4, 6, 700]));
        assert_eq!(small.to_vec(), &[1, 3, 5]);
        // Canonical: must equal (and hash like) a directly-built small set.
        let direct = set(&[1, 3, 5]);
        assert_eq!(small, direct);
        assert_eq!(fx_hash(&small), fx_hash(&direct));
    }

    #[test]
    fn wide_sparse_sets_work() {
        let s = set(&[0, 63, 64, 127, 128, 1000]);
        assert_eq!(s.len(), 6);
        assert!(s.contains(StateId(1000)));
        assert!(!s.contains(StateId(999)));
        assert!(!s.contains(StateId(4096)), "beyond the last word");
        assert_eq!(s.to_vec(), &[0, 63, 64, 127, 128, 1000]);
    }

    #[test]
    fn ordering_is_lexicographic_over_members() {
        // Same ordering the former sorted-Vec derive produced.
        let mut v = vec![
            set(&[2, 3]),
            set(&[1, 2, 3, 4, 5]),
            set(&[1]),
            set(&[1, 2, 3, 4, 6]),
            set(&[]),
            set(&[2]),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                set(&[]),
                set(&[1]),
                set(&[1, 2, 3, 4, 5]),
                set(&[1, 2, 3, 4, 6]),
                set(&[2]),
                set(&[2, 3]),
            ]
        );
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(set(&[2, 6, 9]).to_string(), "{2,6,9}");
        assert_eq!(StateSet::empty().to_string(), "{}");
        assert_eq!(set(&[1, 2, 3, 4, 5]).to_string(), "{1,2,3,4,5}");
    }

    #[test]
    fn arena_interns_once() {
        let mut arena = SetArena::new();
        let a = arena.intern(set(&[1, 2]));
        let b = arena.intern(set(&[2, 1, 2]));
        let c = arena.intern(set(&[1, 3]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a).to_vec(), &[1, 2]);
    }

    #[test]
    fn shrink_to_inline_at_exactly_small_max() {
        // A 5-member Bits set losing one member lands exactly on SMALL_MAX
        // and must normalize back to the inline representation.
        let five = set(&[1, 2, 3, 4, 100]);
        let four = five.difference(&set(&[100]));
        let direct = set(&[1, 2, 3, 4]);
        assert_eq!(four.to_vec(), &[1, 2, 3, 4]);
        assert_eq!(four, direct);
        assert_eq!(fx_hash(&four), fx_hash(&direct));
    }

    #[test]
    fn trailing_zero_words_are_trimmed() {
        // Dropping the high member leaves 5 members (still Bits) but must
        // trim the now-zero high words so equal sets share words and hash.
        let wide = set(&[0, 1, 2, 3, 4, 700]);
        let low = wide.difference(&set(&[700]));
        let direct = set(&[0, 1, 2, 3, 4]);
        assert_eq!(low, direct);
        assert_eq!(fx_hash(&low), fx_hash(&direct));
    }

    #[test]
    fn empty_set_canonical_form() {
        let drained = set(&[9, 80, 300]).difference(&set(&[300, 9, 80]));
        assert!(drained.is_empty());
        assert_eq!(drained, StateSet::empty());
        assert_eq!(fx_hash(&drained), fx_hash(&StateSet::empty()));
        assert_eq!(drained.to_vec(), &[] as &[u32]);
    }

    #[test]
    fn union_into_scratch_matches_union_and_hash() {
        let cases = [
            (set(&[]), set(&[])),
            (set(&[1, 2]), set(&[2, 3])),
            (set(&[1, 2, 3]), set(&[4, 5])), // small+small spills to bits
            (set(&[1, 2, 3, 4, 100]), set(&[7])), // bits + small
            (set(&[5]), set(&[1, 2, 3, 4, 200])), // small + bits
            (set(&[0, 64, 128]), set(&[1, 2, 3, 4, 5, 300])), // bits + bits
        ];
        let mut s = UnionScratch::new();
        for (a, b) in &cases {
            let expect = a.union(b);
            let h = a.union_into_scratch(b, &mut s);
            assert_eq!(h, fx_hash(&expect), "fused hash for {a} ∪ {b}");
            assert!(s.matches(&expect));
            assert_eq!(s.materialize(), expect);
            assert_eq!(s.len(), expect.len());
        }
    }

    #[test]
    fn arena_spills_under_budget_and_stays_equivalent() {
        // A tiny-budget arena must hand out the same ids and materialize
        // the same sets as a budget-free one, even once its cold prefix
        // lives on disk — including hash-bucket hits through the reload
        // path when an already-spilled set is re-interned.
        let mk = |i: u32| StateSet::from_iter((0..20).map(move |k| StateId(i * 7 + k * 13)));
        let mut sets: Vec<StateSet> = Vec::new();
        for i in 0..48u32 {
            sets.push(mk(i));
            sets.push(StateSet::from_iter([StateId(i)]));
        }
        sets.push(StateSet::empty());
        let mut plain = SetArena::with_budget(None);
        let mut tiny = SetArena::with_budget(Some(256));
        for s in &sets {
            assert_eq!(plain.intern(s.clone()), tiny.intern(s.clone()));
        }
        assert!(tiny.spilled_bytes() > 0, "tiny budget must actually spill");
        assert_eq!(plain.spilled_bytes(), 0);
        assert!(tiny.high_water_bytes() > 0);
        for (i, s) in sets.iter().enumerate() {
            assert_eq!(tiny.intern(s.clone()), SetId(i as u32), "re-intern hits");
        }
        for (i, s) in sets.iter().enumerate() {
            let id = SetId(i as u32);
            assert_eq!(plain.get(id), tiny.get(id));
            assert_eq!(&tiny.get(id), s);
            assert_eq!(tiny.len_of(id), s.len());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Mixed-density sets: small inline ones and ones that spill to words.
    fn arb_set() -> impl Strategy<Value = StateSet> {
        prop::collection::vec(0u32..96, 0..14)
            .prop_map(|v| StateSet::from_iter(v.into_iter().map(StateId)))
    }

    proptest! {
        /// Union is commutative, associative, idempotent.
        #[test]
        fn union_algebra(a in arb_set(), b in arb_set(), c in arb_set()) {
            prop_assert_eq!(a.union(&b), b.union(&a));
            prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
            prop_assert_eq!(a.union(&a), a);
        }

        /// a ⊆ a∪b; (a∪b)\b ⊆ a; difference then union restores supersets.
        #[test]
        fn subset_difference_laws(a in arb_set(), b in arb_set()) {
            let u = a.union(&b);
            prop_assert!(a.is_subset(&u));
            prop_assert!(b.is_subset(&u));
            prop_assert!(u.difference(&b).is_subset(&a));
            prop_assert_eq!(a.difference(&b).union(&b).difference(&b), a.difference(&b));
        }

        /// Membership agrees with construction.
        #[test]
        fn contains_matches(v in prop::collection::vec(0u32..96, 0..14), probe in 0u32..96) {
            let s = StateSet::from_iter(v.iter().copied().map(StateId));
            prop_assert_eq!(s.contains(StateId(probe)), v.contains(&probe));
        }

        /// Strict subset is irreflexive and implies subset.
        #[test]
        fn strict_subset_laws(a in arb_set(), b in arb_set()) {
            prop_assert!(!a.is_strict_subset(&a));
            if a.is_strict_subset(&b) {
                prop_assert!(a.is_subset(&b));
                prop_assert!(a.len() < b.len());
            }
        }

        /// Every operation agrees with a model over sorted vectors, the
        /// cached length agrees with iteration, equal sets hash equal, and
        /// ordering matches the vector ordering.
        #[test]
        fn operations_match_sorted_vec_model(
            va in prop::collection::vec(0u32..96, 0..14),
            vb in prop::collection::vec(0u32..96, 0..14),
        ) {
            let model = |v: &[u32]| {
                let mut m = v.to_vec();
                m.sort_unstable();
                m.dedup();
                m
            };
            let (ma, mb) = (model(&va), model(&vb));
            let (a, b) = (
                StateSet::from_iter(va.iter().copied().map(StateId)),
                StateSet::from_iter(vb.iter().copied().map(StateId)),
            );
            let m_union: Vec<u32> = model(&[ma.clone(), mb.clone()].concat());
            prop_assert_eq!(a.union(&b).to_vec(), m_union);
            let m_diff: Vec<u32> = ma.iter().copied().filter(|x| !mb.contains(x)).collect();
            prop_assert_eq!(a.difference(&b).to_vec(), m_diff);
            prop_assert_eq!(a.is_subset(&b), ma.iter().all(|x| mb.contains(x)));
            prop_assert_eq!(a.len(), ma.len());
            prop_assert_eq!(a.iter().count(), ma.len());
            prop_assert_eq!(a.cmp(&b), ma.cmp(&mb));
            if ma == mb {
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(fx_hash(&a), fx_hash(&b));
            }
        }

        /// Interning is injective: same handle iff same set. A hit must
        /// also work through the hash-bucket path for spilled sets.
        #[test]
        fn intern_injective(sets in prop::collection::vec(arb_set(), 1..12)) {
            let mut arena = SetArena::new();
            let ids: Vec<SetId> = sets.iter().map(|s| arena.intern(s.clone())).collect();
            for (i, a) in sets.iter().enumerate() {
                for (j, b) in sets.iter().enumerate() {
                    prop_assert_eq!(ids[i] == ids[j], a == b);
                }
            }
        }

        /// The fused scratch union returns exactly `fx_hash(a ∪ b)` and a
        /// candidate that matches/materializes to the allocated union.
        #[test]
        fn scratch_union_matches_union(
            va in prop::collection::vec(0u32..300, 0..20),
            vb in prop::collection::vec(0u32..300, 0..20),
        ) {
            let a = StateSet::from_iter(va.into_iter().map(StateId));
            let b = StateSet::from_iter(vb.into_iter().map(StateId));
            let mut s = UnionScratch::new();
            let h = a.union_into_scratch(&b, &mut s);
            let expect = a.union(&b);
            prop_assert_eq!(h, fx_hash(&expect));
            prop_assert!(s.matches(&expect));
            prop_assert_eq!(s.materialize(), expect.clone());
            prop_assert_eq!(s.len(), expect.len());
        }

        /// An arena forced to spill behaves identically to an in-RAM one.
        #[test]
        fn spilled_arena_matches_resident_arena(sets in prop::collection::vec(arb_set(), 1..24)) {
            let mut plain = SetArena::with_budget(None);
            let mut tiny = SetArena::with_budget(Some(64));
            for s in &sets {
                prop_assert_eq!(plain.intern(s.clone()), tiny.intern(s.clone()));
            }
            for i in 0..plain.len() {
                let id = SetId(i as u32);
                prop_assert_eq!(plain.get(id), tiny.get(id));
            }
        }
    }
}
