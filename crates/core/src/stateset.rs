//! Meta-state membership sets.
//!
//! A meta state *is* a set of MIMD states (§1.2: "it is also possible to
//! view the set of processor states at a particular time as \[a\] single,
//! aggregate, 'Meta State'"). The converter manipulates huge numbers of
//! these sets, so they are interned in a [`SetArena`]: each distinct set is
//! stored once as a sorted, deduplicated `Vec<u32>` and referred to by a
//! compact [`SetId`] handle. Sorted vectors (rather than bitsets) were
//! chosen because time splitting (§2.4) grows the MIMD state id space
//! dynamically, and because typical meta states are sparse subsets of a
//! possibly large state space.

use msc_ir::util::FxHashMap;
use msc_ir::StateId;
use std::fmt;

/// A sorted, deduplicated set of MIMD state ids: one meta state's members.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct StateSet(Vec<u32>);

impl StateSet {
    /// The empty set.
    pub fn empty() -> Self {
        StateSet(Vec::new())
    }

    /// Build from an arbitrary iterator of state ids (sorts and dedups).
    #[allow(clippy::should_implement_trait)] // also provided via FromIterator below
    pub fn from_iter(iter: impl IntoIterator<Item = StateId>) -> Self {
        let mut v: Vec<u32> = iter.into_iter().map(|s| s.0).collect();
        v.sort_unstable();
        v.dedup();
        StateSet(v)
    }

    /// A singleton set.
    pub fn singleton(s: StateId) -> Self {
        StateSet(vec![s.0])
    }

    /// Number of member MIMD states (the meta state's *width*, which §2.5
    /// notes governs SIMD efficiency).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the set has no members (program termination).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, s: StateId) -> bool {
        self.0.binary_search(&s.0).is_ok()
    }

    /// Iterate members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = StateId> + '_ {
        self.0.iter().map(|&x| StateId(x))
    }

    /// Set union (sorted merge).
    pub fn union(&self, other: &StateSet) -> StateSet {
        let (a, b) = (&self.0, &other.0);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        StateSet(out)
    }

    /// In-place union with a single element.
    pub fn insert(&mut self, s: StateId) {
        if let Err(pos) = self.0.binary_search(&s.0) {
            self.0.insert(pos, s.0);
        }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &StateSet) -> StateSet {
        StateSet(
            self.0
                .iter()
                .copied()
                .filter(|x| !other.contains(StateId(*x)))
                .collect(),
        )
    }

    /// Members satisfying `pred` (e.g. "is a barrier wait state", §2.6).
    pub fn filter(&self, mut pred: impl FnMut(StateId) -> bool) -> StateSet {
        StateSet(
            self.0
                .iter()
                .copied()
                .filter(|&x| pred(StateId(x)))
                .collect(),
        )
    }

    /// True when every member of `self` is in `other` (linear merge).
    pub fn is_subset(&self, other: &StateSet) -> bool {
        if self.0.len() > other.0.len() {
            return false;
        }
        let mut j = 0;
        for &x in &self.0 {
            while j < other.0.len() && other.0[j] < x {
                j += 1;
            }
            if j >= other.0.len() || other.0[j] != x {
                return false;
            }
            j += 1;
        }
        true
    }

    /// True when `self ⊂ other` strictly.
    pub fn is_strict_subset(&self, other: &StateSet) -> bool {
        self.0.len() < other.0.len() && self.is_subset(other)
    }

    /// The raw sorted member ids.
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }
}

impl fmt::Display for StateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, x) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<StateId> for StateSet {
    fn from_iter<T: IntoIterator<Item = StateId>>(iter: T) -> Self {
        StateSet::from_iter(iter)
    }
}

/// Interned handle to a [`StateSet`] inside a [`SetArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetId(pub u32);

impl SetId {
    /// The index as a usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Interning arena: each distinct [`StateSet`] is stored exactly once.
#[derive(Debug, Default, Clone)]
pub struct SetArena {
    sets: Vec<StateSet>,
    lookup: FxHashMap<StateSet, SetId>,
}

impl SetArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a set, returning its stable handle.
    pub fn intern(&mut self, set: StateSet) -> SetId {
        if let Some(&id) = self.lookup.get(&set) {
            return id;
        }
        let id = SetId(self.sets.len() as u32);
        self.sets.push(set.clone());
        self.lookup.insert(set, id);
        id
    }

    /// Borrow a set by handle.
    pub fn get(&self, id: SetId) -> &StateSet {
        &self.sets[id.idx()]
    }

    /// Number of distinct sets interned.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> StateSet {
        StateSet::from_iter(v.iter().map(|&x| StateId(x)))
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        assert_eq!(set(&[3, 1, 2, 1, 3]).as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn union_is_sorted_merge() {
        assert_eq!(
            set(&[1, 3, 5]).union(&set(&[2, 3, 6])).as_slice(),
            &[1, 2, 3, 5, 6]
        );
        assert_eq!(set(&[]).union(&set(&[2])).as_slice(), &[2]);
        assert_eq!(set(&[2]).union(&set(&[])).as_slice(), &[2]);
    }

    #[test]
    fn difference_removes_members() {
        assert_eq!(set(&[1, 2, 3]).difference(&set(&[2])).as_slice(), &[1, 3]);
        assert_eq!(
            set(&[1, 2]).difference(&set(&[1, 2])).as_slice(),
            &[] as &[u32]
        );
    }

    #[test]
    fn subset_relations() {
        assert!(set(&[1, 3]).is_subset(&set(&[1, 2, 3])));
        assert!(set(&[1, 3]).is_strict_subset(&set(&[1, 2, 3])));
        assert!(set(&[1, 2, 3]).is_subset(&set(&[1, 2, 3])));
        assert!(!set(&[1, 2, 3]).is_strict_subset(&set(&[1, 2, 3])));
        assert!(!set(&[1, 4]).is_subset(&set(&[1, 2, 3])));
        assert!(set(&[]).is_subset(&set(&[1])));
    }

    #[test]
    fn insert_keeps_order() {
        let mut s = set(&[1, 5]);
        s.insert(StateId(3));
        s.insert(StateId(3));
        assert_eq!(s.as_slice(), &[1, 3, 5]);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(set(&[2, 6, 9]).to_string(), "{2,6,9}");
        assert_eq!(StateSet::empty().to_string(), "{}");
    }

    #[test]
    fn arena_interns_once() {
        let mut arena = SetArena::new();
        let a = arena.intern(set(&[1, 2]));
        let b = arena.intern(set(&[2, 1, 2]));
        let c = arena.intern(set(&[1, 3]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a).as_slice(), &[1, 2]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_set() -> impl Strategy<Value = StateSet> {
        prop::collection::vec(0u32..24, 0..10)
            .prop_map(|v| StateSet::from_iter(v.into_iter().map(StateId)))
    }

    proptest! {
        /// Union is commutative, associative, idempotent.
        #[test]
        fn union_algebra(a in arb_set(), b in arb_set(), c in arb_set()) {
            prop_assert_eq!(a.union(&b), b.union(&a));
            prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
            prop_assert_eq!(a.union(&a), a);
        }

        /// a ⊆ a∪b; (a∪b)\b ⊆ a; difference then union restores supersets.
        #[test]
        fn subset_difference_laws(a in arb_set(), b in arb_set()) {
            let u = a.union(&b);
            prop_assert!(a.is_subset(&u));
            prop_assert!(b.is_subset(&u));
            prop_assert!(u.difference(&b).is_subset(&a));
            prop_assert_eq!(a.difference(&b).union(&b).difference(&b), a.difference(&b));
        }

        /// Membership agrees with construction.
        #[test]
        fn contains_matches(v in prop::collection::vec(0u32..24, 0..10), probe in 0u32..24) {
            let s = StateSet::from_iter(v.iter().copied().map(StateId));
            prop_assert_eq!(s.contains(StateId(probe)), v.contains(&probe));
        }

        /// Strict subset is irreflexive and implies subset.
        #[test]
        fn strict_subset_laws(a in arb_set(), b in arb_set()) {
            prop_assert!(!a.is_strict_subset(&a));
            if a.is_strict_subset(&b) {
                prop_assert!(a.is_subset(&b));
                prop_assert!(a.len() < b.len());
            }
        }

        /// Interning is injective: same handle iff same set.
        #[test]
        fn intern_injective(sets in prop::collection::vec(arb_set(), 1..12)) {
            let mut arena = SetArena::new();
            let ids: Vec<SetId> = sets.iter().map(|s| arena.intern(s.clone())).collect();
            for (i, a) in sets.iter().enumerate() {
                for (j, b) in sets.iter().enumerate() {
                    prop_assert_eq!(ids[i] == ids[j], a == b);
                }
            }
        }
    }
}
