//! Meta-state membership sets.
//!
//! A meta state *is* a set of MIMD states (§1.2: "it is also possible to
//! view the set of processor states at a particular time as \[a\] single,
//! aggregate, 'Meta State'"). The converter manipulates huge numbers of
//! these sets — §2.3's base construction unions, hashes, and interns one
//! candidate set per successor choice, up to 3ⁿ per meta state — so the
//! representation is a hybrid tuned for that workload:
//!
//! * **Small** (≤ `SMALL_MAX` members): the ids live inline in a fixed
//!   array, no heap allocation. Typical meta states are sparse, so this is
//!   the common case on real programs.
//! * **Bits** (> `SMALL_MAX` members): a dense `Vec<u64>` bitset with
//!   trailing zero words trimmed. `union` / `difference` / `is_subset` run
//!   word-parallel (64 members per operation), which is what keeps the
//!   state-explosion workloads at memory bandwidth.
//!
//! Membership count is cached in both variants, so [`StateSet::len`] is
//! O(1). The representation is **canonical** — a set has ≤ `SMALL_MAX`
//! members if and only if it is `Small`, every operation re-normalizes,
//! and unused inline slots are zeroed — so structural equality and hashing
//! never need to compare across variants. Hash stability matters beyond
//! this crate: the parallel engine shards its interner by the set's Fx
//! hash, and identical hashing on every shard (and every thread) is what
//! keeps its output bit-identical to the sequential converter.
//!
//! Sets are interned in a [`SetArena`]: each distinct set is stored once
//! and referred to by a compact [`SetId`] handle. Dense bitsets cope fine
//! with time splitting (§2.4) growing the MIMD state id space dynamically:
//! ids grow by appending states, so the word vector grows at the tail.

use msc_ir::util::{FxHashMap, FxHasher};
use msc_ir::StateId;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Largest member count stored inline (spill threshold of the hybrid).
const SMALL_MAX: usize = 4;

/// Canonical storage: `Small` iff the set has ≤ [`SMALL_MAX`] members.
/// `Small` keeps members sorted ascending with unused slots zeroed (so the
/// derived equality is structural equality); `Bits` keeps `len` cached and
/// the last word non-zero.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    Small { buf: [u32; SMALL_MAX], len: u8 },
    Bits { len: u32, words: Vec<u64> },
}

/// A set of MIMD state ids: one meta state's members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSet(Repr);

impl Default for StateSet {
    fn default() -> Self {
        StateSet::empty()
    }
}

/// Build the canonical representation from a sorted, deduplicated slice.
fn from_sorted(v: &[u32]) -> Repr {
    if v.len() <= SMALL_MAX {
        let mut buf = [0u32; SMALL_MAX];
        buf[..v.len()].copy_from_slice(v);
        Repr::Small {
            buf,
            len: v.len() as u8,
        }
    } else {
        let n_words = (*v.last().unwrap() as usize >> 6) + 1;
        let mut words = vec![0u64; n_words];
        for &x in v {
            words[(x >> 6) as usize] |= 1u64 << (x & 63);
        }
        Repr::Bits {
            len: v.len() as u32,
            words,
        }
    }
}

/// Re-normalize a word vector whose population is `len`: spill back to
/// `Small` when it shrank to the inline range, otherwise trim trailing
/// zero words.
fn normalize_bits(len: u32, mut words: Vec<u64>) -> Repr {
    if len as usize <= SMALL_MAX {
        let mut buf = [0u32; SMALL_MAX];
        let mut n = 0usize;
        for (wi, &w) in words.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                buf[n] = (wi as u32) << 6 | w.trailing_zeros();
                w &= w - 1;
                n += 1;
            }
        }
        debug_assert_eq!(n, len as usize);
        Repr::Small {
            buf,
            len: len as u8,
        }
    } else {
        while words.last() == Some(&0) {
            words.pop();
        }
        Repr::Bits { len, words }
    }
}

impl StateSet {
    /// The empty set.
    pub fn empty() -> Self {
        StateSet(Repr::Small {
            buf: [0; SMALL_MAX],
            len: 0,
        })
    }

    /// Build from an arbitrary iterator of state ids (sorts and dedups).
    #[allow(clippy::should_implement_trait)] // also provided via FromIterator below
    pub fn from_iter(iter: impl IntoIterator<Item = StateId>) -> Self {
        let mut v: Vec<u32> = iter.into_iter().map(|s| s.0).collect();
        v.sort_unstable();
        v.dedup();
        StateSet(from_sorted(&v))
    }

    /// A singleton set.
    pub fn singleton(s: StateId) -> Self {
        let mut buf = [0u32; SMALL_MAX];
        buf[0] = s.0;
        StateSet(Repr::Small { buf, len: 1 })
    }

    /// Number of member MIMD states (the meta state's *width*, which §2.5
    /// notes governs SIMD efficiency). O(1): cached in both variants.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Small { len, .. } => *len as usize,
            Repr::Bits { len, .. } => *len as usize,
        }
    }

    /// True when the set has no members (program termination).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test: inline scan or single bit probe.
    pub fn contains(&self, s: StateId) -> bool {
        match &self.0 {
            Repr::Small { buf, len } => buf[..*len as usize].contains(&s.0),
            Repr::Bits { words, .. } => {
                let wi = (s.0 >> 6) as usize;
                wi < words.len() && words[wi] & (1u64 << (s.0 & 63)) != 0
            }
        }
    }

    /// Iterate members in ascending order.
    pub fn iter(&self) -> Members<'_> {
        Members(match &self.0 {
            Repr::Small { buf, len } => MembersInner::Small(buf[..*len as usize].iter()),
            Repr::Bits { words, .. } => MembersInner::Bits {
                words,
                wi: 0,
                cur: words.first().copied().unwrap_or(0),
            },
        })
    }

    /// Members as a freshly allocated sorted vector (tests, rendering).
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().map(|s| s.0).collect()
    }

    /// Set union. Small∪Small is a bounded merge; anything involving a
    /// bitset is a word-parallel OR.
    pub fn union(&self, other: &StateSet) -> StateSet {
        match (&self.0, &other.0) {
            (Repr::Small { buf: a, len: la }, Repr::Small { buf: b, len: lb }) => {
                let (a, b) = (&a[..*la as usize], &b[..*lb as usize]);
                let mut out = [0u32; 2 * SMALL_MAX];
                let (mut i, mut j, mut n) = (0, 0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        Ordering::Less => {
                            out[n] = a[i];
                            i += 1;
                        }
                        Ordering::Greater => {
                            out[n] = b[j];
                            j += 1;
                        }
                        Ordering::Equal => {
                            out[n] = a[i];
                            i += 1;
                            j += 1;
                        }
                    }
                    n += 1;
                }
                while i < a.len() {
                    out[n] = a[i];
                    i += 1;
                    n += 1;
                }
                while j < b.len() {
                    out[n] = b[j];
                    j += 1;
                    n += 1;
                }
                StateSet(from_sorted(&out[..n]))
            }
            (Repr::Bits { words: a, .. }, Repr::Bits { words: b, .. }) => {
                let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
                let mut words = long.clone();
                let mut len = 0u32;
                for (w, &s) in words.iter_mut().zip(short.iter()) {
                    *w |= s;
                }
                for w in &words {
                    len += w.count_ones();
                }
                // A union with a bitset operand has > SMALL_MAX members.
                StateSet(Repr::Bits { len, words })
            }
            (Repr::Small { buf, len }, Repr::Bits { .. }) => {
                other.union_with_small(&buf[..*len as usize])
            }
            (Repr::Bits { .. }, Repr::Small { buf, len }) => {
                self.union_with_small(&buf[..*len as usize])
            }
        }
    }

    /// `self` must be `Bits`; OR in a short sorted member list.
    fn union_with_small(&self, small: &[u32]) -> StateSet {
        let Repr::Bits { len, words } = &self.0 else {
            unreachable!("caller checked the variant");
        };
        let mut words = words.clone();
        let mut len = *len;
        for &x in small {
            let wi = (x >> 6) as usize;
            if wi >= words.len() {
                words.resize(wi + 1, 0);
            }
            let bit = 1u64 << (x & 63);
            if words[wi] & bit == 0 {
                words[wi] |= bit;
                len += 1;
            }
        }
        StateSet(Repr::Bits { len, words })
    }

    /// In-place union with a single element.
    pub fn insert(&mut self, s: StateId) {
        match &mut self.0 {
            Repr::Small { buf, len } => {
                let n = *len as usize;
                let pos = buf[..n].partition_point(|&x| x < s.0);
                if pos < n && buf[pos] == s.0 {
                    return;
                }
                if n < SMALL_MAX {
                    buf.copy_within(pos..n, pos + 1);
                    buf[pos] = s.0;
                    *len += 1;
                } else {
                    // Spill: 5 members now.
                    let mut v = [0u32; SMALL_MAX + 1];
                    v[..pos].copy_from_slice(&buf[..pos]);
                    v[pos] = s.0;
                    v[pos + 1..].copy_from_slice(&buf[pos..]);
                    self.0 = from_sorted(&v);
                }
            }
            Repr::Bits { len, words } => {
                let wi = (s.0 >> 6) as usize;
                if wi >= words.len() {
                    words.resize(wi + 1, 0);
                }
                let bit = 1u64 << (s.0 & 63);
                if words[wi] & bit == 0 {
                    words[wi] |= bit;
                    *len += 1;
                }
            }
        }
    }

    /// Set difference `self \ other` (word-parallel AND-NOT on bitsets).
    pub fn difference(&self, other: &StateSet) -> StateSet {
        match (&self.0, &other.0) {
            (Repr::Small { buf, len }, _) => {
                let mut out = [0u32; SMALL_MAX];
                let mut n = 0;
                for &x in &buf[..*len as usize] {
                    if !other.contains(StateId(x)) {
                        out[n] = x;
                        n += 1;
                    }
                }
                StateSet(from_sorted(&out[..n]))
            }
            (Repr::Bits { words: a, .. }, Repr::Bits { words: b, .. }) => {
                let mut words = a.clone();
                let mut len = 0u32;
                for (w, &s) in words.iter_mut().zip(b.iter()) {
                    *w &= !s;
                }
                for w in &words {
                    len += w.count_ones();
                }
                StateSet(normalize_bits(len, words))
            }
            (Repr::Bits { words, .. }, Repr::Small { buf, len: lb }) => {
                let mut words = words.clone();
                for &x in &buf[..*lb as usize] {
                    let wi = (x >> 6) as usize;
                    if wi < words.len() {
                        words[wi] &= !(1u64 << (x & 63));
                    }
                }
                let len = words.iter().map(|w| w.count_ones()).sum();
                StateSet(normalize_bits(len, words))
            }
        }
    }

    /// Members satisfying `pred` (e.g. "is a barrier wait state", §2.6).
    pub fn filter(&self, mut pred: impl FnMut(StateId) -> bool) -> StateSet {
        match &self.0 {
            Repr::Small { buf, len } => {
                let mut out = [0u32; SMALL_MAX];
                let mut n = 0;
                for &x in &buf[..*len as usize] {
                    if pred(StateId(x)) {
                        out[n] = x;
                        n += 1;
                    }
                }
                StateSet(from_sorted(&out[..n]))
            }
            Repr::Bits { words, .. } => {
                let mut words = words.clone();
                let mut len = 0u32;
                for (wi, w) in words.iter_mut().enumerate() {
                    let mut probe = *w;
                    while probe != 0 {
                        let bit = probe & probe.wrapping_neg();
                        if !pred(StateId((wi as u32) << 6 | bit.trailing_zeros())) {
                            *w &= !bit;
                        }
                        probe &= probe - 1;
                    }
                    len += w.count_ones();
                }
                StateSet(normalize_bits(len, words))
            }
        }
    }

    /// True when every member of `self` is in `other` (word-parallel on
    /// bitset pairs).
    pub fn is_subset(&self, other: &StateSet) -> bool {
        if self.len() > other.len() {
            return false;
        }
        match (&self.0, &other.0) {
            (Repr::Small { buf, len }, _) => buf[..*len as usize]
                .iter()
                .all(|&x| other.contains(StateId(x))),
            (Repr::Bits { words: a, .. }, Repr::Bits { words: b, .. }) => {
                // Trailing words are trimmed, so extra words of `a` would
                // hold members `b` lacks.
                a.len() <= b.len() && a.iter().zip(b.iter()).all(|(&x, &y)| x & !y == 0)
            }
            // A bitset has > SMALL_MAX members; the length check above
            // already rejected it against any Small set.
            (Repr::Bits { .. }, Repr::Small { .. }) => unreachable!("len check rejects Bits⊆Small"),
        }
    }

    /// True when `self ⊂ other` strictly.
    pub fn is_strict_subset(&self, other: &StateSet) -> bool {
        self.len() < other.len() && self.is_subset(other)
    }
}

/// Iterator over a set's members in ascending order.
pub struct Members<'a>(MembersInner<'a>);

enum MembersInner<'a> {
    Small(std::slice::Iter<'a, u32>),
    Bits {
        words: &'a [u64],
        wi: usize,
        cur: u64,
    },
}

impl Iterator for Members<'_> {
    type Item = StateId;

    fn next(&mut self) -> Option<StateId> {
        match &mut self.0 {
            MembersInner::Small(it) => it.next().map(|&x| StateId(x)),
            MembersInner::Bits { words, wi, cur } => {
                while *cur == 0 {
                    *wi += 1;
                    *cur = *words.get(*wi)?;
                }
                let bit = cur.trailing_zeros();
                *cur &= *cur - 1;
                Some(StateId((*wi as u32) << 6 | bit))
            }
        }
    }
}

impl Hash for StateSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The representation is canonical, so per-variant hashing is
        // consistent: equal sets are always the same variant with the same
        // payload. Both arms hash whole 64-bit words.
        match &self.0 {
            Repr::Small { buf, len } => {
                state.write_u64((buf[0] as u64) | (buf[1] as u64) << 32);
                state.write_u64((buf[2] as u64) | (buf[3] as u64) << 32);
                state.write_u8(*len);
            }
            Repr::Bits { len, words } => {
                for &w in words {
                    state.write_u64(w);
                }
                state.write_u32(*len);
            }
        }
    }
}

impl PartialOrd for StateSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for StateSet {
    /// Lexicographic over the ascending member sequence — identical to the
    /// former sorted-`Vec<u32>` ordering, which test expectations and the
    /// deterministic successor orderings rely on.
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.0, &other.0) {
            (Repr::Small { buf: a, len: la }, Repr::Small { buf: b, len: lb }) => {
                a[..*la as usize].cmp(&b[..*lb as usize])
            }
            _ => self.iter().cmp(other.iter()),
        }
    }
}

impl fmt::Display for StateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, x) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", x.0)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<StateId> for StateSet {
    fn from_iter<T: IntoIterator<Item = StateId>>(iter: T) -> Self {
        StateSet::from_iter(iter)
    }
}

/// The set's Fx hash — the key both the arena and the engine's sharded
/// interner bucket by, so a set hashes identically everywhere.
pub fn fx_hash(set: &StateSet) -> u64 {
    let mut h = FxHasher::default();
    set.hash(&mut h);
    h.finish()
}

/// Interned handle to a [`StateSet`] inside a [`SetArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetId(pub u32);

impl SetId {
    /// The index as a usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Interning arena: each distinct [`StateSet`] is stored exactly once.
///
/// The lookup side maps the set's Fx hash to the (almost always one)
/// interned ids with that hash and compares against the slab, so a lookup
/// hit allocates nothing and a miss *moves* the set into the slab instead
/// of cloning it.
#[derive(Debug, Default, Clone)]
pub struct SetArena {
    sets: Vec<StateSet>,
    lookup: FxHashMap<u64, Vec<SetId>>,
}

impl SetArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a set, returning its stable handle.
    pub fn intern(&mut self, set: StateSet) -> SetId {
        let hash = fx_hash(&set);
        let bucket = self.lookup.entry(hash).or_default();
        if let Some(&id) = bucket.iter().find(|id| self.sets[id.idx()] == set) {
            return id;
        }
        let id = SetId(self.sets.len() as u32);
        self.sets.push(set);
        bucket.push(id);
        id
    }

    /// Borrow a set by handle.
    pub fn get(&self, id: SetId) -> &StateSet {
        &self.sets[id.idx()]
    }

    /// Number of distinct sets interned.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> StateSet {
        StateSet::from_iter(v.iter().map(|&x| StateId(x)))
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        assert_eq!(set(&[3, 1, 2, 1, 3]).to_vec(), &[1, 2, 3]);
    }

    #[test]
    fn union_is_sorted_merge() {
        assert_eq!(
            set(&[1, 3, 5]).union(&set(&[2, 3, 6])).to_vec(),
            &[1, 2, 3, 5, 6]
        );
        assert_eq!(set(&[]).union(&set(&[2])).to_vec(), &[2]);
        assert_eq!(set(&[2]).union(&set(&[])).to_vec(), &[2]);
    }

    #[test]
    fn difference_removes_members() {
        assert_eq!(set(&[1, 2, 3]).difference(&set(&[2])).to_vec(), &[1, 3]);
        assert_eq!(
            set(&[1, 2]).difference(&set(&[1, 2])).to_vec(),
            &[] as &[u32]
        );
    }

    #[test]
    fn subset_relations() {
        assert!(set(&[1, 3]).is_subset(&set(&[1, 2, 3])));
        assert!(set(&[1, 3]).is_strict_subset(&set(&[1, 2, 3])));
        assert!(set(&[1, 2, 3]).is_subset(&set(&[1, 2, 3])));
        assert!(!set(&[1, 2, 3]).is_strict_subset(&set(&[1, 2, 3])));
        assert!(!set(&[1, 4]).is_subset(&set(&[1, 2, 3])));
        assert!(set(&[]).is_subset(&set(&[1])));
    }

    #[test]
    fn insert_keeps_order() {
        let mut s = set(&[1, 5]);
        s.insert(StateId(3));
        s.insert(StateId(3));
        assert_eq!(s.to_vec(), &[1, 3, 5]);
    }

    #[test]
    fn insert_spills_small_to_bits_and_stays_canonical() {
        let mut s = set(&[1, 3, 5, 7]);
        s.insert(StateId(200));
        assert_eq!(s.to_vec(), &[1, 3, 5, 7, 200]);
        assert_eq!(s.len(), 5);
        assert_eq!(s, set(&[200, 7, 5, 3, 1]), "spilled set compares equal");
        s.insert(StateId(200));
        assert_eq!(s.len(), 5, "re-insert is a no-op");
    }

    #[test]
    fn shrinking_bits_normalizes_back_to_small() {
        let big = set(&[1, 2, 3, 4, 5, 6, 700]);
        let small = big.difference(&set(&[2, 4, 6, 700]));
        assert_eq!(small.to_vec(), &[1, 3, 5]);
        // Canonical: must equal (and hash like) a directly-built small set.
        let direct = set(&[1, 3, 5]);
        assert_eq!(small, direct);
        assert_eq!(fx_hash(&small), fx_hash(&direct));
    }

    #[test]
    fn wide_sparse_sets_work() {
        let s = set(&[0, 63, 64, 127, 128, 1000]);
        assert_eq!(s.len(), 6);
        assert!(s.contains(StateId(1000)));
        assert!(!s.contains(StateId(999)));
        assert!(!s.contains(StateId(4096)), "beyond the last word");
        assert_eq!(s.to_vec(), &[0, 63, 64, 127, 128, 1000]);
    }

    #[test]
    fn ordering_is_lexicographic_over_members() {
        // Same ordering the former sorted-Vec derive produced.
        let mut v = vec![
            set(&[2, 3]),
            set(&[1, 2, 3, 4, 5]),
            set(&[1]),
            set(&[1, 2, 3, 4, 6]),
            set(&[]),
            set(&[2]),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                set(&[]),
                set(&[1]),
                set(&[1, 2, 3, 4, 5]),
                set(&[1, 2, 3, 4, 6]),
                set(&[2]),
                set(&[2, 3]),
            ]
        );
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(set(&[2, 6, 9]).to_string(), "{2,6,9}");
        assert_eq!(StateSet::empty().to_string(), "{}");
        assert_eq!(set(&[1, 2, 3, 4, 5]).to_string(), "{1,2,3,4,5}");
    }

    #[test]
    fn arena_interns_once() {
        let mut arena = SetArena::new();
        let a = arena.intern(set(&[1, 2]));
        let b = arena.intern(set(&[2, 1, 2]));
        let c = arena.intern(set(&[1, 3]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a).to_vec(), &[1, 2]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Mixed-density sets: small inline ones and ones that spill to words.
    fn arb_set() -> impl Strategy<Value = StateSet> {
        prop::collection::vec(0u32..96, 0..14)
            .prop_map(|v| StateSet::from_iter(v.into_iter().map(StateId)))
    }

    proptest! {
        /// Union is commutative, associative, idempotent.
        #[test]
        fn union_algebra(a in arb_set(), b in arb_set(), c in arb_set()) {
            prop_assert_eq!(a.union(&b), b.union(&a));
            prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
            prop_assert_eq!(a.union(&a), a);
        }

        /// a ⊆ a∪b; (a∪b)\b ⊆ a; difference then union restores supersets.
        #[test]
        fn subset_difference_laws(a in arb_set(), b in arb_set()) {
            let u = a.union(&b);
            prop_assert!(a.is_subset(&u));
            prop_assert!(b.is_subset(&u));
            prop_assert!(u.difference(&b).is_subset(&a));
            prop_assert_eq!(a.difference(&b).union(&b).difference(&b), a.difference(&b));
        }

        /// Membership agrees with construction.
        #[test]
        fn contains_matches(v in prop::collection::vec(0u32..96, 0..14), probe in 0u32..96) {
            let s = StateSet::from_iter(v.iter().copied().map(StateId));
            prop_assert_eq!(s.contains(StateId(probe)), v.contains(&probe));
        }

        /// Strict subset is irreflexive and implies subset.
        #[test]
        fn strict_subset_laws(a in arb_set(), b in arb_set()) {
            prop_assert!(!a.is_strict_subset(&a));
            if a.is_strict_subset(&b) {
                prop_assert!(a.is_subset(&b));
                prop_assert!(a.len() < b.len());
            }
        }

        /// Every operation agrees with a model over sorted vectors, the
        /// cached length agrees with iteration, equal sets hash equal, and
        /// ordering matches the vector ordering.
        #[test]
        fn operations_match_sorted_vec_model(
            va in prop::collection::vec(0u32..96, 0..14),
            vb in prop::collection::vec(0u32..96, 0..14),
        ) {
            let model = |v: &[u32]| {
                let mut m = v.to_vec();
                m.sort_unstable();
                m.dedup();
                m
            };
            let (ma, mb) = (model(&va), model(&vb));
            let (a, b) = (
                StateSet::from_iter(va.iter().copied().map(StateId)),
                StateSet::from_iter(vb.iter().copied().map(StateId)),
            );
            let m_union: Vec<u32> = model(&[ma.clone(), mb.clone()].concat());
            prop_assert_eq!(a.union(&b).to_vec(), m_union);
            let m_diff: Vec<u32> = ma.iter().copied().filter(|x| !mb.contains(x)).collect();
            prop_assert_eq!(a.difference(&b).to_vec(), m_diff);
            prop_assert_eq!(a.is_subset(&b), ma.iter().all(|x| mb.contains(x)));
            prop_assert_eq!(a.len(), ma.len());
            prop_assert_eq!(a.iter().count(), ma.len());
            prop_assert_eq!(a.cmp(&b), ma.cmp(&mb));
            if ma == mb {
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(fx_hash(&a), fx_hash(&b));
            }
        }

        /// Interning is injective: same handle iff same set. A hit must
        /// also work through the hash-bucket path for spilled sets.
        #[test]
        fn intern_injective(sets in prop::collection::vec(arb_set(), 1..12)) {
            let mut arena = SetArena::new();
            let ids: Vec<SetId> = sets.iter().map(|s| arena.intern(s.clone())).collect();
            for (i, a) in sets.iter().enumerate() {
                for (j, b) in sets.iter().enumerate() {
                    prop_assert_eq!(ids[i] == ids[j], a == b);
                }
            }
        }
    }
}
