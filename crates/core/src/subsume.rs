//! Subset subsumption for compressed automata (§2.5).
//!
//! "The case of both successors can always emulate either successor, since
//! it has the code for both." A meta state whose members are a strict
//! subset of another meta state's members can therefore be *folded into*
//! the superset: every arc into the subset is redirected to the superset,
//! and the subset is removed. On the paper's running example this is what
//! takes the compressed automaton from the three reachable sets
//! {0}, {2,6}, {2,6,9} down to Figure 5's **two** meta states.
//!
//! Barrier-only meta states are never folded: the all-barrier state is the
//! barrier *release* target (§3.2.4), and folding it into a superset that
//! contains non-barrier members would let PEs run past the barrier early.

use crate::automaton::{MetaAutomaton, MetaId};
use msc_ir::util::FxHashSet;
use msc_simd::setops;

/// Fold strict-subset meta states into supersets. Returns the number of
/// meta states removed. The automaton is rebuilt with dense ids; the start
/// state is remapped if it was folded.
///
/// The superset search uses an inverted index (MIMD state → metas whose
/// set contains it): any superset of meta `i` must appear on the
/// occurrence list of *every* member of `i`, so it suffices to scan the
/// shortest such list — the one of `i`'s rarest member — instead of all n
/// metas. The surviving candidates are checked in one batched
/// [`setops::subset_of_many`] call over an SoA snapshot of every set's bit
/// words, taking the pass from O(n² · width) pointer-chasing to roughly
/// O(n · rarest-occurrence · words) streamed through the SIMD kernels.
pub fn subsume(auto: &mut MetaAutomaton) -> u32 {
    let n = auto.sets.len();
    if n == 0 {
        return 0;
    }
    let barrier_only: Vec<bool> = auto
        .sets
        .iter()
        .map(|s| !s.is_empty() && s.iter().all(|m| auto.graph.state(m).barrier))
        .collect();

    // Occurrence lists over fold-eligible metas only (barrier-only metas
    // are neither folded nor folded into, so they stay out of the index).
    let max_state = auto
        .sets
        .iter()
        .flat_map(|s| s.iter())
        .map(|s| s.idx())
        .max()
        .map_or(0, |m| m + 1);
    let mut containing: Vec<Vec<u32>> = vec![Vec::new(); max_state];
    for (i, s) in auto.sets.iter().enumerate() {
        if barrier_only[i] {
            continue;
        }
        for m in s.iter() {
            containing[m.idx()].push(i as u32);
        }
    }

    // SoA snapshot of every fold-eligible set's bit words: one contiguous
    // arena the batched subset kernel streams through, instead of chasing
    // per-set allocations pair by pair.
    let mut arena: Vec<u64> = Vec::new();
    let mut spans: Vec<(u32, u32)> = vec![(0, 0); n];
    let mut set_len: Vec<usize> = vec![0; n];
    for (i, s) in auto.sets.iter().enumerate() {
        set_len[i] = s.len();
        if barrier_only[i] {
            continue;
        }
        let off = arena.len() as u32;
        let nw = s.append_bit_words(&mut arena) as u32;
        spans[i] = (off, nw);
    }

    // For determinism, fold each subset into the *largest* superset
    // (ties broken by lowest id). The winner is a unique argmax over
    // (len, Reverse(id)), so the candidate scan order is irrelevant.
    let mut remap: Vec<MetaId> = (0..n as u32).map(MetaId).collect();
    let mut candidate_scans = 0u64;
    let mut cand_ids: Vec<u32> = Vec::new();
    let mut cand_spans: Vec<(u32, u32)> = Vec::new();
    let mut hits: Vec<u32> = Vec::new();

    for i in 0..n {
        if barrier_only[i] {
            continue;
        }
        cand_ids.clear();
        cand_spans.clear();
        hits.clear();
        // Strictness is a pure length check, so it prunes candidates
        // before the word scan: only longer sets can strictly contain `i`.
        let mut push_cand = |j: u32| {
            if set_len[j as usize] > set_len[i] {
                cand_ids.push(j);
                cand_spans.push(spans[j as usize]);
            }
        };
        let rarest = auto.sets[i]
            .iter()
            .min_by_key(|m| containing[m.idx()].len());
        match rarest {
            Some(m) => {
                candidate_scans += containing[m.idx()].len() as u64;
                for &j in &containing[m.idx()] {
                    push_cand(j);
                }
            }
            // The empty set is a strict subset of everything; fall back to
            // a full scan.
            None => {
                candidate_scans += n as u64;
                for j in 0..n as u32 {
                    if !barrier_only[j as usize] {
                        push_cand(j);
                    }
                }
            }
        }
        let (off, nw) = spans[i];
        let a = &arena[off as usize..(off + nw) as usize];
        setops::subset_of_many(a, &arena, &cand_spans, &mut hits);
        let best = hits
            .iter()
            .map(|&h| cand_ids[h as usize] as usize)
            .max_by_key(|&j| (set_len[j], std::cmp::Reverse(j)));
        if let Some(j) = best {
            remap[i] = MetaId(j as u32);
        }
    }

    // Resolve chains (a ⊂ b ⊂ c): follow remap until fixpoint.
    fn resolve(remap: &[MetaId], mut i: MetaId) -> MetaId {
        let mut hops = 0;
        while remap[i.idx()] != i {
            i = remap[i.idx()];
            hops += 1;
            debug_assert!(hops <= remap.len(), "remap cycle");
            if hops > remap.len() {
                break;
            }
        }
        i
    }

    msc_obs::count("subsume.candidate_scans", candidate_scans);

    let removed = (0..n)
        .filter(|&i| resolve(&remap, MetaId(i as u32)).idx() != i)
        .count() as u32;
    msc_obs::count("subsume.folded", removed as u64);
    if removed == 0 {
        return 0;
    }

    // Rebuild densely, keeping only surviving meta states (in original
    // order) reachable from the remapped start.
    let mut new_id = vec![None; n];
    let mut kept: Vec<usize> = Vec::new();
    for (i, slot) in new_id.iter_mut().enumerate() {
        if resolve(&remap, MetaId(i as u32)).idx() == i {
            *slot = Some(MetaId(kept.len() as u32));
            kept.push(i);
        }
    }
    let map = |i: MetaId| -> MetaId { new_id[resolve(&remap, i).idx()].unwrap() };

    let mut sets = Vec::with_capacity(kept.len());
    let mut succs = Vec::with_capacity(kept.len());
    for &i in &kept {
        sets.push(auto.sets[i].clone());
        let mut out: Vec<MetaId> = Vec::new();
        let mut seen: FxHashSet<MetaId> = FxHashSet::default();
        for &s in &auto.succs[i] {
            let t = map(s);
            if seen.insert(t) {
                out.push(t);
            }
        }
        succs.push(out);
    }
    auto.start = map(auto.start);
    auto.sets = sets;
    auto.succs = succs;

    // Folding can strand meta states (only reachable through folded ones);
    // drop anything unreachable from start.
    auto.prune_unreachable();
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stateset::StateSet;
    use msc_ir::{MimdGraph, MimdState, StateId, Terminator};

    fn graph(n: u32, barriers: &[u32]) -> MimdGraph {
        let mut g = MimdGraph::new();
        for i in 0..n {
            let id = g.add(MimdState::new(vec![], Terminator::Halt));
            if barriers.contains(&i) {
                g.state_mut(id).barrier = true;
            }
        }
        g.start = StateId(0);
        g
    }

    fn set(v: &[u32]) -> StateSet {
        StateSet::from_iter(v.iter().map(|&x| StateId(x)))
    }

    #[test]
    fn folds_subset_into_superset() {
        let mut auto = MetaAutomaton {
            graph: graph(4, &[]),
            sets: vec![set(&[0]), set(&[1, 2]), set(&[1, 2, 3])],
            start: MetaId(0),
            succs: vec![vec![MetaId(1)], vec![MetaId(2)], vec![MetaId(2)]],
        };
        let removed = subsume(&mut auto);
        assert_eq!(removed, 1);
        assert_eq!(auto.len(), 2);
        assert_eq!(auto.sets, vec![set(&[0]), set(&[1, 2, 3])]);
        assert_eq!(auto.succs, vec![vec![MetaId(1)], vec![MetaId(1)]]);
        assert_eq!(auto.validate(), Ok(()));
    }

    #[test]
    fn resolves_chains() {
        let mut auto = MetaAutomaton {
            graph: graph(4, &[]),
            sets: vec![set(&[0]), set(&[1]), set(&[1, 2]), set(&[1, 2, 3])],
            start: MetaId(0),
            succs: vec![vec![MetaId(1)], vec![MetaId(2)], vec![MetaId(3)], vec![]],
        };
        let removed = subsume(&mut auto);
        assert_eq!(removed, 2);
        assert_eq!(auto.sets, vec![set(&[0]), set(&[1, 2, 3])]);
    }

    #[test]
    fn never_folds_barrier_only_states() {
        // {3} is a barrier state; {1,2,3} would subsume it but must not.
        let mut auto = MetaAutomaton {
            graph: graph(4, &[3]),
            sets: vec![set(&[0]), set(&[3]), set(&[1, 2, 3])],
            start: MetaId(0),
            succs: vec![vec![MetaId(1), MetaId(2)], vec![], vec![MetaId(2)]],
        };
        let removed = subsume(&mut auto);
        assert_eq!(removed, 0);
        assert_eq!(auto.len(), 3);
    }

    #[test]
    fn remaps_folded_start() {
        let mut auto = MetaAutomaton {
            graph: graph(3, &[]),
            sets: vec![set(&[0]), set(&[0, 1])],
            start: MetaId(0),
            succs: vec![vec![MetaId(1)], vec![]],
        };
        subsume(&mut auto);
        assert_eq!(auto.len(), 1);
        assert_eq!(auto.start, MetaId(0));
        assert_eq!(auto.members(auto.start), &set(&[0, 1]));
    }

    #[test]
    fn prunes_stranded_states() {
        // 0:{5} → 1:{1}; 1 folds into 2:{1,2} whose only path is from 1;
        // 3:{9} only reachable from 1 — after folding, 3 unreachable? Build:
        // start {5} → {1}; {1} → {9}; {1,2} → nothing. Fold {1} ⊂ {1,2}:
        // start → {1,2}; {9} now unreachable and must be pruned.
        let mut auto = MetaAutomaton {
            graph: graph(10, &[]),
            sets: vec![set(&[5]), set(&[1]), set(&[1, 2]), set(&[9])],
            start: MetaId(0),
            succs: vec![vec![MetaId(1)], vec![MetaId(3)], vec![], vec![]],
        };
        subsume(&mut auto);
        assert_eq!(auto.len(), 2);
        assert!(auto.find(&set(&[9])).is_none());
        assert_eq!(auto.validate(), Ok(()));
    }

    #[test]
    fn no_op_when_no_subsets() {
        let mut auto = MetaAutomaton {
            graph: graph(4, &[]),
            sets: vec![set(&[0]), set(&[1, 2]), set(&[2, 3])],
            start: MetaId(0),
            succs: vec![vec![MetaId(1), MetaId(2)], vec![], vec![]],
        };
        assert_eq!(subsume(&mut auto), 0);
        assert_eq!(auto.len(), 3);
    }
}
