//! The meta-state automaton produced by conversion.

use crate::stateset::StateSet;
use msc_ir::{CostModel, MimdGraph};
use std::fmt::Write as _;

/// Identifier of a meta state within a [`MetaAutomaton`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MetaId(pub u32);

impl MetaId {
    /// The index as a usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for MetaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ms_{}", self.0)
    }
}

/// A MIMD program converted into a single finite automaton over meta states
/// (§1.2: "Once a program has been converted into a single finite automaton
/// based on Meta States, only a single program counter is needed").
#[derive(Debug, Clone)]
pub struct MetaAutomaton {
    /// The MIMD state graph the automaton was built from. This is the
    /// *converted* graph: if time splitting (§2.4) fired, it contains the
    /// split states, so member ids in [`sets`](Self::sets) resolve here.
    pub graph: MimdGraph,
    /// Membership of each meta state.
    pub sets: Vec<StateSet>,
    /// The start meta state (the set of MIMD start states; for SPMD, a
    /// singleton).
    pub start: MetaId,
    /// Deduplicated successor lists, indexed by meta state. An empty list
    /// means the meta state is terminal (§3.2.1: "a return to the
    /// operating system").
    pub succs: Vec<Vec<MetaId>>,
}

impl MetaAutomaton {
    /// Number of meta states.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when the automaton has no meta states.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Members of one meta state.
    pub fn members(&self, id: MetaId) -> &StateSet {
        &self.sets[id.idx()]
    }

    /// Successors of one meta state.
    pub fn successors(&self, id: MetaId) -> &[MetaId] {
        &self.succs[id.idx()]
    }

    /// Find the meta state with exactly these members.
    pub fn find(&self, set: &StateSet) -> Option<MetaId> {
        self.sets
            .iter()
            .position(|s| s == set)
            .map(|i| MetaId(i as u32))
    }

    /// Average meta-state width (member count). §2.5 trades state count
    /// against width: "the average meta-state is wider, which implies that
    /// the SIMD implementation will be less efficient."
    pub fn avg_width(&self) -> f64 {
        if self.sets.is_empty() {
            return 0.0;
        }
        self.sets.iter().map(|s| s.len()).sum::<usize>() as f64 / self.sets.len() as f64
    }

    /// Widest meta state.
    pub fn max_width(&self) -> usize {
        self.sets.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// True when every meta state has at most one successor — the property
    /// compression (§2.5) buys: "meta-state transitions into compressed
    /// portions of the graph are unconditional; i.e., there is no need to
    /// use a globalor".
    pub fn is_deterministic(&self) -> bool {
        self.succs.iter().all(|s| s.len() <= 1)
    }

    /// The worst-case time imbalance inside a meta state: for each meta
    /// state, (max member cost − min member cost) over non-zero-cost
    /// members; returns the maximum over all meta states. Zero means
    /// perfectly balanced (what time splitting drives toward).
    pub fn max_imbalance(&self, costs: &CostModel) -> u64 {
        self.sets
            .iter()
            .map(|set| {
                let times: Vec<u64> = set
                    .iter()
                    .map(|s| self.graph.state_cost(s, costs))
                    .filter(|&t| t > 0)
                    .collect();
                match (times.iter().min(), times.iter().max()) {
                    (Some(&mn), Some(&mx)) => mx - mn,
                    _ => 0,
                }
            })
            .max()
            .unwrap_or(0)
    }

    /// Renumber meta states into deterministic breadth-first order from
    /// the start state (successor lists visited in stored order). Two
    /// automatons with the same reachable structure — regardless of the
    /// discovery order that built them — become bit-identical, which is
    /// how the parallel converter's output is normalized against the
    /// sequential one. Unreachable meta states (possible after external
    /// surgery) are appended in their original relative order.
    pub fn canonicalize(&mut self) {
        let n = self.sets.len();
        if n == 0 {
            return;
        }
        let mut new_of_old: Vec<Option<u32>> = vec![None; n];
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();
        new_of_old[self.start.idx()] = Some(0);
        order.push(self.start.idx());
        queue.push_back(self.start.idx());
        while let Some(o) = queue.pop_front() {
            for s in &self.succs[o] {
                if new_of_old[s.idx()].is_none() {
                    new_of_old[s.idx()] = Some(order.len() as u32);
                    order.push(s.idx());
                    queue.push_back(s.idx());
                }
            }
        }
        for (o, slot) in new_of_old.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(order.len() as u32);
                order.push(o);
            }
        }
        self.sets = order
            .iter()
            .map(|&o| std::mem::take(&mut self.sets[o]))
            .collect();
        self.succs = order
            .iter()
            .map(|&o| {
                self.succs[o]
                    .iter()
                    .map(|s| MetaId(new_of_old[s.idx()].expect("every meta state numbered")))
                    .collect()
            })
            .collect();
        self.start = MetaId(0);
    }

    /// Remove meta states not reachable from the start state, keeping the
    /// survivors in their original relative order with dense ids. Returns
    /// the number of states removed. Parallel construction can intern
    /// states from expansions that were later invalidated by latent
    /// widening, and subsumption folds can strand states behind folded
    /// arcs; both are cleaned up here.
    pub fn prune_unreachable(&mut self) -> usize {
        let n = self.sets.len();
        if n == 0 {
            return 0;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![self.start];
        seen[self.start.idx()] = true;
        while let Some(m) = stack.pop() {
            for &s in &self.succs[m.idx()] {
                if !seen[s.idx()] {
                    seen[s.idx()] = true;
                    stack.push(s);
                }
            }
        }
        if seen.iter().all(|&b| b) {
            return 0;
        }
        let mut new_id = vec![None; n];
        let mut kept = Vec::new();
        for i in 0..n {
            if seen[i] {
                new_id[i] = Some(MetaId(kept.len() as u32));
                kept.push(i);
            }
        }
        let mut sets = Vec::with_capacity(kept.len());
        let mut succs = Vec::with_capacity(kept.len());
        for &i in &kept {
            sets.push(std::mem::take(&mut self.sets[i]));
            succs.push(
                self.succs[i]
                    .iter()
                    .map(|s| new_id[s.idx()].expect("successors of reachable states are reachable"))
                    .collect(),
            );
        }
        self.start = new_id[self.start.idx()].expect("start is always reachable");
        self.sets = sets;
        self.succs = succs;
        n - kept.len()
    }

    /// Render the automaton as text, one meta state per line:
    ///
    /// ```text
    /// ms_0 {0} -> {2},{6},{2,6}   <- start
    /// ```
    pub fn text(&self) -> String {
        let mut out = String::new();
        for (i, set) in self.sets.iter().enumerate() {
            let id = MetaId(i as u32);
            let _ = write!(out, "{id} {set} ->");
            if self.succs[i].is_empty() {
                let _ = write!(out, " end");
            } else {
                for (k, s) in self.succs[i].iter().enumerate() {
                    let _ = write!(
                        out,
                        "{}{}",
                        if k == 0 { " " } else { "," },
                        self.sets[s.idx()]
                    );
                }
            }
            if id == self.start {
                let _ = write!(out, "  <- start");
            }
            out.push('\n');
        }
        out
    }

    /// Render as Graphviz `dot`.
    pub fn dot(&self) -> String {
        let mut out = String::from("digraph meta {\n  rankdir=TB;\n  node [shape=ellipse];\n");
        for (i, set) in self.sets.iter().enumerate() {
            let pen = if MetaId(i as u32) == self.start {
                " penwidth=2"
            } else {
                ""
            };
            let _ = writeln!(out, "  {i} [label=\"{set}\"{pen}];");
        }
        for (i, succs) in self.succs.iter().enumerate() {
            for s in succs {
                let _ = writeln!(out, "  {i} -> {};", s.idx());
            }
        }
        out.push_str("}\n");
        out
    }

    /// Basic consistency checks: start in range, successors in range, all
    /// member ids resolve in the graph, member sets distinct.
    pub fn validate(&self) -> Result<(), String> {
        if self.start.idx() >= self.sets.len() {
            return Err(format!("start {} out of range", self.start));
        }
        if self.succs.len() != self.sets.len() {
            return Err("succs/sets length mismatch".into());
        }
        for (i, succs) in self.succs.iter().enumerate() {
            for s in succs {
                if s.idx() >= self.sets.len() {
                    return Err(format!("ms_{i} has out-of-range successor {s}"));
                }
            }
        }
        for set in &self.sets {
            for m in set.iter() {
                if m.idx() >= self.graph.len() {
                    return Err(format!("member {m} not in graph"));
                }
            }
        }
        let mut seen = std::collections::HashSet::new();
        for set in &self.sets {
            if !seen.insert(set) {
                return Err(format!("duplicate meta state {set}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_ir::{MimdState, StateId, Terminator};

    fn tiny() -> MetaAutomaton {
        let mut graph = MimdGraph::new();
        let a = graph.add(MimdState::new(vec![], Terminator::Halt));
        let b = graph.add(MimdState::new(vec![], Terminator::Halt));
        graph.state_mut(a).term = Terminator::Jump(b);
        graph.start = a;
        MetaAutomaton {
            graph,
            sets: vec![StateSet::singleton(a), StateSet::singleton(b)],
            start: MetaId(0),
            succs: vec![vec![MetaId(1)], vec![]],
        }
    }

    #[test]
    fn validate_ok_and_text() {
        let a = tiny();
        assert_eq!(a.validate(), Ok(()));
        let t = a.text();
        assert!(t.contains("ms_0 {0} -> {1}  <- start"));
        assert!(t.contains("ms_1 {1} -> end"));
    }

    #[test]
    fn width_stats() {
        let a = tiny();
        assert_eq!(a.avg_width(), 1.0);
        assert_eq!(a.max_width(), 1);
        assert!(a.is_deterministic());
    }

    #[test]
    fn validate_catches_bad_successor() {
        let mut a = tiny();
        a.succs[1].push(MetaId(9));
        assert!(a.validate().is_err());
    }

    #[test]
    fn validate_catches_duplicate_sets() {
        let mut a = tiny();
        a.sets[1] = a.sets[0].clone();
        assert!(a.validate().is_err());
    }

    #[test]
    fn find_by_members() {
        let a = tiny();
        assert_eq!(a.find(&StateSet::singleton(StateId(1))), Some(MetaId(1)));
        assert_eq!(a.find(&StateSet::from_iter([StateId(0), StateId(1)])), None);
    }

    #[test]
    fn canonicalize_renumbers_bfs_from_start() {
        // Same structure as `tiny` but with ids permuted: start is ms_1.
        let mut graph = MimdGraph::new();
        let a = graph.add(MimdState::new(vec![], Terminator::Halt));
        let b = graph.add(MimdState::new(vec![], Terminator::Halt));
        graph.state_mut(a).term = Terminator::Jump(b);
        graph.start = a;
        let mut auto = MetaAutomaton {
            graph,
            sets: vec![StateSet::singleton(b), StateSet::singleton(a)],
            start: MetaId(1),
            succs: vec![vec![], vec![MetaId(0)]],
        };
        auto.canonicalize();
        assert_eq!(auto.start, MetaId(0));
        assert_eq!(auto.sets[0], StateSet::singleton(a));
        assert_eq!(auto.sets[1], StateSet::singleton(b));
        assert_eq!(auto.succs, vec![vec![MetaId(1)], vec![]]);
        assert_eq!(auto.validate(), Ok(()));
    }

    #[test]
    fn canonicalize_is_idempotent_and_keeps_unreachable() {
        let mut graph = MimdGraph::new();
        let a = graph.add(MimdState::new(vec![], Terminator::Halt));
        let b = graph.add(MimdState::new(vec![], Terminator::Halt));
        let c = graph.add(MimdState::new(vec![], Terminator::Halt));
        graph.start = a;
        let mut auto = MetaAutomaton {
            graph,
            sets: vec![
                StateSet::singleton(c), // unreachable
                StateSet::singleton(a), // start
                StateSet::singleton(b),
            ],
            start: MetaId(1),
            succs: vec![vec![], vec![MetaId(2)], vec![]],
        };
        auto.canonicalize();
        let once = (auto.sets.clone(), auto.succs.clone(), auto.start);
        auto.canonicalize();
        assert_eq!((auto.sets.clone(), auto.succs.clone(), auto.start), once);
        assert_eq!(auto.len(), 3, "unreachable states are kept");
        assert_eq!(auto.sets[2], StateSet::singleton(c));
    }

    #[test]
    fn prune_unreachable_drops_and_remaps() {
        let mut graph = MimdGraph::new();
        let a = graph.add(MimdState::new(vec![], Terminator::Halt));
        let b = graph.add(MimdState::new(vec![], Terminator::Halt));
        let c = graph.add(MimdState::new(vec![], Terminator::Halt));
        graph.start = a;
        let mut auto = MetaAutomaton {
            graph,
            sets: vec![
                StateSet::singleton(c), // unreachable
                StateSet::singleton(a), // start
                StateSet::singleton(b),
            ],
            start: MetaId(1),
            succs: vec![vec![MetaId(2)], vec![MetaId(2)], vec![]],
        };
        assert_eq!(auto.prune_unreachable(), 1);
        assert_eq!(auto.len(), 2);
        assert_eq!(auto.start, MetaId(0));
        assert_eq!(
            auto.sets,
            vec![StateSet::singleton(a), StateSet::singleton(b)]
        );
        assert_eq!(auto.succs, vec![vec![MetaId(1)], vec![]]);
        assert_eq!(auto.validate(), Ok(()));
        assert_eq!(auto.prune_unreachable(), 0, "idempotent on reachable-only");
    }
}
