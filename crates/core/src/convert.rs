//! The meta-state conversion algorithm (§2 of the paper).
//!
//! "The process of converting a set of MIMD states that exist at a
//! particular point in time into a single meta state is strikingly similar
//! to the process of converting an NFA into a DFA."
//!
//! [`convert`] implements:
//!
//! * the **base algorithm** (§2.3): subset construction where each member
//!   MIMD state with a conditional branch contributes three successor
//!   choices — TRUE, FALSE, or both — so *n* branching members yield up to
//!   3ⁿ successor meta states (generalized here to 2ᵏ−1 choices for the
//!   k-ary multiway branches produced by inline-expanded returns, §2.2);
//! * **meta-state compression** (§2.5): "a very dramatic reduction in meta
//!   state space can be obtained by simply assuming that both successors
//!   are always taken", plus the subset-subsumption fold implied by "the
//!   case of both successors can always emulate either successor";
//! * **MIMD state time splitting** (§2.4): invoked on each meta state as
//!   it is created; any split restarts the construction "to ensure that
//!   the final meta-state automaton is consistent";
//! * the **barrier synchronization algorithm** (§2.6): barrier-wait members
//!   are removed from a meta state unless every member has reached the
//!   barrier.

use crate::automaton::{MetaAutomaton, MetaId};
use crate::spill::SpillQueue;
use crate::stateset::{fx_hash, SetArena, SetId, StateSet, UnionScratch};
use msc_ir::graph::GraphError;
use msc_ir::util::{FxHashMap, FxHashSet};
use msc_ir::{CostModel, MimdGraph, StateId, Terminator};
use std::fmt;

/// Which successor-choice rule the subset construction uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvertMode {
    /// §2.3: every branching member contributes TRUE / FALSE / both.
    Base,
    /// §2.5: every branching member contributes *both* successors, always.
    Compressed,
}

/// Parameters of the §2.4 time-splitting heuristic. Field names follow the
/// paper's pseudocode (`split_delta`, `split_percent`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSplitOptions {
    /// Noise level: no split when `min + split_delta > max` within a meta
    /// state ("the difference between times is already at noise level").
    pub split_delta: u64,
    /// No split when `min > split_percent × max / 100` ("the utilization is
    /// already sure to be greater than an acceptable percentage").
    pub split_percent: u32,
    /// Safety bound on construction restarts.
    pub max_restarts: u32,
}

impl Default for TimeSplitOptions {
    fn default() -> Self {
        TimeSplitOptions {
            split_delta: 4,
            split_percent: 75,
            max_restarts: 10_000,
        }
    }
}

/// Options controlling [`convert`].
#[derive(Debug, Clone)]
pub struct ConvertOptions {
    /// Base or compressed subset construction.
    pub mode: ConvertMode,
    /// Fold meta states that are strict subsets of another into the
    /// superset (the Figure 5 "2 meta states instead of 8" result).
    /// Defaults on for [`ConvertMode::Compressed`], off for Base.
    pub subsumption: bool,
    /// Enable §2.4 time splitting.
    pub time_split: Option<TimeSplitOptions>,
    /// Honour barrier-wait states per §2.6. When false, `wait` markers are
    /// ignored (useful for measuring what barriers buy).
    pub respect_barriers: bool,
    /// Explosion guard: conversion fails once more than this many meta
    /// states exist (§1.2 problem 1: up to S!/(S−N)! states are possible).
    pub max_meta_states: usize,
    /// Guard on the number of distinct successor sets enumerated for a
    /// single meta state (3ⁿ in base mode before deduplication).
    pub max_successor_sets: usize,
    /// Widest `Multi` terminator the base mode will enumerate subsets of.
    pub max_multi_arity: usize,
    /// Resident-memory budget in bytes for the conversion's interned-set
    /// arena and BFS worklist. Past it, cold interned sets and the
    /// worklist tail spill to a temp-file segment store, so a frontier
    /// larger than RAM degrades to out-of-core operation instead of
    /// failing — the guard above stays the hard cap on *total* states.
    /// `None` = never spill. Defaults to the process-wide
    /// `MSC_MEMORY_BUDGET` (bytes, `k`/`m`/`g` suffixes), when set.
    pub memory_budget: Option<usize>,
    /// Cycle cost model used for time splitting.
    pub costs: CostModel,
}

impl ConvertOptions {
    /// Defaults for the base algorithm (§2.3).
    pub fn base() -> Self {
        ConvertOptions {
            mode: ConvertMode::Base,
            subsumption: false,
            time_split: None,
            respect_barriers: true,
            max_meta_states: 1 << 20,
            max_successor_sets: 1 << 16,
            max_multi_arity: 16,
            memory_budget: crate::spill::default_memory_budget(),
            costs: CostModel::default(),
        }
    }

    /// Defaults for compressed conversion (§2.5), with subsumption.
    pub fn compressed() -> Self {
        ConvertOptions {
            mode: ConvertMode::Compressed,
            subsumption: true,
            ..Self::base()
        }
    }
}

impl Default for ConvertOptions {
    fn default() -> Self {
        Self::base()
    }
}

/// Failures of [`convert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvertError {
    /// The input graph is malformed.
    Graph(GraphError),
    /// The meta-state space exceeded [`ConvertOptions::max_meta_states`].
    TooManyMetaStates {
        /// The configured limit that was hit.
        limit: usize,
    },
    /// A single meta state produced more candidate successor sets than
    /// [`ConvertOptions::max_successor_sets`].
    TooManySuccessorSets {
        /// The meta state whose successors exploded.
        meta: StateSet,
        /// The configured limit that was hit.
        limit: usize,
    },
    /// A `Multi` terminator is too wide to enumerate subsets of in base
    /// mode.
    MultiTooWide {
        /// The offending MIMD state.
        state: StateId,
        /// Its arity.
        arity: usize,
    },
    /// Time splitting kept restarting the construction past its bound.
    TimeSplitDiverged {
        /// Restarts performed before giving up.
        restarts: u32,
    },
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::Graph(e) => write!(f, "invalid MIMD graph: {e}"),
            ConvertError::TooManyMetaStates { limit } => {
                write!(f, "meta-state space exceeded the guard of {limit} states")
            }
            ConvertError::TooManySuccessorSets { meta, limit } => {
                write!(
                    f,
                    "meta state {meta} produced more than {limit} successor sets"
                )
            }
            ConvertError::MultiTooWide { state, arity } => {
                write!(
                    f,
                    "multiway branch at {state} has arity {arity}, too wide to enumerate"
                )
            }
            ConvertError::TimeSplitDiverged { restarts } => {
                write!(
                    f,
                    "time splitting did not converge after {restarts} restarts"
                )
            }
        }
    }
}

impl std::error::Error for ConvertError {}

impl From<GraphError> for ConvertError {
    fn from(e: GraphError) -> Self {
        ConvertError::Graph(e)
    }
}

/// Statistics about a conversion run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConvertStats {
    /// Construction restarts caused by time splitting.
    pub restarts: u32,
    /// MIMD states split by time splitting.
    pub splits: u32,
    /// Meta states folded away by subsumption.
    pub subsumed: u32,
    /// Candidate successor sets enumerated in total (before dedup across
    /// meta states) — a measure of the §2.3 combinatorial work.
    pub successor_sets_enumerated: u64,
}

/// Run meta-state conversion on `graph` (see module docs).
pub fn convert(graph: &MimdGraph, opts: &ConvertOptions) -> Result<MetaAutomaton, ConvertError> {
    convert_with_stats(graph, opts).map(|(a, _)| a)
}

/// [`convert`], also returning construction statistics.
pub fn convert_with_stats(
    graph: &MimdGraph,
    opts: &ConvertOptions,
) -> Result<(MetaAutomaton, ConvertStats), ConvertError> {
    let _span = msc_obs::span("convert.run");
    graph.validate()?;
    let mut g = graph.clone();
    let mut stats = ConvertStats::default();
    let max_restarts = opts
        .time_split
        .as_ref()
        .map(|t| t.max_restarts)
        .unwrap_or(0);

    'restart: loop {
        let mut arena = SetArena::with_budget(opts.memory_budget);
        let mut sets_in_order: Vec<SetId> = Vec::new();
        let mut succs: Vec<Vec<MetaId>> = Vec::new();
        // Latent barrier states per meta state: barrier waits that may hold
        // lingering processes while this meta state's visible members run.
        // barrier_sync (§2.6) removes waits from the visible set; tracking
        // them here lets the converter emit the barrier-release transition
        // even when every visible member halts first (spawned workers
        // finishing after the rest of the array reached a `wait`).
        let mut latents: Vec<StateSet> = Vec::new();
        let mut meta_of_set: Vec<Option<MetaId>> = Vec::new();
        // BFS worklist; under a memory budget its cold middle spills to a
        // temp-file segment store along with the arena's cold sets.
        let mut worklist = SpillQueue::new(opts.memory_budget.is_some());
        // Membership flag per meta state: re-enqueue on latent widening in
        // O(1) instead of scanning the whole worklist.
        let mut in_worklist: Vec<bool> = Vec::new();

        let intern = |set: StateSet,
                      latent: StateSet,
                      arena: &mut SetArena,
                      sets_in_order: &mut Vec<SetId>,
                      succs: &mut Vec<Vec<MetaId>>,
                      latents: &mut Vec<StateSet>,
                      meta_of_set: &mut Vec<Option<MetaId>>,
                      worklist: &mut SpillQueue,
                      in_worklist: &mut Vec<bool>|
         -> MetaId {
            let sid = arena.intern(set);
            if sid.idx() >= meta_of_set.len() {
                meta_of_set.resize(sid.idx() + 1, None);
            }
            if let Some(m) = meta_of_set[sid.idx()] {
                // Known meta state: widen its latent set if this path can
                // leave more waiters behind; its successors must then be
                // recomputed.
                if !latent.is_subset(&latents[m.idx()]) {
                    latents[m.idx()] = latents[m.idx()].union(&latent);
                    if !in_worklist[m.idx()] {
                        in_worklist[m.idx()] = true;
                        worklist.push_back(m.0);
                    }
                }
                return m;
            }
            let m = MetaId(sets_in_order.len() as u32);
            meta_of_set[sid.idx()] = Some(m);
            sets_in_order.push(sid);
            succs.push(Vec::new());
            latents.push(latent);
            in_worklist.push(true);
            worklist.push_back(m.0);
            m
        };

        let start_set = apply_barrier(&g, StateSet::singleton(g.start), opts);
        let start = intern(
            start_set,
            StateSet::empty(),
            &mut arena,
            &mut sets_in_order,
            &mut succs,
            &mut latents,
            &mut meta_of_set,
            &mut worklist,
            &mut in_worklist,
        );

        let mut scratch = SuccScratch::default();
        while let Some(m) = worklist.pop_front().map(MetaId) {
            in_worklist[m.idx()] = false;
            msc_obs::value("convert.worklist_depth", worklist.len() as u64);

            // §2.4: "It would be invoked on each meta state as it is
            // created"; any split restarts the construction.
            if let Some(ts) = &opts.time_split {
                let members = arena.get(sets_in_order[m.idx()]);
                let did = time_split_meta(&mut g, &members, ts, &opts.costs, &mut stats.splits);
                if did {
                    stats.restarts += 1;
                    if stats.restarts > max_restarts {
                        return Err(ConvertError::TimeSplitDiverged {
                            restarts: stats.restarts,
                        });
                    }
                    continue 'restart;
                }
            }

            let targets = successor_sets(
                &g,
                &arena.get(sets_in_order[m.idx()]),
                &latents[m.idx()],
                opts,
                &mut stats,
                &mut scratch,
            )?;
            let mut out: Vec<MetaId> = Vec::with_capacity(targets.len());
            let mut out_seen: FxHashSet<MetaId> = FxHashSet::default();
            for (t, l) in targets {
                let id = intern(
                    t,
                    l,
                    &mut arena,
                    &mut sets_in_order,
                    &mut succs,
                    &mut latents,
                    &mut meta_of_set,
                    &mut worklist,
                    &mut in_worklist,
                );
                if out_seen.insert(id) {
                    out.push(id);
                }
                if sets_in_order.len() > opts.max_meta_states {
                    return Err(ConvertError::TooManyMetaStates {
                        limit: opts.max_meta_states,
                    });
                }
            }
            succs[m.idx()] = out;
        }

        let mut automaton = MetaAutomaton {
            graph: g.clone(),
            sets: sets_in_order.iter().map(|&sid| arena.get(sid)).collect(),
            start,
            succs,
        };
        if opts.subsumption {
            stats.subsumed += crate::subsume::subsume(&mut automaton);
        }
        return Ok((automaton, stats));
    }
}

/// Frontier-expansion hook for external drivers (e.g. the parallel engine
/// in `msc-engine`): enumerate the `(visible members, latent waits)`
/// successor pairs of one meta state exactly as the sequential worklist
/// loop does, returning the candidate-set count alongside (the
/// [`ConvertStats::successor_sets_enumerated`] contribution).
///
/// The expansion of a meta state depends only on `(graph, members, latent,
/// opts)` — not on any converter-global state — which is what makes the
/// frontier safely parallelizable.
pub fn expand_frontier(
    graph: &MimdGraph,
    members: &StateSet,
    latent: &StateSet,
    opts: &ConvertOptions,
) -> Result<(Vec<(StateSet, StateSet)>, u64), ConvertError> {
    let mut stats = ConvertStats::default();
    let mut scratch = SuccScratch::default();
    let targets = successor_sets(graph, members, latent, opts, &mut stats, &mut scratch)?;
    Ok((targets, stats.successor_sets_enumerated))
}

/// §2.6 `barrier_sync`: if some but not all members of `set` are barrier
/// waits, remove the barrier waits; if *all* members are barrier waits the
/// set passes through unchanged (everyone reached the barrier).
pub fn apply_barrier(graph: &MimdGraph, set: StateSet, opts: &ConvertOptions) -> StateSet {
    if !opts.respect_barriers {
        return set;
    }
    barrier_sync(graph, set)
}

/// The paper's `barrier_sync` on a raw set.
pub fn barrier_sync(graph: &MimdGraph, set: StateSet) -> StateSet {
    let waits = set.filter(|s| graph.state(s).barrier);
    if waits.is_empty() || waits.len() == set.len() {
        set
    } else {
        set.difference(&waits)
    }
}

/// Reusable buffers for [`successor_sets`]: the partial-union DP vectors,
/// a hash → index dedup table, and a memo of each member's successor
/// choices (valid for one graph, i.e. one time-split restart). Reusing
/// them across the whole worklist keeps the hot loop free of per-meta
/// allocations once the buffers are warm.
#[derive(Default)]
struct SuccScratch {
    acc: Vec<StateSet>,
    next: Vec<StateSet>,
    /// Fx hash of a candidate set → indices of sets with that hash (into
    /// `next` during the DP, into `out` during the barrier pass).
    dedup: FxHashMap<u64, Vec<u32>>,
    /// Memoized [`member_choices`] keyed by MIMD state id.
    choices: FxHashMap<u32, Vec<StateSet>>,
    /// Candidate-union buffer: each DP step unions into this (hash fused
    /// into the same pass) and only materializes genuinely new sets.
    union: UnionScratch,
}

/// Enumerate the successor meta states of one meta state, per the paper's
/// `reach` routine (base or compressed variant), then push each through
/// `barrier_sync` (§2.6). Returns `(visible members, latent waits)` pairs:
/// barrier states stripped by `barrier_sync` become latent on the successor
/// (plus anything inherited through `latent`), so the barrier-release
/// transition stays statically reachable.
fn successor_sets(
    graph: &MimdGraph,
    members: &StateSet,
    latent: &StateSet,
    opts: &ConvertOptions,
    stats: &mut ConvertStats,
    scratch: &mut SuccScratch,
) -> Result<Vec<(StateSet, StateSet)>, ConvertError> {
    let SuccScratch {
        acc,
        next,
        dedup,
        choices: choices_memo,
        union,
    } = scratch;
    // DP over members: the set of achievable partial unions.
    acc.clear();
    acc.push(StateSet::empty());
    let (mut memo_hits, mut memo_misses) = (0u64, 0u64);
    for m in members.iter() {
        let choices: &Vec<StateSet> = match choices_memo.entry(m.0) {
            std::collections::hash_map::Entry::Occupied(e) => {
                memo_hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                memo_misses += 1;
                e.insert(member_choices(graph, m, opts)?)
            }
        };
        if choices.len() == 1 && choices[0].is_empty() {
            continue; // Halt member contributes nothing.
        }
        next.clear();
        dedup.clear();
        for u in acc.iter() {
            for c in choices {
                // Union into the reusable scratch with the Fx hash fused
                // into the same pass; only a genuinely new candidate pays
                // an allocation. Hash values, bucket probe order, and
                // insertion order are identical to the allocate-then-hash
                // path, so the constructed automaton is bit-identical.
                let h = u.union_into_scratch(c, union);
                let bucket = dedup.entry(h).or_default();
                if !bucket.iter().any(|&i| union.matches(&next[i as usize])) {
                    bucket.push(next.len() as u32);
                    next.push(union.materialize());
                }
            }
            if next.len() > opts.max_successor_sets {
                return Err(ConvertError::TooManySuccessorSets {
                    meta: members.clone(),
                    limit: opts.max_successor_sets,
                });
            }
        }
        std::mem::swap(acc, next);
    }
    stats.successor_sets_enumerated += acc.len() as u64;
    if msc_obs::enabled() {
        msc_obs::count("convert.memo_hit", memo_hits);
        msc_obs::count("convert.memo_miss", memo_misses);
        msc_obs::value("convert.fanout", acc.len() as u64);
    }

    // Re-inject inherited latent waits, apply barrier filtering, dedupe by
    // visible set (merging latents), and drop the empty set (every member
    // halted and nothing lingers — a terminal meta state, §3.2.1).
    let mut out: Vec<(StateSet, StateSet)> = Vec::with_capacity(acc.len());
    dedup.clear();
    let mut had_barrier_filter = false;
    let mut push = |v: StateSet, l: StateSet, out: &mut Vec<(StateSet, StateSet)>| {
        let bucket = dedup.entry(fx_hash(&v)).or_default();
        if let Some(&i) = bucket.iter().find(|&&i| out[i as usize].0 == v) {
            out[i as usize].1 = out[i as usize].1.union(&l);
        } else {
            bucket.push(out.len() as u32);
            out.push((v, l));
        }
    };
    for t in acc.drain(..) {
        let t_all = t.union(latent);
        if t_all.is_empty() {
            continue;
        }
        if !opts.respect_barriers {
            push(t_all, StateSet::empty(), &mut out);
            continue;
        }
        let waits = t_all.filter(|s| graph.state(s).barrier);
        if waits.is_empty() || waits.len() == t_all.len() {
            // No barrier involvement, or everyone is at the barrier: the
            // all-barrier meta state is the release point (§2.6).
            push(t_all, StateSet::empty(), &mut out);
        } else {
            had_barrier_filter = true;
            push(t_all.difference(&waits), waits, &mut out);
        }
    }

    // §3.2.4 for compressed mode: a compressed transition is unconditional,
    // but once *every* PE has reached the barrier the automaton must be able
    // to enter the all-barrier meta state. Base mode enumerates that choice
    // naturally; compressed mode must add it explicitly.
    if opts.mode == ConvertMode::Compressed && opts.respect_barriers && had_barrier_filter {
        // The all-barrier set reachable from here: barrier successors of
        // the members, barrier members, and inherited latent waits.
        let mut waits = latent.clone();
        for m in members.iter() {
            for s in graph.state(m).term.successors() {
                if graph.state(s).barrier {
                    waits.insert(s);
                }
            }
            if graph.state(m).barrier {
                waits.insert(m);
            }
        }
        if !waits.is_empty() {
            push(waits, StateSet::empty(), &mut out);
        }
    }
    Ok(out)
}

/// The successor-choice sets of one member MIMD state.
fn member_choices(
    graph: &MimdGraph,
    m: StateId,
    opts: &ConvertOptions,
) -> Result<Vec<StateSet>, ConvertError> {
    let term = &graph.state(m).term;
    Ok(match term {
        Terminator::Halt => vec![StateSet::empty()],
        Terminator::Jump(b) => vec![StateSet::singleton(*b)],
        Terminator::Branch { t, f } => {
            if t == f {
                vec![StateSet::singleton(*t)]
            } else {
                match opts.mode {
                    ConvertMode::Base => vec![
                        StateSet::singleton(*t),
                        StateSet::singleton(*f),
                        StateSet::from_iter([*t, *f]),
                    ],
                    ConvertMode::Compressed => vec![StateSet::from_iter([*t, *f])],
                }
            }
        }
        Terminator::Multi(v) => {
            let uniq = StateSet::from_iter(v.iter().copied());
            match opts.mode {
                ConvertMode::Compressed => vec![uniq],
                ConvertMode::Base => {
                    let k = uniq.len();
                    if k > opts.max_multi_arity {
                        return Err(ConvertError::MultiTooWide { state: m, arity: k });
                    }
                    // All 2^k − 1 non-empty subsets (3 = 2²−1 reproduces the
                    // paper's per-branch bound).
                    let ids: Vec<StateId> = uniq.iter().collect();
                    let mut subsets = Vec::with_capacity((1usize << k) - 1);
                    for mask in 1u32..(1u32 << k) {
                        subsets.push(StateSet::from_iter(
                            ids.iter()
                                .enumerate()
                                .filter(|(i, _)| mask & (1 << i) != 0)
                                .map(|(_, s)| *s),
                        ));
                    }
                    subsets
                }
            }
        }
        // §3.2.5: "the semantics are that both paths must be taken".
        Terminator::Spawn { child, next } => vec![StateSet::from_iter([*child, *next])],
    })
}

/// §2.4 `time_split_state` applied to a meta state's members. Returns true
/// when at least one member was split (construction must restart).
fn time_split_meta(
    graph: &mut MimdGraph,
    members: &StateSet,
    ts: &TimeSplitOptions,
    costs: &CostModel,
    splits: &mut u32,
) -> bool {
    // "Ignore zero execution time components because you can't do anything
    // about them anyway."
    let times: Vec<(StateId, u64)> = members
        .iter()
        .map(|s| (s, graph.state_cost(s, costs)))
        .filter(|&(_, t)| t > 0)
        .collect();
    if times.len() < 2 {
        return false;
    }
    let min = times.iter().map(|&(_, t)| t).min().unwrap();
    let max = times.iter().map(|&(_, t)| t).max().unwrap();
    // "Is enough time wasted to be worth splitting?"
    if min + ts.split_delta > max {
        return false;
    }
    if min > (ts.split_percent as u64).saturating_mul(max) / 100 {
        return false;
    }
    let mut did = false;
    for (s, t) in times {
        if t > min && graph.split_state(s, min, costs).is_some() {
            *splits += 1;
            did = true;
        }
    }
    did
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_ir::{MimdState, Op};

    /// Figure 1's MIMD graph for Listing 1, with paper state numbering
    /// 0 = A, 1 = B;C, 2 = D;E, 3 = F (the paper calls them 0, 2, 6, 9 —
    /// its prototype numbers states by instruction offsets; ids differ,
    /// structure is identical).
    fn listing1() -> MimdGraph {
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(vec![Op::Push(1)], Terminator::Halt).labeled("A"));
        let b = g.add(MimdState::new(vec![Op::Push(1)], Terminator::Halt).labeled("B;C"));
        let d = g.add(MimdState::new(vec![Op::Push(1)], Terminator::Halt).labeled("D;E"));
        let f = g.add(MimdState::new(vec![Op::Push(1)], Terminator::Halt).labeled("F"));
        g.state_mut(a).term = Terminator::Branch { t: b, f: d };
        g.state_mut(b).term = Terminator::Branch { t: b, f };
        g.state_mut(d).term = Terminator::Branch { t: d, f };
        g.start = a;
        g
    }

    fn set(v: &[u32]) -> StateSet {
        StateSet::from_iter(v.iter().map(|&x| StateId(x)))
    }

    #[test]
    fn figure2_base_conversion_has_eight_meta_states() {
        let a = convert(&listing1(), &ConvertOptions::base()).unwrap();
        assert_eq!(a.len(), 8, "Figure 2: eight meta states\n{}", a.text());
        // The paper's sets, translated to our ids (0,1,2,3):
        for s in [
            set(&[0]),
            set(&[1]),
            set(&[2]),
            set(&[1, 2]),
            set(&[1, 3]),
            set(&[2, 3]),
            set(&[1, 2, 3]),
            set(&[3]),
        ] {
            assert!(a.find(&s).is_some(), "missing meta state {s}\n{}", a.text());
        }
        assert_eq!(a.validate(), Ok(()));
    }

    #[test]
    fn figure2_transition_relation() {
        let a = convert(&listing1(), &ConvertOptions::base()).unwrap();
        let id = |v: &[u32]| a.find(&set(v)).unwrap();
        let succ_sets = |v: &[u32]| {
            let mut s: Vec<StateSet> = a
                .successors(id(v))
                .iter()
                .map(|m| a.members(*m).clone())
                .collect();
            s.sort();
            s
        };
        // From {0}: {1}, {2}, {1,2} (sorted lexicographically).
        assert_eq!(succ_sets(&[0]), vec![set(&[1]), set(&[1, 2]), set(&[2])]);
        // From {1}: {1}, {3}, {1,3}.
        assert_eq!(succ_sets(&[1]), vec![set(&[1]), set(&[1, 3]), set(&[3])]);
        // From {1,2}: five distinct targets.
        assert_eq!(
            succ_sets(&[1, 2]),
            vec![
                set(&[1, 2]),
                set(&[1, 2, 3]),
                set(&[1, 3]),
                set(&[2, 3]),
                set(&[3])
            ]
        );
        // {3} is terminal.
        assert!(a.successors(id(&[3])).is_empty());
    }

    #[test]
    fn figure5_compressed_conversion_has_two_meta_states() {
        let a = convert(&listing1(), &ConvertOptions::compressed()).unwrap();
        assert_eq!(a.len(), 2, "Figure 5: two meta states\n{}", a.text());
        assert!(a.find(&set(&[0])).is_some());
        let big = a.find(&set(&[1, 2, 3])).expect("the {B,D,F} superset");
        // {0} → {1,2,3} → {1,2,3}.
        assert_eq!(a.successors(a.start), &[big]);
        assert_eq!(a.successors(big), &[big]);
        assert!(a.is_deterministic());
    }

    #[test]
    fn compressed_without_subsumption_has_three() {
        let mut opts = ConvertOptions::compressed();
        opts.subsumption = false;
        let a = convert(&listing1(), &opts).unwrap();
        assert_eq!(a.len(), 3, "{{0}}, {{1,2}}, {{1,2,3}}\n{}", a.text());
    }

    /// Listing 3: Listing 1 plus a barrier before F.
    fn listing3() -> MimdGraph {
        let mut g = listing1();
        g.state_mut(StateId(3)).barrier = true;
        g
    }

    #[test]
    fn figure6_barrier_constrains_transitions() {
        let a = convert(&listing3(), &ConvertOptions::base()).unwrap();
        // {0},{1},{2},{1,2},{3}: five states; no {1,3} or {2,3} may exist.
        assert_eq!(a.len(), 5, "{}", a.text());
        assert!(
            a.find(&set(&[1, 3])).is_none(),
            "barrier must remove 3 from {{1,3}}"
        );
        assert!(a.find(&set(&[2, 3])).is_none());
        assert!(a.find(&set(&[1, 2, 3])).is_none());
        let all_barrier = a.find(&set(&[3])).unwrap();
        assert!(a.successors(all_barrier).is_empty());
        // {1} can reach {3} (everyone at the barrier) and itself.
        let m1 = a.find(&set(&[1])).unwrap();
        let succ: Vec<&StateSet> = a.successors(m1).iter().map(|m| a.members(*m)).collect();
        assert!(succ.contains(&&set(&[3])));
        assert!(succ.contains(&&set(&[1])));
    }

    #[test]
    fn barrier_with_compression_keeps_release_edge() {
        let mut opts = ConvertOptions::compressed();
        opts.subsumption = false;
        let a = convert(&listing3(), &opts).unwrap();
        // {0} → {1,2} → {1,2} ∪ release edge to {3}.
        let m12 = a.find(&set(&[1, 2])).expect("{1,2} exists");
        let succ: Vec<&StateSet> = a.successors(m12).iter().map(|m| a.members(*m)).collect();
        assert!(succ.contains(&&set(&[1, 2])), "{}", a.text());
        assert!(
            succ.contains(&&set(&[3])),
            "release edge missing: {}",
            a.text()
        );
    }

    #[test]
    fn barriers_ignored_when_disabled() {
        let mut opts = ConvertOptions::base();
        opts.respect_barriers = false;
        let a = convert(&listing3(), &opts).unwrap();
        assert_eq!(a.len(), 8, "same as Figure 2 when barriers are ignored");
    }

    #[test]
    fn straight_line_program_is_linear() {
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(vec![Op::Push(1)], Terminator::Halt));
        let b = g.add(MimdState::new(vec![Op::Push(2)], Terminator::Halt));
        let c = g.add(MimdState::new(vec![Op::Push(3)], Terminator::Halt));
        g.state_mut(a).term = Terminator::Jump(b);
        g.state_mut(b).term = Terminator::Jump(c);
        g.start = a;
        let auto = convert(&g, &ConvertOptions::base()).unwrap();
        assert_eq!(auto.len(), 3);
        assert!(auto.is_deterministic());
    }

    #[test]
    fn spawn_takes_both_paths_in_base_mode() {
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(vec![Op::Push(1)], Terminator::Halt));
        let child = g.add(MimdState::new(vec![Op::Push(2)], Terminator::Halt));
        let next = g.add(MimdState::new(vec![Op::Push(3)], Terminator::Halt));
        g.state_mut(a).term = Terminator::Spawn { child, next };
        g.start = a;
        let auto = convert(&g, &ConvertOptions::base()).unwrap();
        // {a} has exactly one successor: {child, next}.
        assert_eq!(auto.successors(auto.start).len(), 1);
        let s = auto.successors(auto.start)[0];
        assert_eq!(auto.members(s), &set(&[1, 2]));
    }

    #[test]
    fn multi_enumerates_all_nonempty_subsets() {
        let mut g = MimdGraph::new();
        let t1 = 1u32;
        let a = g.add(MimdState::new(vec![Op::Push(0)], Terminator::Halt));
        let b = g.add(MimdState::new(vec![Op::Push(1)], Terminator::Halt));
        let c = g.add(MimdState::new(vec![Op::Push(2)], Terminator::Halt));
        let d = g.add(MimdState::new(vec![Op::Push(3)], Terminator::Halt));
        g.state_mut(a).term = Terminator::Multi(vec![b, c, d]);
        g.start = a;
        let auto = convert(&g, &ConvertOptions::base()).unwrap();
        // 2³−1 = 7 successor sets from the start state.
        assert_eq!(auto.successors(auto.start).len(), 7);
        let _ = t1;
    }

    #[test]
    fn multi_too_wide_errors_in_base_mode() {
        let mut g = MimdGraph::new();
        let targets: Vec<StateId> = (0..20)
            .map(|i| g.add(MimdState::new(vec![Op::Push(i)], Terminator::Halt)))
            .collect();
        let a = g.add(MimdState::new(
            vec![Op::Push(0)],
            Terminator::Multi(targets),
        ));
        g.start = a;
        let err = convert(&g, &ConvertOptions::base()).unwrap_err();
        assert!(matches!(err, ConvertError::MultiTooWide { arity: 20, .. }));
        // Compressed mode handles it fine.
        assert!(convert(&g, &ConvertOptions::compressed()).is_ok());
    }

    #[test]
    fn explosion_guard_fires() {
        // A chain of n branching states all reachable together explodes in
        // base mode; the guard must fail cleanly.
        let mut g = MimdGraph::new();
        let n = 12;
        let ids: Vec<StateId> = (0..n)
            .map(|i| g.add(MimdState::new(vec![Op::Push(i)], Terminator::Halt)))
            .collect();
        let end = g.add(MimdState::new(vec![], Terminator::Halt));
        for (i, &id) in ids.iter().enumerate() {
            let next = if i + 1 < ids.len() { ids[i + 1] } else { end };
            g.state_mut(id).term = Terminator::Branch { t: next, f: end };
        }
        g.start = ids[0];
        let mut opts = ConvertOptions::base();
        opts.max_meta_states = 10;
        let err = convert(&g, &opts).unwrap_err();
        assert_eq!(err, ConvertError::TooManyMetaStates { limit: 10 });
    }

    #[test]
    fn spill_budget_conversion_is_bit_identical() {
        // A fan-out to n independent self-loops (the 3ⁿ frontier shape),
        // converted once in RAM and once under a budget tiny enough to
        // force both the arena and the worklist out of core: the automata
        // must be identical, byte for byte.
        let mut g = MimdGraph::new();
        let end = g.add(MimdState::new(vec![], Terminator::Halt));
        let loops: Vec<StateId> = (0..6)
            .map(|i| g.add(MimdState::new(vec![Op::Push(i)], Terminator::Halt)))
            .collect();
        for &l in &loops {
            g.state_mut(l).term = Terminator::Branch { t: l, f: end };
        }
        let root = g.add(MimdState::new(vec![], Terminator::Multi(loops)));
        g.start = root;
        let mut opts = ConvertOptions::base();
        opts.memory_budget = None;
        let plain = convert(&g, &opts).unwrap();
        opts.memory_budget = Some(512);
        let spilled = convert(&g, &opts).unwrap();
        assert!(plain.len() > 50, "workload must be non-trivial");
        assert_eq!(plain.sets, spilled.sets);
        assert_eq!(plain.succs, spilled.succs);
        assert_eq!(plain.start, spilled.start);
    }

    #[test]
    fn time_split_balances_five_vs_hundred() {
        // §2.4's motivating example: a 5-cycle and a 100-cycle state merged
        // into one meta state. cost(Push)=1 per default model.
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(vec![Op::Push(0)], Terminator::Halt));
        let short = g.add(MimdState::new(vec![Op::Push(1); 5], Terminator::Halt).labeled("α"));
        let long = g.add(MimdState::new(vec![Op::Push(2); 100], Terminator::Halt).labeled("β"));
        let end = g.add(MimdState::new(vec![], Terminator::Halt));
        g.state_mut(a).term = Terminator::Branch { t: short, f: long };
        g.state_mut(short).term = Terminator::Jump(end);
        g.state_mut(long).term = Terminator::Jump(end);
        g.start = a;

        let mut opts = ConvertOptions::compressed();
        opts.subsumption = false;
        opts.time_split = Some(TimeSplitOptions::default());
        let (auto, stats) = convert_with_stats(&g, &opts).unwrap();
        assert!(stats.splits > 0, "the 100-cycle state must be split");
        // Every meta state must now be balanced within split_delta.
        assert!(
            auto.max_imbalance(&opts.costs) <= 4,
            "imbalance {} > delta\n{}",
            auto.max_imbalance(&opts.costs),
            auto.text()
        );
    }

    #[test]
    fn time_split_leaves_balanced_states_alone() {
        let mut g = MimdGraph::new();
        let a = g.add(MimdState::new(vec![Op::Push(0)], Terminator::Halt));
        let x = g.add(MimdState::new(vec![Op::Push(1); 10], Terminator::Halt));
        let y = g.add(MimdState::new(vec![Op::Push(2); 10], Terminator::Halt));
        g.state_mut(a).term = Terminator::Branch { t: x, f: y };
        g.start = a;
        let mut opts = ConvertOptions::base();
        opts.time_split = Some(TimeSplitOptions::default());
        let (_, stats) = convert_with_stats(&g, &opts).unwrap();
        assert_eq!(stats.splits, 0);
        assert_eq!(stats.restarts, 0);
    }

    #[test]
    fn stats_count_successor_enumeration() {
        let (_, stats) = convert_with_stats(&listing1(), &ConvertOptions::base()).unwrap();
        assert!(stats.successor_sets_enumerated >= 8);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use msc_ir::{MimdState, Op};
    use proptest::prelude::*;

    /// Random small MIMD graphs: every state gets a cheap block and a
    /// terminator drawn over valid targets. Start is state 0.
    fn arb_graph() -> impl Strategy<Value = MimdGraph> {
        (
            2usize..8,
            prop::collection::vec((0u8..4, 0u32..64, 0u32..64, any::<bool>()), 2..8),
        )
            .prop_map(|(n, seeds)| {
                let n = n.min(seeds.len());
                let mut g = MimdGraph::new();
                for (i, &(_, _, _, barrier)) in seeds.iter().take(n).enumerate() {
                    let mut st = MimdState::new(vec![Op::Push(i as i64)], Terminator::Halt);
                    // Keep barriers rare-ish and never on the start state
                    // (an all-barrier start is legal but uninteresting).
                    st.barrier = barrier && i != 0 && i % 3 == 0;
                    g.add(st);
                }
                for (i, &(kind, a, b, _)) in seeds.iter().take(n).enumerate() {
                    let t = StateId(a % n as u32);
                    let f = StateId(b % n as u32);
                    let id = StateId(i as u32);
                    g.state_mut(id).term = match kind % 4 {
                        0 => Terminator::Halt,
                        1 => Terminator::Jump(t),
                        2 => Terminator::Branch { t, f },
                        _ => Terminator::Multi(vec![t, f]),
                    };
                }
                g.start = StateId(0);
                g
            })
    }

    proptest! {
        /// Conversion of arbitrary graphs yields structurally valid
        /// automatons whose members are all real states, in both modes.
        #[test]
        fn convert_yields_valid_automaton(g in arb_graph()) {
            for opts in [ConvertOptions::base(), ConvertOptions::compressed()] {
                let mut opts = opts;
                opts.max_meta_states = 4096;
                match convert(&g, &opts) {
                    Ok(auto) => {
                        prop_assert_eq!(auto.validate(), Ok(()));
                        // Start meta state contains the MIMD start state
                        // (unless barrier_sync stripped it, which cannot
                        // happen: state 0 is never a barrier here).
                        prop_assert!(auto.members(auto.start).contains(g.start));
                    }
                    Err(ConvertError::TooManyMetaStates { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            }
        }

        /// Conversion is deterministic.
        #[test]
        fn convert_deterministic(g in arb_graph()) {
            let mut opts = ConvertOptions::base();
            opts.max_meta_states = 4096;
            let a = convert(&g, &opts);
            let b = convert(&g, &opts);
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(x.sets, y.sets);
                    prop_assert_eq!(x.succs, y.succs);
                }
                (Err(_), Err(_)) => {}
                _ => return Err(TestCaseError::fail(String::from("nondeterministic outcome"))),
            }
        }

        /// Compression never has more meta states than base (when both
        /// fit under the guard), and its automaton is narrower than or
        /// equal to base in count but wider or equal in max width.
        #[test]
        fn compressed_never_larger(g in arb_graph()) {
            let mut bopts = ConvertOptions::base();
            bopts.max_meta_states = 4096;
            let mut copts = ConvertOptions::compressed();
            copts.max_meta_states = 4096;
            if let (Ok(base), Ok(comp)) = (convert(&g, &bopts), convert(&g, &copts)) {
                prop_assert!(
                    comp.len() <= base.len(),
                    "compressed {} > base {}", comp.len(), base.len()
                );
            }
        }

        /// Every meta state's members are simultaneously reachable in the
        /// base automaton: all members appear in some successor chain from
        /// the start (weak sanity: members must be graph-reachable states).
        #[test]
        fn members_are_reachable_states(g in arb_graph()) {
            let mut opts = ConvertOptions::base();
            opts.max_meta_states = 4096;
            if let Ok(auto) = convert(&g, &opts) {
                let reach = g.reachable();
                for set in &auto.sets {
                    for m in set.iter() {
                        prop_assert!(
                            reach[m.idx()],
                            "meta member {m} is not graph-reachable"
                        );
                    }
                }
            }
        }

        /// Spilling never changes the result: conversion under a tiny
        /// memory budget is bit-identical to the in-RAM conversion.
        #[test]
        fn spilled_conversion_bit_identical(g in arb_graph()) {
            let mut opts = ConvertOptions::base();
            opts.max_meta_states = 4096;
            opts.memory_budget = None;
            let mut sopts = opts.clone();
            sopts.memory_budget = Some(256);
            match (convert(&g, &opts), convert(&g, &sopts)) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(x.sets, y.sets);
                    prop_assert_eq!(x.succs, y.succs);
                    prop_assert_eq!(x.start, y.start);
                }
                (Err(a), Err(b)) => prop_assert_eq!(format!("{a}"), format!("{b}")),
                _ => return Err(TestCaseError::fail(String::from("spill changed the outcome"))),
            }
        }

        /// Subsumption only ever removes states and preserves validity.
        #[test]
        fn subsumption_shrinks(g in arb_graph()) {
            let mut opts = ConvertOptions::compressed();
            opts.subsumption = false;
            opts.max_meta_states = 4096;
            if let Ok(auto) = convert(&g, &opts) {
                let before = auto.len();
                let mut folded = auto.clone();
                crate::subsume::subsume(&mut folded);
                prop_assert!(folded.len() <= before);
                prop_assert_eq!(folded.validate(), Ok(()));
            }
        }
    }
}
