//! # msc-core — Meta-State Conversion
//!
//! The paper's primary contribution (§2): converting a MIMD state graph
//! into a finite automaton over **meta states** — sets of MIMD states that
//! can coexist at one instant — so the whole MIMD program runs under a
//! single SIMD program counter.
//!
//! * [`stateset`] — interned sorted-set representation of meta states.
//! * [`convert`](convert()) — the base (§2.3) and compressed (§2.5) subset
//!   constructions, with time splitting (§2.4) and barrier constraint
//!   propagation (§2.6).
//! * [`subsume`](subsume::subsume) — the superset-emulates-subset fold that
//!   yields Figure 5's two-state compressed automaton.
//! * [`MetaAutomaton`] — the result, with width/determinism/imbalance
//!   metrics used by the experiments.

pub mod automaton;
pub mod convert;
pub mod spill;
pub mod stateset;
pub mod subsume;

pub use automaton::{MetaAutomaton, MetaId};
pub use convert::{
    apply_barrier, barrier_sync, convert, convert_with_stats, expand_frontier, ConvertError,
    ConvertMode, ConvertOptions, ConvertStats, TimeSplitOptions,
};
pub use spill::{default_memory_budget, parse_bytes, SegmentStore, SpillQueue};
pub use stateset::{fx_hash, SetArena, SetId, StateSet, UnionScratch};
