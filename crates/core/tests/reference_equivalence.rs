//! Bit-identity of the hybrid-set converter against the seed semantics.
//!
//! `StateSet` changed representation (inline small set spilling to a word
//! bitset) and the converter/subsumption pipelines were rebuilt around it
//! (scratch buffers, hash-indexed dedup, inverted-index subsumption). The
//! required invariant is that none of that changed a single observable
//! bit: the automaton (member sets, successor lists, start id — i.e. the
//! canonical numbering produced by discovery order) and the
//! `ConvertStats` must be identical to what the original sorted-`Vec<u32>`
//! implementation produced.
//!
//! This test *re-implements* the original algorithm over plain sorted
//! vectors — set algebra, worklist, latent-barrier widening (§2.6), time
//! splitting (§2.4), subsumption (§2.5), unreachable pruning — and checks
//! equality on randomized MIMD graphs, including barrier and time-split
//! programs, in base and compressed modes.

use msc_core::convert::{ConvertError, ConvertMode, ConvertOptions, TimeSplitOptions};
use msc_core::convert_with_stats;
use msc_ir::{CostModel, MimdGraph, MimdState, Op, StateId, Terminator};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet, VecDeque};

// ---------------------------------------------------------------------------
// Reference set algebra: sorted, deduplicated Vec<u32>, exactly as the seed
// StateSet stored it.
// ---------------------------------------------------------------------------

type VSet = Vec<u32>;

fn v_from(iter: impl IntoIterator<Item = u32>) -> VSet {
    let mut v: VSet = iter.into_iter().collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn v_union(a: &VSet, b: &VSet) -> VSet {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn v_difference(a: &VSet, b: &VSet) -> VSet {
    a.iter().copied().filter(|x| !b.contains(x)).collect()
}

fn v_insert(v: &mut VSet, x: u32) {
    if let Err(pos) = v.binary_search(&x) {
        v.insert(pos, x);
    }
}

fn v_is_subset(a: &VSet, b: &VSet) -> bool {
    a.len() <= b.len() && a.iter().all(|x| b.contains(x))
}

fn v_is_strict_subset(a: &VSet, b: &VSet) -> bool {
    a.len() < b.len() && v_is_subset(a, b)
}

// ---------------------------------------------------------------------------
// Reference converter: a line-for-line transcription of the original
// worklist algorithm over VSet.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RefStats {
    restarts: u32,
    splits: u32,
    subsumed: u32,
    enumerated: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct RefAutomaton {
    sets: Vec<VSet>,
    start: usize,
    succs: Vec<Vec<usize>>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum RefError {
    TooManyMetaStates,
    TooManySuccessorSets,
    MultiTooWide,
    TimeSplitDiverged,
}

fn ref_member_choices(
    graph: &MimdGraph,
    m: StateId,
    opts: &ConvertOptions,
) -> Result<Vec<VSet>, RefError> {
    let term = &graph.state(m).term;
    Ok(match term {
        Terminator::Halt => vec![vec![]],
        Terminator::Jump(b) => vec![vec![b.0]],
        Terminator::Branch { t, f } => {
            if t == f {
                vec![vec![t.0]]
            } else {
                match opts.mode {
                    ConvertMode::Base => vec![vec![t.0], vec![f.0], v_from([t.0, f.0])],
                    ConvertMode::Compressed => vec![v_from([t.0, f.0])],
                }
            }
        }
        Terminator::Multi(v) => {
            let uniq = v_from(v.iter().map(|s| s.0));
            match opts.mode {
                ConvertMode::Compressed => vec![uniq],
                ConvertMode::Base => {
                    let k = uniq.len();
                    if k > opts.max_multi_arity {
                        return Err(RefError::MultiTooWide);
                    }
                    let mut subsets = Vec::with_capacity((1usize << k) - 1);
                    for mask in 1u32..(1u32 << k) {
                        subsets.push(
                            uniq.iter()
                                .enumerate()
                                .filter(|(i, _)| mask & (1 << i) != 0)
                                .map(|(_, s)| *s)
                                .collect(),
                        );
                    }
                    subsets
                }
            }
        }
        Terminator::Spawn { child, next } => vec![v_from([child.0, next.0])],
    })
}

fn ref_barrier_sync(graph: &MimdGraph, set: VSet) -> VSet {
    let waits: VSet = set
        .iter()
        .copied()
        .filter(|&s| graph.state(StateId(s)).barrier)
        .collect();
    if waits.is_empty() || waits.len() == set.len() {
        set
    } else {
        v_difference(&set, &waits)
    }
}

#[allow(clippy::type_complexity)]
fn ref_successor_sets(
    graph: &MimdGraph,
    members: &VSet,
    latent: &VSet,
    opts: &ConvertOptions,
    stats: &mut RefStats,
) -> Result<Vec<(VSet, VSet)>, RefError> {
    let mut acc: Vec<VSet> = vec![vec![]];
    for &m in members {
        let choices = ref_member_choices(graph, StateId(m), opts)?;
        if choices.len() == 1 && choices[0].is_empty() {
            continue;
        }
        let mut next: Vec<VSet> = Vec::new();
        let mut seen: HashSet<VSet> = HashSet::new();
        for u in &acc {
            for c in &choices {
                let t = v_union(u, c);
                if seen.insert(t.clone()) {
                    next.push(t);
                }
            }
            if next.len() > opts.max_successor_sets {
                return Err(RefError::TooManySuccessorSets);
            }
        }
        acc = next;
    }
    stats.enumerated += acc.len() as u64;

    let mut out: Vec<(VSet, VSet)> = Vec::new();
    let mut had_barrier_filter = false;
    fn push(v: VSet, l: VSet, out: &mut Vec<(VSet, VSet)>) {
        if let Some(entry) = out.iter_mut().find(|(ev, _)| *ev == v) {
            entry.1 = v_union(&entry.1, &l);
        } else {
            out.push((v, l));
        }
    }
    for t in acc {
        let t_all = v_union(&t, latent);
        if t_all.is_empty() {
            continue;
        }
        if !opts.respect_barriers {
            push(t_all, vec![], &mut out);
            continue;
        }
        let waits: VSet = t_all
            .iter()
            .copied()
            .filter(|&s| graph.state(StateId(s)).barrier)
            .collect();
        if waits.is_empty() || waits.len() == t_all.len() {
            push(t_all, vec![], &mut out);
        } else {
            had_barrier_filter = true;
            push(v_difference(&t_all, &waits), waits, &mut out);
        }
    }

    if opts.mode == ConvertMode::Compressed && opts.respect_barriers && had_barrier_filter {
        let mut waits = latent.clone();
        for &m in members {
            for s in graph.state(StateId(m)).term.successors() {
                if graph.state(s).barrier {
                    v_insert(&mut waits, s.0);
                }
            }
            if graph.state(StateId(m)).barrier {
                v_insert(&mut waits, m);
            }
        }
        if !waits.is_empty() {
            push(waits, vec![], &mut out);
        }
    }
    Ok(out)
}

fn ref_time_split_meta(
    graph: &mut MimdGraph,
    members: &VSet,
    ts: &TimeSplitOptions,
    costs: &CostModel,
    splits: &mut u32,
) -> bool {
    let times: Vec<(StateId, u64)> = members
        .iter()
        .map(|&s| (StateId(s), graph.state_cost(StateId(s), costs)))
        .filter(|&(_, t)| t > 0)
        .collect();
    if times.len() < 2 {
        return false;
    }
    let min = times.iter().map(|&(_, t)| t).min().unwrap();
    let max = times.iter().map(|&(_, t)| t).max().unwrap();
    if min + ts.split_delta > max {
        return false;
    }
    if min > (ts.split_percent as u64).saturating_mul(max) / 100 {
        return false;
    }
    let mut did = false;
    for (s, t) in times {
        if t > min && graph.split_state(s, min, costs).is_some() {
            *splits += 1;
            did = true;
        }
    }
    did
}

fn ref_prune_unreachable(auto: &mut RefAutomaton) {
    let n = auto.sets.len();
    if n == 0 {
        return;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![auto.start];
    seen[auto.start] = true;
    while let Some(m) = stack.pop() {
        for &s in &auto.succs[m] {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    if seen.iter().all(|&b| b) {
        return;
    }
    let mut new_id = vec![None; n];
    let mut kept = Vec::new();
    for (i, &s) in seen.iter().enumerate() {
        if s {
            new_id[i] = Some(kept.len());
            kept.push(i);
        }
    }
    auto.sets = kept.iter().map(|&i| auto.sets[i].clone()).collect();
    auto.succs = kept
        .iter()
        .map(|&i| auto.succs[i].iter().map(|&s| new_id[s].unwrap()).collect())
        .collect();
    auto.start = new_id[auto.start].unwrap();
}

fn ref_subsume(graph: &MimdGraph, auto: &mut RefAutomaton) -> u32 {
    let n = auto.sets.len();
    if n == 0 {
        return 0;
    }
    let barrier_only: Vec<bool> = auto
        .sets
        .iter()
        .map(|s| !s.is_empty() && s.iter().all(|&m| graph.state(StateId(m)).barrier))
        .collect();
    let mut remap: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(auto.sets[i].len()));
    for &i in &order {
        if barrier_only[i] {
            continue;
        }
        let mut best: Option<usize> = None;
        for &j in &order {
            if j == i || barrier_only[j] {
                continue;
            }
            if v_is_strict_subset(&auto.sets[i], &auto.sets[j]) {
                let better = match best {
                    None => true,
                    Some(b) => {
                        (auto.sets[j].len(), std::cmp::Reverse(j))
                            > (auto.sets[b].len(), std::cmp::Reverse(b))
                    }
                };
                if better {
                    best = Some(j);
                }
            }
        }
        if let Some(j) = best {
            remap[i] = j;
        }
    }
    fn resolve(remap: &[usize], mut i: usize) -> usize {
        let mut hops = 0;
        while remap[i] != i {
            i = remap[i];
            hops += 1;
            if hops > remap.len() {
                break;
            }
        }
        i
    }
    let removed = (0..n).filter(|&i| resolve(&remap, i) != i).count() as u32;
    if removed == 0 {
        return 0;
    }
    let mut new_id = vec![None; n];
    let mut kept: Vec<usize> = Vec::new();
    for (i, slot) in new_id.iter_mut().enumerate() {
        if resolve(&remap, i) == i {
            *slot = Some(kept.len());
            kept.push(i);
        }
    }
    let map = |i: usize| new_id[resolve(&remap, i)].unwrap();
    let mut sets = Vec::with_capacity(kept.len());
    let mut succs: Vec<Vec<usize>> = Vec::with_capacity(kept.len());
    for &i in &kept {
        sets.push(auto.sets[i].clone());
        let mut out: Vec<usize> = Vec::new();
        for &s in &auto.succs[i] {
            let t = map(s);
            if !out.contains(&t) {
                out.push(t);
            }
        }
        succs.push(out);
    }
    auto.start = map(auto.start);
    auto.sets = sets;
    auto.succs = succs;
    ref_prune_unreachable(auto);
    removed
}

fn ref_convert(
    graph: &MimdGraph,
    opts: &ConvertOptions,
) -> Result<(RefAutomaton, RefStats), RefError> {
    let mut g = graph.clone();
    let mut stats = RefStats::default();
    let max_restarts = opts
        .time_split
        .as_ref()
        .map(|t| t.max_restarts)
        .unwrap_or(0);

    'restart: loop {
        let mut arena: Vec<VSet> = Vec::new();
        let mut lookup: HashMap<VSet, usize> = HashMap::new();
        let mut sets_in_order: Vec<usize> = Vec::new();
        let mut succs: Vec<Vec<usize>> = Vec::new();
        let mut latents: Vec<VSet> = Vec::new();
        let mut meta_of_set: Vec<Option<usize>> = Vec::new();
        let mut worklist: VecDeque<usize> = VecDeque::new();
        let mut in_worklist: Vec<bool> = Vec::new();

        macro_rules! intern {
            ($set:expr, $latent:expr) => {{
                let set: VSet = $set;
                let latent: VSet = $latent;
                let sid = *lookup.entry(set.clone()).or_insert_with(|| {
                    arena.push(set);
                    arena.len() - 1
                });
                if sid >= meta_of_set.len() {
                    meta_of_set.resize(sid + 1, None);
                }
                if let Some(m) = meta_of_set[sid] {
                    if !v_is_subset(&latent, &latents[m]) {
                        latents[m] = v_union(&latents[m], &latent);
                        if !in_worklist[m] {
                            in_worklist[m] = true;
                            worklist.push_back(m);
                        }
                    }
                    m
                } else {
                    let m = sets_in_order.len();
                    meta_of_set[sid] = Some(m);
                    sets_in_order.push(sid);
                    succs.push(Vec::new());
                    latents.push(latent);
                    in_worklist.push(true);
                    worklist.push_back(m);
                    m
                }
            }};
        }

        let start_seed = vec![g.start.0];
        let start_set = if opts.respect_barriers {
            ref_barrier_sync(&g, start_seed)
        } else {
            start_seed
        };
        let start = intern!(start_set, vec![]);

        while let Some(m) = worklist.pop_front() {
            in_worklist[m] = false;
            let members = arena[sets_in_order[m]].clone();
            let latent = latents[m].clone();

            if let Some(ts) = &opts.time_split {
                if ref_time_split_meta(&mut g, &members, ts, &opts.costs, &mut stats.splits) {
                    stats.restarts += 1;
                    if stats.restarts > max_restarts {
                        return Err(RefError::TimeSplitDiverged);
                    }
                    continue 'restart;
                }
            }

            let targets = ref_successor_sets(&g, &members, &latent, opts, &mut stats)?;
            let mut out: Vec<usize> = Vec::new();
            for (t, l) in targets {
                let id = intern!(t, l);
                if !out.contains(&id) {
                    out.push(id);
                }
                if sets_in_order.len() > opts.max_meta_states {
                    return Err(RefError::TooManyMetaStates);
                }
            }
            succs[m] = out;
        }

        let mut automaton = RefAutomaton {
            sets: sets_in_order
                .iter()
                .map(|&sid| arena[sid].clone())
                .collect(),
            start,
            succs,
        };
        if opts.subsumption {
            stats.subsumed += ref_subsume(&g, &mut automaton);
        }
        return Ok((automaton, stats));
    }
}

// ---------------------------------------------------------------------------
// The comparison.
// ---------------------------------------------------------------------------

fn assert_matches_reference(g: &MimdGraph, opts: &ConvertOptions) -> Result<(), TestCaseError> {
    let reference = ref_convert(g, opts);
    let hybrid = convert_with_stats(g, opts);
    match (reference, hybrid) {
        (Ok((ra, rs)), Ok((ha, hs))) => {
            let hybrid_sets: Vec<VSet> = ha.sets.iter().map(|s| s.to_vec()).collect();
            prop_assert_eq!(&hybrid_sets, &ra.sets, "member sets differ");
            let hybrid_succs: Vec<Vec<usize>> = ha
                .succs
                .iter()
                .map(|v| v.iter().map(|m| m.idx()).collect())
                .collect();
            prop_assert_eq!(&hybrid_succs, &ra.succs, "successor lists differ");
            prop_assert_eq!(ha.start.idx(), ra.start, "start differs");
            prop_assert_eq!(hs.restarts, rs.restarts, "restarts differ");
            prop_assert_eq!(hs.splits, rs.splits, "splits differ");
            prop_assert_eq!(hs.subsumed, rs.subsumed, "subsumed differ");
            prop_assert_eq!(
                hs.successor_sets_enumerated,
                rs.enumerated,
                "enumeration stats differ"
            );
        }
        (Err(re), Ok(_)) => {
            return Err(TestCaseError::fail(format!("only reference errs: {re:?}")))
        }
        (Ok(_), Err(he)) => return Err(TestCaseError::fail(format!("only hybrid errs: {he}"))),
        (Err(re), Err(he)) => {
            let same = matches!(
                (&re, &he),
                (
                    RefError::TooManyMetaStates,
                    ConvertError::TooManyMetaStates { .. }
                ) | (
                    RefError::TooManySuccessorSets,
                    ConvertError::TooManySuccessorSets { .. }
                ) | (RefError::MultiTooWide, ConvertError::MultiTooWide { .. })
                    | (
                        RefError::TimeSplitDiverged,
                        ConvertError::TimeSplitDiverged { .. }
                    )
            );
            prop_assert!(same, "error kinds differ: {:?} vs {}", re, he);
        }
    }
    Ok(())
}

/// Random small MIMD graphs with barriers and uneven state costs (so time
/// splitting actually fires): the same shape as the core proptests, plus a
/// per-state op count.
fn arb_graph() -> impl Strategy<Value = MimdGraph> {
    (
        2usize..8,
        prop::collection::vec(
            (0u8..4, 0u32..64, 0u32..64, any::<bool>(), 1usize..24),
            2..8,
        ),
    )
        .prop_map(|(n, seeds)| {
            let n = n.min(seeds.len());
            let mut g = MimdGraph::new();
            for (i, &(_, _, _, barrier, cost)) in seeds.iter().take(n).enumerate() {
                let mut st = MimdState::new(vec![Op::Push(i as i64); cost], Terminator::Halt);
                st.barrier = barrier && i != 0 && i % 3 == 0;
                g.add(st);
            }
            for (i, &(kind, a, b, _, _)) in seeds.iter().take(n).enumerate() {
                let t = StateId(a % n as u32);
                let f = StateId(b % n as u32);
                let id = StateId(i as u32);
                g.state_mut(id).term = match kind % 4 {
                    0 => Terminator::Halt,
                    1 => Terminator::Jump(t),
                    2 => Terminator::Branch { t, f },
                    _ => Terminator::Multi(vec![t, f]),
                };
            }
            g.start = StateId(0);
            g
        })
}

fn bounded(mut opts: ConvertOptions) -> ConvertOptions {
    opts.max_meta_states = 4096;
    opts
}

proptest! {
    /// Base mode (§2.3), barriers respected.
    #[test]
    fn base_mode_matches_reference(g in arb_graph()) {
        assert_matches_reference(&g, &bounded(ConvertOptions::base()))?;
    }

    /// Base mode with barriers ignored.
    #[test]
    fn base_mode_no_barriers_matches_reference(g in arb_graph()) {
        let mut opts = bounded(ConvertOptions::base());
        opts.respect_barriers = false;
        assert_matches_reference(&g, &opts)?;
    }

    /// Compressed construction alone (§2.5, subsumption off).
    #[test]
    fn compressed_mode_matches_reference(g in arb_graph()) {
        let mut opts = bounded(ConvertOptions::compressed());
        opts.subsumption = false;
        assert_matches_reference(&g, &opts)?;
    }

    /// Compressed + subsumption fold — exercises the inverted-index
    /// superset search against the all-pairs reference.
    #[test]
    fn compressed_with_subsumption_matches_reference(g in arb_graph()) {
        assert_matches_reference(&g, &bounded(ConvertOptions::compressed()))?;
    }

    /// Time splitting (§2.4) in base mode: restarts, split counts, and the
    /// split-extended state space must all agree.
    #[test]
    fn time_split_base_matches_reference(g in arb_graph()) {
        let mut opts = bounded(ConvertOptions::base());
        opts.time_split = Some(TimeSplitOptions::default());
        assert_matches_reference(&g, &opts)?;
    }

    /// Time splitting + compression + subsumption all together.
    #[test]
    fn time_split_compressed_matches_reference(g in arb_graph()) {
        let mut opts = bounded(ConvertOptions::compressed());
        opts.time_split = Some(TimeSplitOptions::default());
        assert_matches_reference(&g, &opts)?;
    }
}
