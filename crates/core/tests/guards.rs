//! Guard-boundary and frontier-equivalence tests.
//!
//! 1. The explosion guards (`max_successor_sets`, `max_multi_arity`) must
//!    fire at *exactly* the configured limit: a limit equal to the true
//!    workload passes, a limit one below it errors. A `Multi` terminator
//!    of arity k expanded from the singleton start meta state yields
//!    exactly 2^k − 1 candidate successor sets in base mode, which makes
//!    the boundary computable in closed form.
//!
//! 2. An external driver built on [`expand_frontier`] (the hook the
//!    parallel engine uses) must reproduce the sequential
//!    [`convert_with_stats`] exactly — same meta-state sets in the same
//!    discovery order, same successor lists, same start id, and the same
//!    `successor_sets_enumerated` count.

use msc_core::{
    apply_barrier, convert, convert_with_stats, expand_frontier, ConvertError, ConvertMode,
    ConvertOptions, StateSet,
};
use msc_ir::{MimdGraph, MimdState, StateId, Terminator};
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};

/// Start state with a k-ary `Multi` over k distinct halt states.
fn fan_graph(k: u32) -> MimdGraph {
    let mut g = MimdGraph::new();
    let start = g.add(MimdState::new(vec![], Terminator::Halt));
    let targets: Vec<StateId> = (0..k)
        .map(|_| g.add(MimdState::new(vec![], Terminator::Halt)))
        .collect();
    g.state_mut(start).term = Terminator::Multi(targets);
    g.start = start;
    g
}

proptest! {
    #[test]
    fn successor_set_guard_fires_exactly_at_limit(k in 2u32..=6) {
        let g = fan_graph(k);
        let exact = (1usize << k) - 1; // all non-empty subsets of k targets

        let mut opts = ConvertOptions::base();
        opts.max_successor_sets = exact;
        prop_assert!(convert(&g, &opts).is_ok());

        opts.max_successor_sets = exact - 1;
        let err = convert(&g, &opts).unwrap_err();
        prop_assert_eq!(
            err,
            ConvertError::TooManySuccessorSets {
                meta: StateSet::singleton(g.start),
                limit: exact - 1,
            }
        );
    }

    #[test]
    fn multi_arity_guard_fires_exactly_at_limit(k in 2u32..=8) {
        let g = fan_graph(k);

        let mut opts = ConvertOptions::base();
        opts.max_multi_arity = k as usize;
        prop_assert!(convert(&g, &opts).is_ok());

        opts.max_multi_arity = k as usize - 1;
        let err = convert(&g, &opts).unwrap_err();
        prop_assert_eq!(
            err,
            ConvertError::MultiTooWide { state: g.start, arity: k as usize }
        );
    }
}

// ---------------------------------------------------------------------------
// Frontier-driver equivalence.
// ---------------------------------------------------------------------------

/// Re-run the sequential worklist algorithm, but obtain every meta state's
/// expansion through the public [`expand_frontier`] hook instead of the
/// internal enumeration — exactly what `msc-engine`'s workers do.
#[allow(clippy::type_complexity)]
fn frontier_convert(
    g: &MimdGraph,
    opts: &ConvertOptions,
) -> Result<(Vec<StateSet>, Vec<Vec<u32>>, u32, u64), ConvertError> {
    let mut sets: Vec<StateSet> = Vec::new();
    let mut latents: Vec<StateSet> = Vec::new();
    let mut succs: Vec<Vec<u32>> = Vec::new();
    let mut by_set: HashMap<StateSet, u32> = HashMap::new();
    let mut worklist: VecDeque<u32> = VecDeque::new();
    let mut in_worklist: Vec<bool> = Vec::new();
    let mut enumerated = 0u64;

    #[allow(clippy::too_many_arguments)]
    fn intern(
        set: StateSet,
        latent: StateSet,
        sets: &mut Vec<StateSet>,
        latents: &mut Vec<StateSet>,
        succs: &mut Vec<Vec<u32>>,
        by_set: &mut HashMap<StateSet, u32>,
        worklist: &mut VecDeque<u32>,
        in_worklist: &mut Vec<bool>,
    ) -> u32 {
        if let Some(&m) = by_set.get(&set) {
            if !latent.is_subset(&latents[m as usize]) {
                latents[m as usize] = latents[m as usize].union(&latent);
                if !in_worklist[m as usize] {
                    in_worklist[m as usize] = true;
                    worklist.push_back(m);
                }
            }
            return m;
        }
        let m = sets.len() as u32;
        by_set.insert(set.clone(), m);
        sets.push(set);
        latents.push(latent);
        succs.push(Vec::new());
        in_worklist.push(true);
        worklist.push_back(m);
        m
    }

    let start_set = apply_barrier(g, StateSet::singleton(g.start), opts);
    let start = intern(
        start_set,
        StateSet::empty(),
        &mut sets,
        &mut latents,
        &mut succs,
        &mut by_set,
        &mut worklist,
        &mut in_worklist,
    );

    while let Some(m) = worklist.pop_front() {
        in_worklist[m as usize] = false;
        let members = sets[m as usize].clone();
        let latent = latents[m as usize].clone();
        let (targets, n) = expand_frontier(g, &members, &latent, opts)?;
        enumerated += n;
        let mut out: Vec<u32> = Vec::new();
        for (t, l) in targets {
            let id = intern(
                t,
                l,
                &mut sets,
                &mut latents,
                &mut succs,
                &mut by_set,
                &mut worklist,
                &mut in_worklist,
            );
            if !out.contains(&id) {
                out.push(id);
            }
        }
        succs[m as usize] = out;
    }
    Ok((sets, succs, start, enumerated))
}

/// Small randomized MIMD graph (barriers included) with every terminator
/// kind the converter handles.
fn arb_graph() -> impl Strategy<Value = MimdGraph> {
    (
        2u32..8,
        proptest::collection::vec((0u8..5, 0u32..8, 0u32..8), 8),
        any::<bool>(),
    )
        .prop_map(|(n, kinds, barriers)| {
            let mut g = MimdGraph::new();
            for i in 0..n {
                let id = g.add(MimdState::new(vec![], Terminator::Halt));
                if barriers && i != 0 && i % 3 == 0 {
                    g.state_mut(id).barrier = true;
                }
            }
            for i in 0..n {
                let (kind, a, b) = kinds[i as usize];
                let (a, b) = (StateId(a % n), StateId(b % n));
                g.state_mut(StateId(i)).term = match kind {
                    0 => Terminator::Halt,
                    1 => Terminator::Jump(a),
                    2 => Terminator::Branch { t: a, f: b },
                    3 => Terminator::Multi(vec![a, b, StateId((a.0 + b.0) % n)]),
                    _ => Terminator::Spawn { child: a, next: b },
                };
            }
            g.start = StateId(0);
            g
        })
}

fn assert_frontier_matches(g: &MimdGraph, opts: &ConvertOptions) -> Result<(), TestCaseError> {
    let seq = convert_with_stats(g, opts);
    let drv = frontier_convert(g, opts);
    match (seq, drv) {
        (Ok((auto, stats)), Ok((sets, succs, start, enumerated))) => {
            prop_assert_eq!(&auto.sets, &sets);
            let seq_succs: Vec<Vec<u32>> = auto
                .succs
                .iter()
                .map(|row| row.iter().map(|m| m.0).collect())
                .collect();
            prop_assert_eq!(seq_succs, succs);
            prop_assert_eq!(auto.start.0, start);
            prop_assert_eq!(stats.successor_sets_enumerated, enumerated);
        }
        (Err(a), Err(b)) => prop_assert_eq!(a, b),
        (a, b) => {
            return Err(TestCaseError::fail(format!(
                "sequential {a:?} vs frontier driver {b:?}"
            )))
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn frontier_driver_matches_sequential_base(g in arb_graph()) {
        let mut opts = ConvertOptions::base();
        opts.max_meta_states = 4096;
        assert_frontier_matches(&g, &opts)?;
    }

    #[test]
    fn frontier_driver_matches_sequential_compressed(g in arb_graph()) {
        let mut opts = ConvertOptions::compressed();
        opts.subsumption = false; // runs after discovery; driver stops there
        opts.max_meta_states = 4096;
        assert_frontier_matches(&g, &opts)?;
    }

    #[test]
    fn mode_matches(_ in proptest::strategy::Just(())) {
        // Sanity pin: base() and compressed() guard defaults are the
        // documented powers of two.
        let b = ConvertOptions::base();
        prop_assert_eq!(b.max_meta_states, 1 << 20);
        prop_assert_eq!(b.max_successor_sets, 1 << 16);
        prop_assert!(matches!(ConvertOptions::compressed().mode, ConvertMode::Compressed));
    }
}
