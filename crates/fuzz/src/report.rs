//! Reproducers and run summaries: the fuzzer's machine-readable output.
//!
//! A [`Reproducer`] is self-contained: the (seed, case) pair regenerates
//! the exact failing program from the grammar, and the minimized source
//! plus expected/actual values let a human see the divergence without
//! running anything. Corpus files are one JSON object each, written
//! atomically enough for CI artifact upload (write then rename is not
//! needed — each file is written once and never appended).

use msc_obs::json::Json;
use std::io;
use std::path::{Path, PathBuf};

/// A self-contained record of one minimized mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Reproducer {
    /// Run seed the case came from.
    pub seed: u64,
    /// Case index within the run (with `seed`, regenerates the program).
    pub case_index: u64,
    /// Label of the diverging oracle (`engine:2`, `bit-identity`, ...).
    pub oracle: String,
    /// Human-readable description of the divergence.
    pub detail: String,
    /// Per-PE values the reference produced (on the minimized program).
    pub expected: Vec<i64>,
    /// Per-PE values the oracle produced (on the minimized program).
    pub actual: Vec<i64>,
    /// The original generated source.
    pub source: String,
    /// The minimized source that still diverges.
    pub minimized_source: String,
    /// Line count of the minimized source.
    pub minimized_lines: u64,
    /// Predicate evaluations the minimizer spent.
    pub minimize_evals: u64,
}

fn i64_arr(vs: &[i64]) -> Json {
    Json::Arr(vs.iter().map(|&v| Json::from(v)).collect())
}

fn parse_i64_arr(v: Option<&Json>) -> Vec<i64> {
    v.and_then(Json::as_arr)
        .map(|a| a.iter().filter_map(Json::as_i64).collect())
        .unwrap_or_default()
}

impl Reproducer {
    /// Serialize to a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", Json::from(self.seed)),
            ("case", Json::from(self.case_index)),
            ("oracle", Json::from(self.oracle.as_str())),
            ("detail", Json::from(self.detail.as_str())),
            ("expected", i64_arr(&self.expected)),
            ("actual", i64_arr(&self.actual)),
            ("source", Json::from(self.source.as_str())),
            (
                "minimized_source",
                Json::from(self.minimized_source.as_str()),
            ),
            ("minimized_lines", Json::from(self.minimized_lines)),
            ("minimize_evals", Json::from(self.minimize_evals)),
        ])
    }

    /// Parse a reproducer back from JSON text (corpus replay).
    pub fn parse(text: &str) -> Result<Reproducer, String> {
        let v = msc_obs::json::parse(text).map_err(|e| format!("bad reproducer JSON: {e}"))?;
        let str_field = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("reproducer lacks `{k}`"))
        };
        let num_field = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("reproducer lacks `{k}`"))
        };
        Ok(Reproducer {
            seed: num_field("seed")?,
            case_index: num_field("case")?,
            oracle: str_field("oracle")?,
            detail: str_field("detail")?,
            expected: parse_i64_arr(v.get("expected")),
            actual: parse_i64_arr(v.get("actual")),
            source: str_field("source")?,
            minimized_source: str_field("minimized_source")?,
            minimized_lines: num_field("minimized_lines")?,
            minimize_evals: num_field("minimize_evals")?,
        })
    }

    /// Load a reproducer from a corpus file.
    pub fn read(path: &Path) -> Result<Reproducer, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        Reproducer::parse(&text)
    }

    /// Corpus file name: `case-00042-engine-2.json`.
    pub fn file_name(&self) -> String {
        let safe: String = self
            .oracle
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '-' })
            .collect();
        format!("case-{:05}-{safe}.json", self.case_index)
    }

    /// Write into `dir` (created if missing); returns the file path.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json().render())?;
        Ok(path)
    }
}

/// Aggregate results of a fuzzing run, rendered as the `mscc fuzz` JSON
/// summary.
#[derive(Debug, Clone, Default)]
pub struct FuzzSummary {
    /// Run seed.
    pub seed: u64,
    /// Cases executed.
    pub cases: u64,
    /// Oracle labels in play.
    pub oracles: Vec<String>,
    /// Oracle executions that produced a result.
    pub oracle_runs: u64,
    /// Oracle executions skipped (meta-state bound, no daemon, ...).
    pub skips: u64,
    /// Total mismatches found.
    pub mismatches: u64,
    /// Predicate evaluations spent minimizing.
    pub minimize_evals: u64,
    /// Corpus files written, one per minimized mismatch.
    pub reproducers: Vec<String>,
}

impl FuzzSummary {
    /// True when the run found no divergence.
    pub fn ok(&self) -> bool {
        self.mismatches == 0
    }

    /// Serialize to the `mscc fuzz` summary object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", Json::from(self.seed)),
            ("cases", Json::from(self.cases)),
            (
                "oracles",
                Json::Arr(
                    self.oracles
                        .iter()
                        .map(|o| Json::from(o.as_str()))
                        .collect(),
                ),
            ),
            ("oracle_runs", Json::from(self.oracle_runs)),
            ("skips", Json::from(self.skips)),
            ("mismatches", Json::from(self.mismatches)),
            ("minimize_evals", Json::from(self.minimize_evals)),
            (
                "reproducers",
                Json::Arr(
                    self.reproducers
                        .iter()
                        .map(|p| Json::from(p.as_str()))
                        .collect(),
                ),
            ),
            ("ok", Json::from(self.ok())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Reproducer {
        Reproducer {
            seed: 1,
            case_index: 42,
            oracle: "engine:2".into(),
            detail: "per-PE results diverged".into(),
            expected: vec![4321, 4321, 4322],
            actual: vec![4321, 4321, 4323],
            source: "main() { return(0); }\n".into(),
            minimized_source: "main() { return(0); }\n".into(),
            minimized_lines: 1,
            minimize_evals: 17,
        }
    }

    #[test]
    fn reproducer_round_trips_through_json() {
        let r = sample();
        let back = Reproducer::parse(&r.to_json().render()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn file_name_is_filesystem_safe() {
        assert_eq!(sample().file_name(), "case-00042-engine-2.json");
    }

    #[test]
    fn write_and_read_a_corpus_entry() {
        let dir = std::env::temp_dir().join(format!("msc-fuzz-report-test-{}", std::process::id()));
        let r = sample();
        let path = r.write(&dir).unwrap();
        let back = Reproducer::read(&path).unwrap();
        assert_eq!(back, r);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn summary_json_reports_ok_iff_no_mismatches() {
        let mut s = FuzzSummary {
            seed: 1,
            cases: 10,
            ..Default::default()
        };
        assert!(s.to_json().get("ok").unwrap().as_bool().unwrap());
        s.mismatches = 1;
        assert!(!s.to_json().get("ok").unwrap().as_bool().unwrap());
        let parsed = msc_obs::json::parse(&s.to_json().render()).unwrap();
        assert_eq!(parsed.get("cases").unwrap().as_u64(), Some(10));
    }
}
