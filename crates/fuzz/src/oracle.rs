//! The oracle matrix: every execution configuration the repo offers, run
//! over one generated program and diffed against the true-MIMD reference.
//!
//! Two tiers of agreement are checked:
//!
//! * **semantic** — per-PE results must equal the reference for every
//!   oracle (the paper's §1.2 claim that the meta-state automaton
//!   duplicates MIMD execution);
//! * **bit-identity** — the engine at any thread count and the disk-cache
//!   round-trip promise *identical artifacts* (canonical BFS renumbering,
//!   content-addressed cache), so their cycle counts, automaton text and
//!   serialized programs are additionally required to match each other
//!   exactly.
//!
//! A skipped oracle (e.g. the subset construction hit the meta-state
//! bound) is reported but is not a failure; an oracle *error* that the
//! reference did not produce is a finding, like a result mismatch.

use crate::grammar::Program;
use metastate::{Pipeline, TimeSplitOptions};
use msc_engine::{Engine, EngineError, EngineOptions, Job, Provenance};
use msc_ir::CostModel;
use msc_simd::{MachineConfig, SimdMachine};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// One execution configuration under test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Oracle {
    /// §1.1 interpreter baseline.
    Interp,
    /// Base-mode `Pipeline` (§2.3).
    Base,
    /// Compressed-mode `Pipeline` (§2.5).
    Compressed,
    /// Base mode with §2.4 time splitting.
    TimeSplit,
    /// Base mode with common subexpression induction disabled.
    NoCsi,
    /// The parallel engine at this thread count (canonical artifacts).
    Engine(usize),
    /// Cold compile, then reload through the on-disk cache: the two
    /// artifacts must be byte-identical and run identically.
    Cache,
    /// The live daemon over TCP (`POST /run` via `msc_serve::Client`).
    Serve,
    /// The regex front-end: meta-automaton matcher (sequential and
    /// sharded) diffed against the naive backtracking reference, on a
    /// case derived deterministically from the rendered source.
    Regex,
    /// An intentionally miscompiling oracle used to prove the fuzzer
    /// catches and minimizes real divergence.
    SelfTest,
}

impl Oracle {
    /// Stable label used in reports, reproducers and `--oracles` lists.
    pub fn label(&self) -> String {
        match self {
            Oracle::Interp => "interp".into(),
            Oracle::Base => "base".into(),
            Oracle::Compressed => "compressed".into(),
            Oracle::TimeSplit => "timesplit".into(),
            Oracle::NoCsi => "nocsi".into(),
            Oracle::Engine(n) => format!("engine:{n}"),
            Oracle::Cache => "cache".into(),
            Oracle::Serve => "serve".into(),
            Oracle::Regex => "regex".into(),
            Oracle::SelfTest => "selftest".into(),
        }
    }

    /// Parse one `--oracles` token.
    pub fn parse(tok: &str) -> Result<Oracle, String> {
        Ok(match tok {
            "interp" => Oracle::Interp,
            "base" => Oracle::Base,
            "compressed" => Oracle::Compressed,
            "timesplit" => Oracle::TimeSplit,
            "nocsi" => Oracle::NoCsi,
            "cache" => Oracle::Cache,
            "serve" => Oracle::Serve,
            "regex" => Oracle::Regex,
            "selftest" => Oracle::SelfTest,
            other => {
                if let Some(n) = other.strip_prefix("engine:") {
                    let n: usize = n
                        .parse()
                        .map_err(|_| format!("bad engine thread count in `{other}`"))?;
                    Oracle::Engine(n.max(1))
                } else {
                    return Err(format!(
                        "unknown oracle `{other}` (try interp, base, compressed, timesplit, \
                         nocsi, engine:N, cache, serve, regex, selftest)"
                    ));
                }
            }
        })
    }

    /// Parse a comma-separated `--oracles` list.
    pub fn parse_list(list: &str) -> Result<Vec<Oracle>, String> {
        list.split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(Oracle::parse)
            .collect()
    }

    /// The full in-process matrix (everything but the TCP daemon and the
    /// intentionally-buggy selftest).
    pub fn default_set() -> Vec<Oracle> {
        vec![
            Oracle::Interp,
            Oracle::Base,
            Oracle::Compressed,
            Oracle::TimeSplit,
            Oracle::NoCsi,
            Oracle::Engine(1),
            Oracle::Engine(2),
            Oracle::Engine(8),
            Oracle::Cache,
            Oracle::Regex,
        ]
    }

    /// Members of the bit-identity group (engine + cache round-trip).
    pub fn bit_identical(&self) -> bool {
        matches!(self, Oracle::Engine(_) | Oracle::Cache)
    }
}

/// Shared oracle-run configuration.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Live PEs running `main`.
    pub n_pe: usize,
    /// Subset-construction bound; beyond it an oracle is *skipped*.
    pub max_meta_states: usize,
    /// Address of a running msc-serve daemon (for [`Oracle::Serve`]).
    pub serve_addr: Option<String>,
    /// Scratch directory root for cache round-trips (default: temp dir).
    pub scratch_dir: Option<PathBuf>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            n_pe: 5,
            max_meta_states: 3000,
            serve_addr: None,
            scratch_dir: None,
        }
    }
}

impl OracleConfig {
    /// `(total PEs, live PEs)` for `prog`: spawn programs get one idle
    /// recruit per (site × live PE) so spawn can never overflow.
    pub fn machine_shape(&self, prog: &Program) -> (usize, usize) {
        let live = self.n_pe.max(1);
        if prog.spawn_count() > 0 {
            (live * (1 + prog.spawn_count()), live)
        } else {
            (live, live)
        }
    }
}

/// What one execution produced, normalized for comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// Per-PE value of `main`'s return slot for the live PEs.
    pub main_values: Vec<i64>,
    /// Sorted nonzero worker results (`wr`) across every PE — the
    /// machine-independent view of a spawn tree's output (recruit
    /// *assignment* is scheduler-dependent, recruit *work* is not).
    pub worker_values: Vec<i64>,
    /// Execution cycles, where the mode reports them.
    pub cycles: Option<u64>,
    /// Canonical automaton text (engine-produced artifacts only).
    pub automaton: Option<String>,
    /// Serialized SIMD program (engine-produced artifacts only).
    pub asm: Option<String>,
    /// Whether `worker_values` reflects this execution. The daemon's
    /// `/run` endpoint only returns per-PE return values, so the serve
    /// oracle cannot observe spawn-worker memory; it compares main
    /// values only instead of faking an empty worker set.
    pub workers_observable: bool,
}

/// Why an oracle could not produce an [`Execution`].
#[derive(Debug, Clone)]
pub enum OracleError {
    /// Legitimate bail-out (meta-state bound, daemon not configured).
    Skip(String),
    /// Unexpected failure — a finding, reported like a mismatch.
    Fail(String),
}

/// One divergence between an oracle and its expectation.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// The diverging oracle's label (or `bit-identity` for group splits).
    pub oracle: String,
    /// Expected per-PE values (the reference's, or the group leader's).
    pub expected: Vec<i64>,
    /// What the oracle produced.
    pub actual: Vec<i64>,
    /// Human-readable description of the divergence.
    pub detail: String,
}

/// Everything `run_case` learned about one program.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The rendered source the oracles ran.
    pub source: String,
    /// The golden execution (absent if the reference itself failed).
    pub reference: Option<Execution>,
    /// All divergences found.
    pub mismatches: Vec<Mismatch>,
    /// `(oracle, reason)` for every skipped oracle.
    pub skips: Vec<(String, String)>,
    /// Oracles that produced an execution.
    pub oracles_run: usize,
}

impl CaseResult {
    /// True when no oracle diverged.
    pub fn clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

fn base_opts(cfg: &OracleConfig) -> msc_core::ConvertOptions {
    let mut o = msc_core::ConvertOptions::base();
    o.max_meta_states = cfg.max_meta_states;
    o
}

fn too_many(e: &metastate::PipelineError) -> bool {
    matches!(
        e,
        metastate::PipelineError::Convert(msc_core::ConvertError::TooManyMetaStates { .. })
    )
}

/// Run the true-MIMD reference — the golden semantics.
pub fn run_reference(prog: &Program, cfg: &OracleConfig) -> Result<Execution, String> {
    let src = prog.render();
    let (total, live) = cfg.machine_shape(prog);
    let p = msc_lang::compile(&src).map_err(|e| format!("reference compile: {e}"))?;
    let mcfg = msc_mimd::MimdConfig {
        n_proc: total,
        active_at_start: live,
        max_cycles: prog.cycle_bound().max(1_000_000),
        costs: CostModel::default(),
    };
    let mut m = msc_mimd::MimdReference::new(p.layout.poly_words, p.layout.mono_words, &mcfg);
    let metrics = m
        .run(&p.graph, &mcfg)
        .map_err(|e| format!("reference run: {e}"))?;
    let ret = p.layout.main_ret.ok_or("main has no return slot")?;
    let worker_values = match p.layout.var("wr") {
        Some(v) => {
            let mut ws: Vec<i64> = (0..total)
                .map(|pe| m.poly_at(pe, v.addr))
                .filter(|&w| w != 0)
                .collect();
            ws.sort_unstable();
            ws
        }
        None => Vec::new(),
    };
    Ok(Execution {
        main_values: (0..live).map(|pe| m.poly_at(pe, ret)).collect(),
        worker_values,
        cycles: Some(metrics.cycles),
        automaton: None,
        asm: None,
        workers_observable: true,
    })
}

/// Extract the normalized execution out of a finished SIMD machine.
fn execution_from_machine(
    machine: &SimdMachine,
    layout: &msc_lang::Layout,
    total: usize,
    live: usize,
    cycles: u64,
) -> Result<Execution, OracleError> {
    let ret = layout
        .main_ret
        .ok_or_else(|| OracleError::Fail("main has no return slot".into()))?;
    let worker_values = match layout.var("wr") {
        Some(v) => {
            let mut ws: Vec<i64> = (0..total)
                .map(|pe| machine.poly_at(pe, v.addr))
                .filter(|&w| w != 0)
                .collect();
            ws.sort_unstable();
            ws
        }
        None => Vec::new(),
    };
    Ok(Execution {
        main_values: (0..live).map(|pe| machine.poly_at(pe, ret)).collect(),
        worker_values,
        cycles: Some(cycles),
        automaton: None,
        asm: None,
        workers_observable: true,
    })
}

fn run_pipeline_oracle(
    oracle: &Oracle,
    src: &str,
    total: usize,
    live: usize,
    cfg: &OracleConfig,
) -> Result<Execution, OracleError> {
    let mut copts = match oracle {
        Oracle::Compressed => {
            let mut o = msc_core::ConvertOptions::compressed();
            o.max_meta_states = cfg.max_meta_states;
            o
        }
        _ => base_opts(cfg),
    };
    if matches!(oracle, Oracle::TimeSplit) {
        copts.time_split = Some(TimeSplitOptions::default());
    }
    let mut p = Pipeline::new(src).convert_options(copts);
    if matches!(oracle, Oracle::NoCsi) {
        p = p.gen_options(metastate::codegen::GenOptions {
            csi: false,
            ..Default::default()
        });
    }
    let built = match p.build() {
        Ok(b) => b,
        Err(e) if too_many(&e) => return Err(OracleError::Skip(e.to_string())),
        Err(e) => return Err(OracleError::Fail(format!("build: {e}"))),
    };
    let out = built
        .run_with(MachineConfig::with_pool(total, live))
        .map_err(|e| OracleError::Fail(format!("run: {e}")))?;
    let mut exec = execution_from_machine(
        &out.machine,
        &built.compiled.layout,
        total,
        live,
        out.metrics.cycles,
    )?;
    if matches!(oracle, Oracle::SelfTest) {
        // The injected conversion bug: programs whose automaton branched
        // (more than one meta state) and that contain an `if` have the
        // last live PE's result nudged by one. Deterministic, so the
        // minimizer can shrink any trigger down to a bare branch.
        if built.automaton.len() > 1 && src.contains("if (") {
            if let Some(last) = exec.main_values.last_mut() {
                *last += 1;
            }
        }
    }
    Ok(exec)
}

fn run_interp(src: &str, total: usize, live: usize, bound: u64) -> Result<Execution, OracleError> {
    let p = msc_lang::compile(src).map_err(|e| OracleError::Fail(format!("compile: {e}")))?;
    let program =
        msc_mimd::InterpProgram::flatten(&p.graph, p.layout.poly_words, p.layout.mono_words);
    let mut m = msc_mimd::InterpMachine::new(&program, total, live);
    let metrics = m
        .run(&program, &CostModel::default(), bound.max(1_000_000) * 64)
        .map_err(|e| OracleError::Fail(format!("interp run: {e}")))?;
    let ret = p
        .layout
        .main_ret
        .ok_or_else(|| OracleError::Fail("main has no return slot".into()))?;
    let worker_values = match p.layout.var("wr") {
        Some(v) => {
            let mut ws: Vec<i64> = (0..total)
                .map(|pe| m.poly_at(pe, v.addr))
                .filter(|&w| w != 0)
                .collect();
            ws.sort_unstable();
            ws
        }
        None => Vec::new(),
    };
    Ok(Execution {
        main_values: (0..live).map(|pe| m.poly_at(pe, ret)).collect(),
        worker_values,
        cycles: Some(metrics.cycles),
        automaton: None,
        asm: None,
        workers_observable: true,
    })
}

/// The `wr` slot of an artifact's front-end layout. Only fresh compiles
/// carry the front-end program — disk-cache hits rebuild just the SIMD
/// side — so cache round-trips must take the address from their cold
/// compile instead.
fn wr_addr(artifact: &msc_engine::Artifact) -> Option<msc_ir::Addr> {
    artifact
        .compiled
        .as_ref()
        .and_then(|p| p.layout.var("wr"))
        .map(|v| v.addr)
}

fn run_engine_artifact(
    artifact: &msc_engine::Artifact,
    wr: Option<msc_ir::Addr>,
    total: usize,
    live: usize,
) -> Result<Execution, OracleError> {
    let cfg = MachineConfig::with_pool(total, live);
    let mut machine = SimdMachine::new(&artifact.simd, &cfg);
    let metrics = machine
        .run(&artifact.simd, &cfg)
        .map_err(|e| OracleError::Fail(format!("run: {e}")))?;
    let ret = artifact
        .ret_addr
        .ok_or_else(|| OracleError::Fail("main has no return slot".into()))?;
    let worker_values = match wr {
        Some(addr) => {
            let mut ws: Vec<i64> = (0..total)
                .map(|pe| machine.poly_at(pe, addr))
                .filter(|&w| w != 0)
                .collect();
            ws.sort_unstable();
            ws
        }
        None => Vec::new(),
    };
    Ok(Execution {
        main_values: (0..live).map(|pe| machine.poly_at(pe, ret)).collect(),
        worker_values,
        cycles: Some(metrics.cycles),
        automaton: Some(artifact.automaton_text.clone()),
        asm: Some(msc_simd::serialize_asm(&artifact.simd)),
        workers_observable: true,
    })
}

fn engine_job(src: &str, cfg: &OracleConfig) -> Job {
    let mut job = Job::new("fuzz", src);
    job.convert = base_opts(cfg);
    job
}

fn run_engine(
    src: &str,
    threads: usize,
    total: usize,
    live: usize,
    cfg: &OracleConfig,
) -> Result<Execution, OracleError> {
    let engine = Engine::new(EngineOptions {
        threads,
        ..EngineOptions::default()
    });
    let out = match engine.compile(&engine_job(src, cfg)) {
        Ok(c) => c,
        Err(EngineError::Convert(msc_core::ConvertError::TooManyMetaStates { .. })) => {
            return Err(OracleError::Skip("meta-state bound".into()))
        }
        Err(e) => return Err(OracleError::Fail(format!("engine compile: {e}"))),
    };
    let wr = wr_addr(&out.artifact);
    run_engine_artifact(&out.artifact, wr, total, live)
}

static CACHE_CASE: AtomicU64 = AtomicU64::new(0);

fn run_cache_roundtrip(
    src: &str,
    total: usize,
    live: usize,
    cfg: &OracleConfig,
) -> Result<Execution, OracleError> {
    let root = cfg.scratch_dir.clone().unwrap_or_else(std::env::temp_dir);
    let dir = root.join(format!(
        "msc-fuzz-cache-{}-{}",
        std::process::id(),
        CACHE_CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let disk_opts = |threads| EngineOptions {
            threads,
            cache_dir: Some(dir.clone()),
            ..EngineOptions::default()
        };
        let job = engine_job(src, cfg);
        let cold_engine = Engine::new(disk_opts(1));
        let cold = match cold_engine.compile(&job) {
            Ok(c) => c,
            Err(EngineError::Convert(msc_core::ConvertError::TooManyMetaStates { .. })) => {
                return Err(OracleError::Skip("meta-state bound".into()))
            }
            Err(e) => return Err(OracleError::Fail(format!("cold compile: {e}"))),
        };
        if cold.provenance != Provenance::Fresh {
            return Err(OracleError::Fail(format!(
                "cold compile into an empty cache reported {}",
                cold.provenance
            )));
        }
        drop(cold_engine);
        // A brand-new engine over the same directory can only be served
        // by the disk layer.
        let warm_engine = Engine::new(disk_opts(1));
        let warm = warm_engine
            .compile(&job)
            .map_err(|e| OracleError::Fail(format!("cache reload: {e}")))?;
        if warm.provenance != Provenance::Disk {
            return Err(OracleError::Fail(format!(
                "cache round-trip reported {}, want cache hit (disk)",
                warm.provenance
            )));
        }
        let cold_asm = msc_simd::serialize_asm(&cold.artifact.simd);
        let warm_asm = msc_simd::serialize_asm(&warm.artifact.simd);
        if cold_asm != warm_asm {
            return Err(OracleError::Fail(
                "disk cache returned a different SIMD program than the cold compile".into(),
            ));
        }
        run_engine_artifact(&warm.artifact, wr_addr(&cold.artifact), total, live)
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn run_serve(
    src: &str,
    total: usize,
    live: usize,
    cfg: &OracleConfig,
) -> Result<Execution, OracleError> {
    use msc_obs::json::Json;
    let Some(addr) = &cfg.serve_addr else {
        return Err(OracleError::Skip("no daemon address configured".into()));
    };
    let mut client = msc_serve::client::Client::connect(addr)
        .map_err(|e| OracleError::Fail(format!("connect {addr}: {e}")))?;
    let body = Json::obj(vec![
        ("source", Json::from(src)),
        ("pes", Json::from(total as u64)),
        ("active", Json::from(live as u64)),
        ("max_meta_states", Json::from(cfg.max_meta_states as u64)),
    ]);
    let resp = client
        .post_json("/run", &body)
        .map_err(|e| OracleError::Fail(format!("POST /run: {e}")))?;
    if resp.status != 200 {
        // The daemon renders convert-bound errors as 4xx; treat the
        // meta-state bound as the same skip the in-process oracles take.
        if resp.body.contains("meta state") || resp.body.contains("meta-state") {
            return Err(OracleError::Skip("meta-state bound (daemon)".into()));
        }
        return Err(OracleError::Fail(format!(
            "daemon answered {}: {}",
            resp.status, resp.body
        )));
    }
    let v = resp
        .json()
        .ok_or_else(|| OracleError::Fail("daemon response is not JSON".into()))?;
    let results = v
        .get("results")
        .and_then(Json::as_arr)
        .ok_or_else(|| OracleError::Fail("daemon response lacks `results`".into()))?;
    let all: Vec<i64> = results.iter().filter_map(Json::as_i64).collect();
    if all.len() != total {
        return Err(OracleError::Fail(format!(
            "daemon returned {} results for {} PEs",
            all.len(),
            total
        )));
    }
    Ok(Execution {
        main_values: all[..live].to_vec(),
        worker_values: Vec::new(),
        cycles: None,
        automaton: None,
        asm: None,
        workers_observable: false,
    })
}

/// Run one oracle over rendered source.
pub fn run_oracle(
    oracle: &Oracle,
    prog: &Program,
    src: &str,
    cfg: &OracleConfig,
) -> Result<Execution, OracleError> {
    let (total, live) = cfg.machine_shape(prog);
    match oracle {
        Oracle::Interp => run_interp(src, total, live, prog.cycle_bound()),
        Oracle::Base
        | Oracle::Compressed
        | Oracle::TimeSplit
        | Oracle::NoCsi
        | Oracle::SelfTest => run_pipeline_oracle(oracle, src, total, live, cfg),
        Oracle::Engine(n) => run_engine(src, *n, total, live, cfg),
        Oracle::Cache => run_cache_roundtrip(src, total, live, cfg),
        Oracle::Serve => run_serve(src, total, live, cfg),
        Oracle::Regex => Err(OracleError::Fail(
            "the regex oracle does not produce a MIMD execution; run_case dispatches it".into(),
        )),
    }
}

/// Run the whole oracle matrix over `prog` and diff everything.
pub fn run_case(prog: &Program, oracles: &[Oracle], cfg: &OracleConfig) -> CaseResult {
    let src = prog.render();
    let reference = match run_reference(prog, cfg) {
        Ok(r) => r,
        Err(e) => {
            // The reference failing on a terminating-by-construction
            // program is a generator (or reference) bug — surface it as
            // a mismatch so it is minimized and preserved like any other.
            return CaseResult {
                source: src,
                reference: None,
                mismatches: vec![Mismatch {
                    oracle: "reference".into(),
                    expected: Vec::new(),
                    actual: Vec::new(),
                    detail: e,
                }],
                skips: Vec::new(),
                oracles_run: 0,
            };
        }
    };
    let mut mismatches = Vec::new();
    let mut skips = Vec::new();
    let mut oracles_run = 0usize;
    // Bit-identity group: (label, cycles, automaton, asm).
    let mut group: Vec<(String, Execution)> = Vec::new();
    for oracle in oracles {
        msc_obs::count("fuzz.oracle_runs", 1);
        // The regex oracle diffs the regex engines against each other on
        // a case derived from `src`; it has no MIMD execution to compare
        // with the reference, so it short-circuits the matrix here.
        if matches!(oracle, Oracle::Regex) {
            use crate::regex_oracle::{run_derived, RegexOutcome};
            match run_derived(&src) {
                RegexOutcome::Clean => oracles_run += 1,
                RegexOutcome::Skip(reason) => {
                    msc_obs::count("fuzz.skips", 1);
                    skips.push((oracle.label(), reason));
                }
                RegexOutcome::Mismatch(detail) => {
                    mismatches.push(Mismatch {
                        oracle: oracle.label(),
                        expected: Vec::new(),
                        actual: Vec::new(),
                        detail,
                    });
                }
            }
            continue;
        }
        match run_oracle(oracle, prog, &src, cfg) {
            Ok(exec) => {
                oracles_run += 1;
                if exec.main_values != reference.main_values
                    || (exec.workers_observable && exec.worker_values != reference.worker_values)
                {
                    mismatches.push(Mismatch {
                        oracle: oracle.label(),
                        expected: reference.main_values.clone(),
                        actual: exec.main_values.clone(),
                        detail: format!(
                            "per-PE results diverged from the MIMD reference \
                             (workers: expected {:?}, got {:?})",
                            reference.worker_values, exec.worker_values
                        ),
                    });
                }
                if oracle.bit_identical() {
                    group.push((oracle.label(), exec));
                }
            }
            Err(OracleError::Skip(reason)) => {
                msc_obs::count("fuzz.skips", 1);
                skips.push((oracle.label(), reason));
            }
            Err(OracleError::Fail(detail)) => {
                mismatches.push(Mismatch {
                    oracle: oracle.label(),
                    expected: reference.main_values.clone(),
                    actual: Vec::new(),
                    detail,
                });
            }
        }
    }
    // Cross-compare the bit-identity group against its first member.
    if let Some((lead_label, lead)) = group.first().cloned() {
        for (label, exec) in &group[1..] {
            let same = exec.cycles == lead.cycles
                && exec.automaton == lead.automaton
                && exec.asm == lead.asm;
            if !same {
                let what = if exec.automaton != lead.automaton {
                    "automaton text"
                } else if exec.asm != lead.asm {
                    "serialized program"
                } else {
                    "cycle count"
                };
                mismatches.push(Mismatch {
                    oracle: "bit-identity".into(),
                    expected: lead.main_values.clone(),
                    actual: exec.main_values.clone(),
                    detail: format!(
                        "{label} and {lead_label} promise identical artifacts but their {what} \
                         differs (cycles {:?} vs {:?})",
                        exec.cycles, lead.cycles
                    ),
                });
            }
        }
    }
    CaseResult {
        source: src,
        reference: Some(reference),
        mismatches,
        skips,
        oracles_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{generate, GrammarConfig};
    use crate::rng::Xoshiro256;

    #[test]
    fn oracle_labels_round_trip() {
        for o in Oracle::default_set() {
            assert_eq!(Oracle::parse(&o.label()).unwrap(), o);
        }
        assert_eq!(Oracle::parse("engine:4").unwrap(), Oracle::Engine(4));
        assert!(Oracle::parse("warp-drive").is_err());
        let list = Oracle::parse_list("base, interp,engine:2").unwrap();
        assert_eq!(list, vec![Oracle::Base, Oracle::Interp, Oracle::Engine(2)]);
    }

    #[test]
    fn clean_program_agrees_everywhere() {
        let mut rng = Xoshiro256::seeded(11);
        let prog = generate(&mut rng, &GrammarConfig::default());
        let result = run_case(&prog, &Oracle::default_set(), &OracleConfig::default());
        assert!(
            result.clean(),
            "unexpected mismatches: {:?}\non:\n{}",
            result.mismatches,
            result.source
        );
        assert!(result.oracles_run > 0);
    }

    #[test]
    fn regex_oracle_runs_inside_the_matrix() {
        let mut rng = Xoshiro256::seeded(3);
        let prog = generate(&mut rng, &GrammarConfig::default());
        let result = run_case(&prog, &[Oracle::Regex], &OracleConfig::default());
        assert!(
            result.clean(),
            "regex oracle diverged: {:?}\non:\n{}",
            result.mismatches,
            result.source
        );
        // Either the derived pattern compiled and all engines agreed, or
        // it blew the complexity cap and was recorded as a skip.
        assert_eq!(result.oracles_run + result.skips.len(), 1);
    }

    #[test]
    fn selftest_oracle_reports_a_mismatch_on_branchy_programs() {
        use crate::grammar::{Expr, Stmt};
        let prog = crate::grammar::Program {
            stmts: vec![Stmt::If(
                Expr::Bin("<", Box::new(Expr::PeId), Box::new(Expr::Lit(2))),
                vec![Stmt::Assign(0, Expr::Lit(7))],
                vec![Stmt::Assign(0, Expr::Lit(9))],
            )],
            n_vars: 4,
            spawn_sites: 0,
            worker_trips: 0,
        };
        let result = run_case(&prog, &[Oracle::SelfTest], &OracleConfig::default());
        assert_eq!(result.mismatches.len(), 1, "{:?}", result.mismatches);
        assert_eq!(result.mismatches[0].oracle, "selftest");
    }

    /// The daemon's `/run` cannot expose spawn-worker memory, so the
    /// serve oracle must compare main values only — a spawn program run
    /// through a real daemon over TCP is clean, not a spurious
    /// worker-set mismatch.
    #[test]
    fn serve_oracle_handles_spawn_programs_over_tcp() {
        let handle = msc_serve::Server::start(msc_serve::ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..msc_serve::ServeOptions::default()
        })
        .expect("start daemon");
        let cfg = OracleConfig {
            n_pe: 4,
            serve_addr: Some(handle.local_addr().to_string()),
            ..OracleConfig::default()
        };
        let gcfg = GrammarConfig::default().with_spawns(1);
        let prog = generate(&mut Xoshiro256::seeded(11), &gcfg);
        assert!(prog.spawn_count() > 0, "fixture needs a spawn");
        let result = run_case(&prog, &[Oracle::Serve], &cfg);
        handle.shutdown();
        assert!(
            result.clean(),
            "serve oracle diverged on a spawn program: {:?}\non:\n{}",
            result.mismatches,
            result.source
        );
        assert_eq!(result.oracles_run, 1);
    }

    #[test]
    fn spawn_programs_agree_across_the_matrix() {
        let cfg = GrammarConfig::default().with_spawns(2);
        let mut rng = Xoshiro256::seeded(31);
        let prog = generate(&mut rng, &cfg);
        let result = run_case(&prog, &Oracle::default_set(), &OracleConfig::default());
        assert!(
            result.clean(),
            "spawn mismatches: {:?}\non:\n{}",
            result.mismatches,
            result.source
        );
    }
}
