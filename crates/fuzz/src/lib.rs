//! msc-fuzz: deterministic differential fuzzing for the whole conversion
//! stack, with integrated crash minimization.
//!
//! The pieces, in pipeline order:
//!
//! * [`rng`] — dependency-free SplitMix64 + xoshiro256** so the same
//!   (seed, case) pair produces the same program on every platform, and
//!   case *k* is reproducible without replaying cases 0..k;
//! * [`grammar`] — a weighted generator of terminating-by-construction
//!   MIMDC programs (branch/loop density, `wait` placement, spawn trees);
//! * [`oracle`] — the oracle matrix: every execution configuration the
//!   repo offers, diffed against the true-MIMD reference, plus the
//!   bit-identity group (engine threads × cache round-trip);
//! * [`regex_oracle`] — the regex front-end's differential check (meta-
//!   automaton matcher, sequential and sharded, vs the naive backtracking
//!   reference) on a case derived from each generated program;
//! * [`mod@minimize`] — delta-debugging shrinker run against the same oracle
//!   the moment a mismatch appears;
//! * [`report`] — self-contained reproducers (corpus files) and the JSON
//!   run summary `mscc fuzz` prints.
//!
//! The library is UI-free: `mscc fuzz`, the CI smoke stage, and the
//! in-tree proptest suites all drive [`run_fuzz`] / [`run_case`] directly.

pub mod grammar;
pub mod minimize;
pub mod oracle;
pub mod regex_oracle;
pub mod report;
pub mod rng;

pub use grammar::{GrammarConfig, Program};
pub use minimize::{minimize, Minimized};
pub use oracle::{run_case, run_reference, CaseResult, Mismatch, Oracle, OracleConfig};
pub use report::{FuzzSummary, Reproducer};
pub use rng::{case_seed, Xoshiro256};

use std::path::PathBuf;

/// Configuration for one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Run seed; every case derives from it.
    pub seed: u64,
    /// Number of cases to generate and check.
    pub cases: u64,
    /// Grammar knobs for spawn-free cases.
    pub grammar: GrammarConfig,
    /// Shared oracle configuration (PEs, meta-state bound, daemon, ...).
    pub oracle_cfg: OracleConfig,
    /// The oracle matrix to run.
    pub oracles: Vec<Oracle>,
    /// Where to write reproducers; `None` keeps them in memory only.
    pub corpus_dir: Option<PathBuf>,
    /// Predicate-evaluation budget per minimization.
    pub minimize_budget: usize,
    /// Probability (permille) that a case exercises a spawn tree.
    pub spawn_permille: u64,
    /// Spawn sites used for spawn-tree cases.
    pub spawn_sites: u8,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            cases: 100,
            grammar: GrammarConfig::default(),
            oracle_cfg: OracleConfig::default(),
            oracles: Oracle::default_set(),
            corpus_dir: None,
            minimize_budget: 400,
            spawn_permille: 150,
            spawn_sites: 2,
        }
    }
}

/// Regenerate case `index` of `cfg` — pure in (seed, index, knobs), so a
/// reproducer needs only the pair to rebuild its program.
pub fn generate_case(cfg: &FuzzConfig, index: u64) -> Program {
    let mut rng = Xoshiro256::seeded(case_seed(cfg.seed, index));
    // The spawn coin is flipped from the case's own stream *before* the
    // grammar draws, so spawn-free and spawn cases stay reproducible
    // independently of each other.
    let spawned = cfg.spawn_permille > 0 && rng.chance(cfg.spawn_permille);
    let gcfg = if spawned {
        cfg.grammar.clone().with_spawns(cfg.spawn_sites)
    } else {
        cfg.grammar.clone()
    };
    grammar::generate(&mut rng, &gcfg)
}

/// The oracles a minimization predicate must re-run for a mismatch label.
fn predicate_oracles(label: &str, all: &[Oracle]) -> Vec<Oracle> {
    if label == "bit-identity" {
        all.iter().filter(|o| o.bit_identical()).cloned().collect()
    } else if label == "reference" {
        // run_case reports reference failures itself; no oracle needed.
        Vec::new()
    } else {
        match Oracle::parse(label) {
            Ok(o) => vec![o],
            Err(_) => all.to_vec(),
        }
    }
}

/// Minimize the first mismatch of `result` and build its reproducer.
fn minimize_mismatch(
    cfg: &FuzzConfig,
    index: u64,
    prog: &Program,
    result: &CaseResult,
) -> (Reproducer, usize) {
    let mismatch = &result.mismatches[0];
    let label = mismatch.oracle.clone();
    let pred_oracles = predicate_oracles(&label, &cfg.oracles);
    let still_fails = |p: &Program| {
        run_case(p, &pred_oracles, &cfg.oracle_cfg)
            .mismatches
            .iter()
            .any(|m| m.oracle == label)
    };
    let min = minimize(prog, still_fails, cfg.minimize_budget);
    // One more run of the minimized program to record its expected/actual
    // values (the originals belong to the unminimized source).
    let min_result = run_case(&min.program, &pred_oracles, &cfg.oracle_cfg);
    let (expected, actual, detail) = min_result
        .mismatches
        .iter()
        .find(|m| m.oracle == label)
        .map(|m| (m.expected.clone(), m.actual.clone(), m.detail.clone()))
        .unwrap_or_else(|| {
            (
                mismatch.expected.clone(),
                mismatch.actual.clone(),
                mismatch.detail.clone(),
            )
        });
    let minimized_source = min.program.render();
    (
        Reproducer {
            seed: cfg.seed,
            case_index: index,
            oracle: label,
            detail,
            expected,
            actual,
            source: result.source.clone(),
            minimized_source: minimized_source.clone(),
            minimized_lines: minimized_source.lines().count() as u64,
            minimize_evals: min.evals as u64,
        },
        min.evals,
    )
}

/// Run the whole fuzzing campaign, calling `on_case` after every case
/// (progress reporting; pass `|_, _| {}` when unneeded).
pub fn run_fuzz_with<F>(cfg: &FuzzConfig, mut on_case: F) -> FuzzSummary
where
    F: FnMut(u64, &CaseResult),
{
    let mut summary = FuzzSummary {
        seed: cfg.seed,
        oracles: cfg.oracles.iter().map(Oracle::label).collect(),
        ..Default::default()
    };
    for index in 0..cfg.cases {
        msc_obs::count("fuzz.cases", 1);
        let prog = generate_case(cfg, index);
        let result = run_case(&prog, &cfg.oracles, &cfg.oracle_cfg);
        summary.cases += 1;
        summary.oracle_runs += result.oracles_run as u64;
        summary.skips += result.skips.len() as u64;
        if !result.clean() {
            summary.mismatches += result.mismatches.len() as u64;
            msc_obs::count("fuzz.mismatches", result.mismatches.len() as u64);
            let (repro, evals) = minimize_mismatch(cfg, index, &prog, &result);
            summary.minimize_evals += evals as u64;
            let entry = match &cfg.corpus_dir {
                Some(dir) => match repro.write(dir) {
                    Ok(path) => path.display().to_string(),
                    Err(e) => format!("<unwritable corpus {dir:?}: {e}>"),
                },
                None => repro.file_name(),
            };
            msc_obs::count("fuzz.reproducers", 1);
            summary.reproducers.push(entry);
        }
        on_case(index, &result);
    }
    summary
}

/// [`run_fuzz_with`] without a progress callback.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzSummary {
    run_fuzz_with(cfg, |_, _| {})
}

/// Re-run a corpus reproducer: regenerate its program from (seed, case)
/// under `cfg`'s knobs and run the configured oracle matrix over it.
pub fn replay(repro: &Reproducer, cfg: &FuzzConfig) -> CaseResult {
    let mut case_cfg = cfg.clone();
    case_cfg.seed = repro.seed;
    let prog = generate_case(&case_cfg, repro.case_index);
    run_case(&prog, &cfg.oracles, &cfg.oracle_cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_generation_is_pure_in_seed_and_index() {
        let cfg = FuzzConfig::default();
        assert_eq!(generate_case(&cfg, 7), generate_case(&cfg, 7));
        assert_ne!(
            generate_case(&cfg, 7).render(),
            generate_case(&cfg, 8).render()
        );
    }

    #[test]
    fn a_small_clean_run_reports_zero_mismatches() {
        let cfg = FuzzConfig {
            cases: 4,
            oracles: vec![Oracle::Interp, Oracle::Base],
            ..Default::default()
        };
        let summary = run_fuzz(&cfg);
        assert_eq!(summary.cases, 4);
        assert_eq!(summary.mismatches, 0, "{:?}", summary.reproducers);
        assert!(summary.ok());
        assert!(summary.oracle_runs + summary.skips == 8);
    }

    #[test]
    fn progress_callback_sees_every_case() {
        let cfg = FuzzConfig {
            cases: 3,
            oracles: vec![Oracle::Interp],
            ..Default::default()
        };
        let mut seen = Vec::new();
        run_fuzz_with(&cfg, |i, r| seen.push((i, r.clean())));
        assert_eq!(
            seen.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn injected_bug_is_caught_minimized_and_replayable() {
        let dir = std::env::temp_dir().join(format!("msc-fuzz-selftest-{}", std::process::id()));
        let cfg = FuzzConfig {
            cases: 20,
            oracles: vec![Oracle::SelfTest],
            corpus_dir: Some(dir.clone()),
            spawn_permille: 0,
            ..Default::default()
        };
        let summary = run_fuzz(&cfg);
        assert!(
            summary.mismatches > 0,
            "selftest oracle found nothing in 20 cases"
        );
        assert!(!summary.reproducers.is_empty());
        let repro = Reproducer::read(std::path::Path::new(&summary.reproducers[0])).unwrap();
        assert!(
            repro.minimized_lines <= 15,
            "reproducer not minimal ({} lines):\n{}",
            repro.minimized_lines,
            repro.minimized_source
        );
        assert!(repro.minimized_source.contains("if ("));
        // Replay regenerates the identical program and still diverges.
        let replayed = replay(&repro, &cfg);
        assert!(replayed.mismatches.iter().any(|m| m.oracle == "selftest"));
        assert_eq!(replayed.source, repro.source);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
