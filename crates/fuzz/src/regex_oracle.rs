//! Differential oracle for the regex front-end: the meta-automaton
//! matcher (sequential and sharded) versus the independent naive
//! backtracking reference in `msc_regex::naive`.
//!
//! The regex case for a fuzz case is *derived* from the rendered MIMDC
//! source: hashing the source seeds a private RNG that draws a pattern,
//! a haystack, and shard cut points. Replay therefore works unchanged —
//! regenerating the program from `(seed, index)` regenerates the same
//! regex case — and the source minimizer composes with the oracle (any
//! source whose derived case still diverges is a valid shrink). On a
//! mismatch the haystack is additionally shrunk here, byte-wise, so the
//! reported detail carries a minimal failing input alongside the pattern.

use crate::rng::Xoshiro256;
use msc_regex::{Regex, RegexError};

/// One derived regex case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexCase {
    /// The pattern under test.
    pub pattern: String,
    /// The haystack.
    pub input: Vec<u8>,
    /// Shard cut offsets (clamped into the input during sharding).
    pub cuts: Vec<usize>,
}

/// What checking one case concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegexOutcome {
    /// Every engine agreed on every span.
    Clean,
    /// The pattern blew a complexity cap — legitimate bail-out.
    Skip(String),
    /// Engines disagreed (or a generated pattern failed to parse).
    Mismatch(String),
}

/// FNV-1a over the source text: a stable, dependency-free seed.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Haystack alphabet: small enough that patterns actually match, plus a
/// newline so `.`'s exclusion is exercised.
const ALPHABET: &[u8] = b"abcxy\n";

fn gen_pattern(rng: &mut Xoshiro256, depth: u32) -> String {
    if depth == 0 {
        return match rng.below(7) {
            0 => "a".into(),
            1 => "b".into(),
            2 => "c".into(),
            3 => ".".into(),
            4 => "[ab]".into(),
            5 => "[^c]".into(),
            _ => "ab".into(),
        };
    }
    match rng.below(8) {
        0 | 1 => {
            let a = gen_pattern(rng, depth - 1);
            let b = gen_pattern(rng, depth - 1);
            format!("{a}{b}")
        }
        2 => {
            let a = gen_pattern(rng, depth - 1);
            let b = gen_pattern(rng, depth - 1);
            format!("({a}|{b})")
        }
        3 => format!("({})*", gen_pattern(rng, depth - 1)),
        4 => format!("({})+", gen_pattern(rng, depth - 1)),
        5 => format!("({})?", gen_pattern(rng, depth - 1)),
        _ => gen_pattern(rng, depth - 1),
    }
}

/// Derive the regex case for one rendered fuzz program.
pub fn derive_case(source: &str) -> RegexCase {
    let mut rng = Xoshiro256::seeded(fnv1a(source) ^ 0x7265_6765_7821);
    let mut pattern = gen_pattern(&mut rng, 3);
    if rng.chance(150) {
        pattern = format!("^{pattern}");
    }
    if rng.chance(150) {
        pattern.push('$');
    }
    let len = rng.below(48) as usize;
    let input: Vec<u8> = (0..len).map(|_| *rng.pick(ALPHABET)).collect();
    let ncuts = rng.below(5) as usize;
    let cuts: Vec<usize> = (0..ncuts).map(|_| rng.below(64) as usize).collect();
    RegexCase {
        pattern,
        input,
        cuts,
    }
}

/// Split `input` at `cuts` (clamped, sorted, deduped) into shards.
fn shard<'a>(input: &'a [u8], cuts: &[usize]) -> Vec<&'a [u8]> {
    let mut points: Vec<usize> = cuts.iter().map(|&c| c % (input.len() + 1)).collect();
    points.push(0);
    points.push(input.len());
    points.sort_unstable();
    points.dedup();
    let shards: Vec<&[u8]> = points.windows(2).map(|w| &input[w[0]..w[1]]).collect();
    if shards.is_empty() {
        // Empty input: one empty shard, not zero shards.
        vec![input]
    } else {
        shards
    }
}

/// Run every engine over one case; `None` means full agreement. The
/// naive reference is the golden semantics; the sequential DFA and the
/// sharded DFA at 1 and 2 threads must all reproduce it exactly.
fn diverges(pattern: &Regex, input: &[u8], cuts: &[usize]) -> Option<String> {
    let naive = pattern.naive_find_all(input);
    let seq: Vec<(usize, usize)> = pattern
        .find_all(input)
        .into_iter()
        .map(|m| (m.start, m.end))
        .collect();
    if naive != seq {
        return Some(format!(
            "meta-automaton disagrees with naive reference: naive {naive:?}, dfa {seq:?}"
        ));
    }
    let shards = shard(input, cuts);
    for threads in [1usize, 2] {
        let sharded: Vec<(usize, usize)> = pattern
            .find_sharded(&shards, threads)
            .into_iter()
            .map(|m| (m.start, m.end))
            .collect();
        if sharded != seq {
            return Some(format!(
                "sharded scan ({} shards, {threads} threads) disagrees with sequential: \
                 sequential {seq:?}, sharded {sharded:?}",
                shards.len()
            ));
        }
    }
    None
}

/// Byte-wise haystack shrinker: greedily drop chunks (halving the chunk
/// size down to single bytes) while the divergence persists. The pattern
/// and cut structure stay fixed; cuts re-clamp to the shrunk length.
fn minimize_input(re: &Regex, input: &[u8], cuts: &[usize]) -> Vec<u8> {
    let mut best = input.to_vec();
    let mut chunk = (best.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut at = 0usize;
        while at < best.len() {
            let end = (at + chunk).min(best.len());
            let mut candidate = best.clone();
            candidate.drain(at..end);
            if diverges(re, &candidate, cuts).is_some() {
                best = candidate;
                progressed = true;
                // Re-test the same offset: the next chunk slid into it.
            } else {
                at = end;
            }
        }
        if chunk == 1 && !progressed {
            return best;
        }
        if !progressed {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// Check the case derived from one rendered fuzz program.
pub fn run_derived(source: &str) -> RegexOutcome {
    check(&derive_case(source))
}

/// Check one explicit case.
pub fn check(case: &RegexCase) -> RegexOutcome {
    let re = match Regex::new(&case.pattern) {
        Ok(re) => re,
        Err(RegexError::TooComplex { limit }) => {
            return RegexOutcome::Skip(format!(
                "pattern `{}` exceeds the {limit}-state bound",
                case.pattern
            ));
        }
        Err(e) => {
            // The generator only emits grammatical patterns, so a parse
            // failure is itself a finding.
            return RegexOutcome::Mismatch(format!(
                "generated pattern `{}` failed to compile: {e}",
                case.pattern
            ));
        }
    };
    match diverges(&re, &case.input, &case.cuts) {
        None => RegexOutcome::Clean,
        Some(_) => {
            let min = minimize_input(&re, &case.input, &case.cuts);
            let detail = diverges(&re, &min, &case.cuts)
                .unwrap_or_else(|| "divergence vanished under minimization".into());
            RegexOutcome::Mismatch(format!(
                "pattern `{}` on input {:?} (minimized from {} bytes): {detail}",
                case.pattern,
                String::from_utf8_lossy(&min),
                case.input.len()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_pure_in_the_source() {
        let a = derive_case("main() { return(1); }");
        let b = derive_case("main() { return(1); }");
        assert_eq!(a, b);
        let c = derive_case("main() { return(2); }");
        assert_ne!(a, c, "different sources draw different cases");
    }

    #[test]
    fn many_derived_cases_are_clean() {
        // The real check: hundreds of generated (pattern, input, cuts)
        // triples where naive, sequential-DFA and sharded-DFA all agree.
        for i in 0..300 {
            let source = format!("main() {{ return({i}); }}");
            let case = derive_case(&source);
            match check(&case) {
                RegexOutcome::Mismatch(d) => panic!("case {i} ({case:?}): {d}"),
                RegexOutcome::Clean | RegexOutcome::Skip(_) => {}
            }
        }
    }

    #[test]
    fn sharding_covers_boundary_cases() {
        let input = b"xaabxx";
        assert_eq!(shard(input, &[]).len(), 1);
        assert_eq!(shard(input, &[3, 3, 99]).len(), 3, "dup + clamped cuts");
        let shards = shard(input, &[2, 4]);
        let glued: Vec<u8> = shards.concat();
        assert_eq!(glued, input);
        assert_eq!(shard(b"", &[1, 2]).len(), 1, "empty input is one shard");
    }

    #[test]
    fn input_minimizer_shrinks_to_the_core() {
        // Drive the shrinker with a synthetic divergence: reuse the real
        // one by checking a pattern against a *wrong* expectation is not
        // possible without a bug, so instead verify the shrinker keeps a
        // property-preserving subset — here "still contains a match".
        let re = Regex::new("ab+c").unwrap();
        let input = b"xxxxabbbcyyyyy".to_vec();
        // minimize_input preserves *divergence*; with no divergence it
        // must return the input unchanged (no chunk removal sticks).
        let kept = minimize_input(&re, &input, &[]);
        assert_eq!(kept, input, "clean input cannot shrink");
    }
}
