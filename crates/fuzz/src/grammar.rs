//! The MIMDC program generator: a weighted grammar over a tiny AST whose
//! every program **terminates by construction** (loops have fixed trip
//! counts, recursion is absent, `spawn` targets a straight-line worker).
//!
//! This is the generator that used to live inside
//! `tests/fuzz_equivalence.rs`, promoted to a library and extended with
//! tunable knobs ([`GrammarConfig`]): branch density, loop depth and trip
//! counts, `wait` placement, and bounded spawn trees. The same grammar
//! feeds the in-process proptest suite and `mscc fuzz`, so there is one
//! source of truth for what a "generated program" is.

use crate::rng::Xoshiro256;

/// Expression AST. All operators are total (`/` and `%` trap to 0 on a
/// zero divisor, per the IR's semantics), so any expression tree is safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Lit(i64),
    /// One of the program's poly variables, `v<k>`.
    Var(usize),
    /// The PE's own id.
    PeId,
    /// Binary operation.
    Bin(&'static str, Box<Expr>, Box<Expr>),
}

/// Statement AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `v<k> = expr;`
    Assign(usize, Expr),
    /// `v<k> += expr;`
    CompoundAdd(usize, Expr),
    /// `if (cond) { then } else { else }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `for (t<d> = 0; t<d> < k; t<d> += 1) { body }` with constant `k`.
    Loop(u8, Vec<Stmt>),
    /// `wait;` — a barrier. Only rendered at the top level of `main`
    /// (inside divergent control flow a barrier can deadlock real MIMD
    /// programs, which is a *program* bug, not a conversion bug).
    Wait,
    /// `spawn worker(pe_id() + k);` — recruit an idle PE (§3.2.5). Only
    /// generated at the top level of `main` so the static spawn count
    /// bounds pool demand.
    Spawn(u8),
}

/// Knobs for the weighted grammar. All probabilities are in permille so
/// configs are exactly representable and hashable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrammarConfig {
    /// Poly variables `v0..v{n_vars}`.
    pub n_vars: usize,
    /// Top-level statements in `main`.
    pub max_top_stmts: usize,
    /// Statements per nested block.
    pub max_block_stmts: usize,
    /// Maximum statement nesting depth (if/loop).
    pub max_depth: usize,
    /// Maximum expression tree depth.
    pub max_expr_depth: usize,
    /// Probability (permille) that a non-leaf statement slot becomes an
    /// `if`.
    pub branch_permille: u64,
    /// Probability (permille) that a non-leaf statement slot becomes a
    /// bounded loop.
    pub loop_permille: u64,
    /// Loop trip counts are drawn from `1..=max_trips`.
    pub max_trips: u8,
    /// Probability (permille) that a top-level slot is a `wait` barrier.
    pub wait_permille: u64,
    /// Static `spawn` sites at the top of `main` (0 disables spawn
    /// generation). When nonzero, `wait` is suppressed: barriers over a
    /// part-idle machine synchronize only the live set, and the live set
    /// differs between modes while workers run — a semantics question the
    /// paper leaves open, not a conversion bug the fuzzer should report.
    pub max_spawn_sites: u8,
}

impl Default for GrammarConfig {
    fn default() -> Self {
        GrammarConfig {
            n_vars: 4,
            max_top_stmts: 4,
            max_block_stmts: 3,
            max_depth: 2,
            max_expr_depth: 2,
            branch_permille: 280,
            loop_permille: 220,
            max_trips: 3,
            wait_permille: 120,
            max_spawn_sites: 0,
        }
    }
}

impl GrammarConfig {
    /// A config that exercises spawn trees (and therefore suppresses
    /// `wait`, see [`GrammarConfig::max_spawn_sites`]).
    pub fn with_spawns(mut self, sites: u8) -> Self {
        self.max_spawn_sites = sites;
        self
    }
}

const OPS: [&str; 9] = ["+", "-", "*", "/", "%", "<", "==", "&", "^"];

/// A generated program: `main` plus, when spawn sites exist, one `worker`
/// function. Rendering and execution-shape metadata live here so oracles
/// and the minimizer agree on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Top-level statements of `main`.
    pub stmts: Vec<Stmt>,
    /// Variables declared (`v0..`).
    pub n_vars: usize,
    /// Static spawn sites actually emitted.
    pub spawn_sites: u8,
    /// Worker loop trip count (spawned worker body), if any spawns.
    pub worker_trips: u8,
}

/// Generate one program from `rng` under `cfg`.
pub fn generate(rng: &mut Xoshiro256, cfg: &GrammarConfig) -> Program {
    let mut stmts = Vec::new();
    let spawn_sites = if cfg.max_spawn_sites > 0 {
        1 + rng.below(cfg.max_spawn_sites as u64) as u8
    } else {
        0
    };
    for k in 0..spawn_sites {
        stmts.push(Stmt::Spawn(k));
    }
    let n_top = 1 + rng.below(cfg.max_top_stmts.max(1) as u64) as usize;
    for _ in 0..n_top {
        if spawn_sites == 0 && rng.chance(cfg.wait_permille) {
            stmts.push(Stmt::Wait);
        } else {
            stmts.push(gen_stmt(rng, cfg, cfg.max_depth));
        }
    }
    Program {
        stmts,
        n_vars: cfg.n_vars,
        spawn_sites,
        worker_trips: if spawn_sites > 0 {
            1 + rng.below(cfg.max_trips.max(1) as u64) as u8
        } else {
            0
        },
    }
}

fn gen_stmt(rng: &mut Xoshiro256, cfg: &GrammarConfig, depth: usize) -> Stmt {
    if depth > 0 {
        if rng.chance(cfg.branch_permille) {
            let cond = gen_expr(rng, cfg, 1);
            let then = gen_block(rng, cfg, depth - 1);
            let els = gen_block(rng, cfg, depth - 1);
            return Stmt::If(cond, then, els);
        }
        if rng.chance(cfg.loop_permille) {
            let trips = 1 + rng.below(cfg.max_trips.max(1) as u64) as u8;
            let body = gen_block(rng, cfg, depth - 1);
            return Stmt::Loop(trips, body);
        }
    }
    let var = rng.below(cfg.n_vars as u64) as usize;
    if rng.chance(400) {
        Stmt::CompoundAdd(var, gen_expr(rng, cfg, 1))
    } else {
        Stmt::Assign(var, gen_expr(rng, cfg, cfg.max_expr_depth))
    }
}

fn gen_block(rng: &mut Xoshiro256, cfg: &GrammarConfig, depth: usize) -> Vec<Stmt> {
    let n = 1 + rng.below(cfg.max_block_stmts.max(1) as u64) as usize;
    (0..n).map(|_| gen_stmt(rng, cfg, depth)).collect()
}

fn gen_expr(rng: &mut Xoshiro256, cfg: &GrammarConfig, depth: usize) -> Expr {
    if depth < cfg.max_expr_depth && rng.chance(550) {
        let op = *rng.pick(&OPS);
        let l = gen_expr(rng, cfg, depth + 1);
        let r = gen_expr(rng, cfg, depth + 1);
        return Expr::Bin(op, Box::new(l), Box::new(r));
    }
    match rng.below(3) {
        0 => Expr::Lit(rng.range_i64(-8, 15)),
        1 => Expr::Var(rng.below(cfg.n_vars as u64) as usize),
        _ => Expr::PeId,
    }
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn render_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Lit(v) => out.push_str(&format!("({v})")),
        Expr::Var(v) => out.push_str(&format!("v{v}")),
        Expr::PeId => out.push_str("pe_id()"),
        Expr::Bin(op, l, r) => {
            out.push('(');
            render_expr(l, out);
            out.push_str(&format!(" {op} "));
            render_expr(r, out);
            out.push(')');
        }
    }
}

fn render_stmts(stmts: &[Stmt], indent: usize, loop_depth: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => {
                out.push_str(&format!("{pad}v{v} = "));
                render_expr(e, out);
                out.push_str(";\n");
            }
            Stmt::CompoundAdd(v, e) => {
                out.push_str(&format!("{pad}v{v} += "));
                render_expr(e, out);
                out.push_str(";\n");
            }
            Stmt::If(c, t, e) => {
                out.push_str(&format!("{pad}if ("));
                render_expr(c, out);
                out.push_str(") {\n");
                render_stmts(t, indent + 1, loop_depth, out);
                out.push_str(&format!("{pad}}} else {{\n"));
                render_stmts(e, indent + 1, loop_depth, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::Loop(k, b) => {
                let i = format!("t{loop_depth}");
                out.push_str(&format!("{pad}for ({i} = 0; {i} < {k}; {i} += 1) {{\n"));
                render_stmts(b, indent + 1, loop_depth + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::Wait => {
                // Only valid at top level; see the `Stmt::Wait` docs.
                if indent == 1 {
                    out.push_str(&format!("{pad}wait;\n"));
                }
            }
            Stmt::Spawn(k) => {
                if indent == 1 {
                    out.push_str(&format!(
                        "{pad}spawn worker(pe_id() + {});\n",
                        2 + *k as i64
                    ));
                }
            }
        }
    }
}

fn max_loop_depth(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Loop(_, b) => 1 + max_loop_depth(b),
            Stmt::If(_, t, e) => max_loop_depth(t).max(max_loop_depth(e)),
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

impl Program {
    /// Render to MIMDC source. `main` declares every variable, folds them
    /// into `result`, and returns it; when spawn sites exist a `worker`
    /// function writing the always-odd (hence never-zero) `wr` precedes
    /// `main`, so oracles can identify the PEs that ran a worker.
    pub fn render(&self) -> String {
        let mut body = String::new();
        render_stmts(&self.stmts, 1, 0, &mut body);
        let loops = max_loop_depth(&self.stmts);
        let mut decls = String::from("    poly int ");
        for v in 0..self.n_vars {
            decls.push_str(&format!("v{v} = {}, ", v as i64 + 1));
        }
        for t in 0..loops.max(1) {
            decls.push_str(&format!("t{t} = 0, "));
        }
        decls.push_str("result = 0;\n");
        let worker = if self.spawn_sites > 0 {
            format!(
                "void worker(int seed) {{\n    poly int wr = 0, wi = 0;\n    wr = seed * 2 + 1;\n    for (wi = 0; wi < {}; wi += 1) {{\n        wr += 2;\n    }}\n}}\n",
                self.worker_trips
            )
        } else {
            String::new()
        };
        format!(
            "{worker}main() {{\n{decls}{body}    result = v0 + v1 * 10 + v2 * 100 + v3 * 1000;\n    return(result);\n}}\n"
        )
    }

    /// A conservative termination bound, in simulated cycles, for any
    /// machine in the oracle matrix. Dynamic statement count (loops
    /// multiplied out) times a generous per-statement cycle constant,
    /// plus slack for prologue/epilogue, barriers, and dispatch.
    pub fn cycle_bound(&self) -> u64 {
        // Every grammar statement lowers to a handful of stack ops; 256
        // cycles per dynamic statement dominates any cost-model entry by
        // an order of magnitude.
        let dyn_stmts = Self::dynamic_stmts(&self.stmts)
            + self.spawn_sites as u64 * (4 + 2 * self.worker_trips as u64);
        (dyn_stmts + 8) * 256 + 4096
    }

    fn dynamic_stmts(stmts: &[Stmt]) -> u64 {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::If(_, t, e) => 1 + Self::dynamic_stmts(t) + Self::dynamic_stmts(e),
                Stmt::Loop(k, b) => 1 + (*k as u64) * (1 + Self::dynamic_stmts(b)),
                _ => 1,
            })
            .sum()
    }

    /// Number of `spawn` sites (each recruits one PE per live PE).
    pub fn spawn_count(&self) -> usize {
        self.spawn_sites as usize
    }

    /// Source line count of the rendering (reproducer-size metric).
    pub fn line_count(&self) -> usize {
        self.render().lines().count()
    }
}

/// Parse a rendered program back? No — the minimizer works on the AST and
/// re-renders, so the corpus stores both the AST-derived source and the
/// (seed, index) pair to regenerate it. See `crate::minimize`.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GrammarConfig::default();
        let a = generate(&mut Xoshiro256::seeded(99), &cfg);
        let b = generate(&mut Xoshiro256::seeded(99), &cfg);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn rendered_programs_compile() {
        let cfg = GrammarConfig::default();
        let mut rng = Xoshiro256::seeded(2026);
        for _ in 0..50 {
            let p = generate(&mut rng, &cfg);
            let src = p.render();
            msc_lang::compile(&src).unwrap_or_else(|e| panic!("{e} on:\n{src}"));
        }
    }

    #[test]
    fn spawn_programs_compile_and_count_sites() {
        let cfg = GrammarConfig::default().with_spawns(2);
        let mut rng = Xoshiro256::seeded(7);
        for _ in 0..20 {
            let p = generate(&mut rng, &cfg);
            assert!(p.spawn_sites >= 1 && p.spawn_sites <= 2);
            let src = p.render();
            assert!(src.contains("void worker"), "{src}");
            assert!(
                !src.contains("wait;"),
                "wait must be suppressed with spawns:\n{src}"
            );
            msc_lang::compile(&src).unwrap_or_else(|e| panic!("{e} on:\n{src}"));
        }
    }

    #[test]
    fn knobs_shift_the_distribution() {
        let loopy_cfg = GrammarConfig {
            loop_permille: 900,
            branch_permille: 0,
            wait_permille: 0,
            ..GrammarConfig::default()
        };
        let branchy_cfg = GrammarConfig {
            branch_permille: 900,
            loop_permille: 0,
            wait_permille: 0,
            ..GrammarConfig::default()
        };
        let (mut loops, mut branches) = (0usize, 0usize);
        for s in 0..40 {
            let lp = generate(&mut Xoshiro256::seeded(s), &loopy_cfg);
            let bp = generate(&mut Xoshiro256::seeded(s), &branchy_cfg);
            loops += lp.render().matches("for (").count();
            branches += bp.render().matches("if (").count();
        }
        assert!(loops > 20, "loop knob inert: {loops}");
        assert!(branches > 20, "branch knob inert: {branches}");
    }

    #[test]
    fn cycle_bound_is_positive_and_monotone_in_trips() {
        let small = Program {
            stmts: vec![Stmt::Loop(1, vec![Stmt::Assign(0, Expr::Lit(1))])],
            n_vars: 4,
            spawn_sites: 0,
            worker_trips: 0,
        };
        let big = Program {
            stmts: vec![Stmt::Loop(3, vec![Stmt::Assign(0, Expr::Lit(1))])],
            ..small.clone()
        };
        assert!(small.cycle_bound() < big.cycle_bound());
    }
}
