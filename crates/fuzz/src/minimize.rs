//! Delta-debugging minimizer: greedy fixpoint over one-edit shrinks of a
//! failing program, re-checking the failing oracle after every candidate.
//!
//! The classic ddmin operates on lines; operating on the grammar's AST
//! instead keeps every candidate well-formed (no parse failures burning
//! predicate evaluations) and gives semantically meaningful shrinks:
//! statement removal, branch inlining, loop-trip reduction, expression
//! subtree replacement. Every accepted edit strictly reduces the program's
//! size metric, so the loop terminates without a fuel heuristic; `budget`
//! bounds total predicate evaluations for pathological search spaces.

use crate::grammar::{Expr, Program, Stmt};

/// Result of a minimization run.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The smallest failing program found.
    pub program: Program,
    /// Predicate evaluations spent.
    pub evals: usize,
    /// Accepted (size-reducing, still-failing) edits.
    pub accepted: usize,
}

fn expr_size(e: &Expr) -> usize {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::PeId => 1,
        Expr::Bin(_, l, r) => 1 + expr_size(l) + expr_size(r),
    }
}

fn stmts_size(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Assign(_, e) | Stmt::CompoundAdd(_, e) => 1 + expr_size(e),
            Stmt::If(c, t, e) => 1 + expr_size(c) + stmts_size(t) + stmts_size(e),
            // Trip count participates in the metric so `Loop(3, b) ->
            // Loop(1, b)` counts as a shrink.
            Stmt::Loop(k, b) => 1 + *k as usize + stmts_size(b),
            Stmt::Wait | Stmt::Spawn(_) => 1,
        })
        .sum()
}

/// The strictly-decreasing size metric driving the greedy loop.
pub fn size(prog: &Program) -> usize {
    stmts_size(&prog.stmts) + prog.worker_trips as usize
}

/// All one-edit shrinks of an expression (each strictly smaller).
fn expr_edits(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::PeId => Vec::new(),
        Expr::Bin(op, l, r) => {
            let mut out = vec![(**l).clone(), (**r).clone(), Expr::Lit(0)];
            for l2 in expr_edits(l) {
                out.push(Expr::Bin(op, Box::new(l2), Box::new((**r).clone())));
            }
            for r2 in expr_edits(r) {
                out.push(Expr::Bin(op, Box::new((**l).clone()), Box::new(r2)));
            }
            out
        }
    }
}

/// All one-edit replacements of a single statement. Each entry is the
/// statement *sequence* that replaces it (so branch inlining can splice a
/// block in place of the `if`). Plain removal is handled by the caller.
fn stmt_edits(s: &Stmt) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    match s {
        Stmt::Assign(v, e) => {
            for e2 in expr_edits(e) {
                out.push(vec![Stmt::Assign(*v, e2)]);
            }
        }
        Stmt::CompoundAdd(v, e) => {
            for e2 in expr_edits(e) {
                out.push(vec![Stmt::CompoundAdd(*v, e2)]);
            }
        }
        Stmt::If(c, t, e) => {
            // Inline either branch in place of the whole `if`.
            out.push(t.clone());
            out.push(e.clone());
            for c2 in expr_edits(c) {
                out.push(vec![Stmt::If(c2, t.clone(), e.clone())]);
            }
            for t2 in list_edits(t) {
                out.push(vec![Stmt::If(c.clone(), t2, e.clone())]);
            }
            for e2 in list_edits(e) {
                out.push(vec![Stmt::If(c.clone(), t.clone(), e2)]);
            }
        }
        Stmt::Loop(k, b) => {
            // Unroll to a single pass, cut the trip count, or shrink the
            // body in place.
            out.push(b.clone());
            if *k > 1 {
                out.push(vec![Stmt::Loop(1, b.clone())]);
            }
            for b2 in list_edits(b) {
                out.push(vec![Stmt::Loop(*k, b2)]);
            }
        }
        Stmt::Wait | Stmt::Spawn(_) => {}
    }
    out
}

/// All one-edit variants of a statement list: per-position removal, then
/// per-position replacement.
fn list_edits(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for i in 0..stmts.len() {
        let mut removed = stmts.to_vec();
        removed.remove(i);
        out.push(removed);
    }
    for (i, s) in stmts.iter().enumerate() {
        for replacement in stmt_edits(s) {
            let mut v = stmts[..i].to_vec();
            v.extend(replacement);
            v.extend_from_slice(&stmts[i + 1..]);
            out.push(v);
        }
    }
    out
}

/// Rebuild the derived fields an edit can invalidate: the static spawn
/// count must track surviving `Spawn` statements (it drives both the
/// worker-function rendering and the oracle machine shape).
fn normalize(mut prog: Program) -> Program {
    prog.spawn_sites = prog
        .stmts
        .iter()
        .filter(|s| matches!(s, Stmt::Spawn(_)))
        .count() as u8;
    if prog.spawn_sites == 0 {
        prog.worker_trips = 0;
    }
    prog
}

/// All one-edit shrinks of a whole program.
fn candidates(prog: &Program) -> Vec<Program> {
    let mut out: Vec<Program> = list_edits(&prog.stmts)
        .into_iter()
        .map(|stmts| {
            normalize(Program {
                stmts,
                ..prog.clone()
            })
        })
        .collect();
    if prog.worker_trips > 1 {
        out.push(Program {
            worker_trips: 1,
            ..prog.clone()
        });
    }
    out
}

/// Shrink `prog` while `still_fails` holds, spending at most `budget`
/// predicate evaluations. `still_fails(prog)` is assumed true on entry;
/// the returned program always satisfies it.
pub fn minimize<F>(prog: &Program, mut still_fails: F, budget: usize) -> Minimized
where
    F: FnMut(&Program) -> bool,
{
    let mut cur = prog.clone();
    let mut evals = 0usize;
    let mut accepted = 0usize;
    'outer: loop {
        let cur_size = size(&cur);
        for cand in candidates(&cur) {
            if size(&cand) >= cur_size {
                continue;
            }
            if evals >= budget {
                break 'outer;
            }
            evals += 1;
            if still_fails(&cand) {
                msc_obs::count("fuzz.minimize_accepted", 1);
                cur = cand;
                accepted += 1;
                continue 'outer;
            }
        }
        break;
    }
    msc_obs::count("fuzz.minimize_evals", evals as u64);
    Minimized {
        program: cur,
        evals,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{generate, GrammarConfig};
    use crate::rng::Xoshiro256;

    fn has_if(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::If(..) => true,
            Stmt::Loop(_, b) => has_if(b),
            _ => false,
        })
    }

    #[test]
    fn shrinks_a_branchy_program_to_a_bare_if() {
        let cfg = GrammarConfig {
            branch_permille: 800,
            max_top_stmts: 6,
            ..GrammarConfig::default()
        };
        let mut rng = Xoshiro256::seeded(5);
        let prog = generate(&mut rng, &cfg);
        assert!(has_if(&prog.stmts), "fixture needs a branch");
        let min = minimize(&prog, |p| has_if(&p.stmts), 10_000);
        assert!(has_if(&min.program.stmts), "minimizer lost the property");
        assert!(
            size(&min.program) <= 3,
            "expected a bare if, got size {}: {:?}",
            size(&min.program),
            min.program.stmts
        );
        assert!(min.evals <= 10_000);
    }

    #[test]
    fn minimization_is_deterministic() {
        let cfg = GrammarConfig {
            branch_permille: 700,
            ..GrammarConfig::default()
        };
        let prog = generate(&mut Xoshiro256::seeded(77), &cfg);
        if !has_if(&prog.stmts) {
            return;
        }
        let a = minimize(&prog, |p| has_if(&p.stmts), 5_000);
        let b = minimize(&prog, |p| has_if(&p.stmts), 5_000);
        assert_eq!(a.program, b.program);
        assert_eq!(a.evals, b.evals);
    }

    #[test]
    fn spawn_removal_renormalizes_the_program() {
        let prog = Program {
            stmts: vec![
                Stmt::Spawn(0),
                Stmt::Spawn(1),
                Stmt::Assign(0, Expr::Lit(3)),
            ],
            n_vars: 4,
            spawn_sites: 2,
            worker_trips: 2,
        };
        // Property: still assigns to v0. Spawns are irrelevant and must
        // all be removed, taking the worker metadata with them.
        let min = minimize(
            &prog,
            |p| p.stmts.iter().any(|s| matches!(s, Stmt::Assign(0, _))),
            1_000,
        );
        assert_eq!(min.program.spawn_sites, 0);
        assert_eq!(min.program.worker_trips, 0);
        assert!(!min.program.render().contains("void worker"));
    }

    #[test]
    fn budget_caps_predicate_evaluations() {
        let cfg = GrammarConfig {
            max_top_stmts: 6,
            ..GrammarConfig::default()
        };
        let prog = generate(&mut Xoshiro256::seeded(13), &cfg);
        let mut calls = 0usize;
        let min = minimize(
            &prog,
            |_| {
                calls += 1;
                false
            },
            7,
        );
        assert_eq!(calls, 7);
        assert_eq!(min.evals, 7);
        assert_eq!(min.program, prog, "nothing accepted, program unchanged");
    }
}
