//! Deterministic, dependency-free random numbers for the fuzzer.
//!
//! [`SplitMix64`] seeds and derives independent streams (one per fuzz
//! case, so case *k* of seed *s* is reproducible without replaying cases
//! 0..k); [`Xoshiro256`] (xoshiro256**) is the workhorse generator the
//! grammar draws from. Both are the standard public-domain constructions,
//! reimplemented here because the fuzzer must not pull in external crates
//! and must produce the same programs on every platform.

/// SplitMix64: the canonical seeding/stream-splitting PRNG.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next 64-bit output, advancing the state.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derive the per-case seed for case `index` of run seed `seed`. Pure, so
/// a reproducer only needs (seed, index) to regenerate its program.
pub fn case_seed(seed: u64, index: u64) -> u64 {
    let mut s = SplitMix64(seed ^ 0xA076_1D64_78BD_642F);
    let a = s.next_u64();
    let mut t = SplitMix64(a.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    t.next_u64()
}

/// xoshiro256**: the fuzzer's main generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64, per the xoshiro authors' recommendation.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift (Lemire) without the rejection step: the tiny
        // bias is irrelevant for fuzzing and keeps the draw branch-free.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Bernoulli draw: true with probability `permille`/1000.
    pub fn chance(&mut self, permille: u64) -> bool {
        self.below(1000) < permille
    }

    /// Uniform element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Uniform draw in `[lo, hi]` (inclusive, signed).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First three outputs for seed 1234567, from the reference C
        // implementation.
        let mut s = SplitMix64(1234567);
        assert_eq!(s.next_u64(), 6457827717110365317);
        assert_eq!(s.next_u64(), 3203168211198807973);
        assert_eq!(s.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_spread() {
        let mut a = Xoshiro256::seeded(42);
        let mut b = Xoshiro256::seeded(42);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let again: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(first, again);
        // All draws distinct (overwhelmingly likely for a healthy PRNG).
        let mut sorted = first.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), first.len());
    }

    #[test]
    fn below_stays_in_range_and_hits_everything() {
        let mut r = Xoshiro256::seeded(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn case_seeds_differ_per_index_and_per_seed() {
        let a = case_seed(1, 0);
        let b = case_seed(1, 1);
        let c = case_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, case_seed(1, 0), "pure function");
    }
}
