//! Generator soundness: every program the grammar emits terminates under
//! the true-MIMD reference within its *computed* cycle bound — i.e.
//! [`Program::cycle_bound`] really is a termination certificate, not a
//! guess. Checked for both the spawn-free and the spawn-tree grammar.

use msc_fuzz::grammar::{generate, GrammarConfig, Program};
use msc_fuzz::rng::Xoshiro256;
use msc_ir::CostModel;
use proptest::prelude::*;

/// Run `prog` on the reference with `max_cycles` set to its own bound;
/// a watchdog trip means the bound (or the grammar) is unsound.
fn terminates_within_bound(prog: &Program, n_pe: usize) -> Result<(), String> {
    let src = prog.render();
    let (total, live) = if prog.spawn_count() > 0 {
        (n_pe * (1 + prog.spawn_count()), n_pe)
    } else {
        (n_pe, n_pe)
    };
    let p = msc_lang::compile(&src).map_err(|e| format!("compile: {e}\non:\n{src}"))?;
    let cfg = msc_mimd::MimdConfig {
        n_proc: total,
        active_at_start: live,
        max_cycles: prog.cycle_bound(),
        costs: CostModel::default(),
    };
    let mut m = msc_mimd::MimdReference::new(p.layout.poly_words, p.layout.mono_words, &cfg);
    m.run(&p.graph, &cfg)
        .map(|_| ())
        .map_err(|e| format!("{e} (bound {})\non:\n{src}", prog.cycle_bound()))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn spawn_free_programs_terminate_within_their_bound(seed in any::<u64>()) {
        let prog = generate(&mut Xoshiro256::seeded(seed), &GrammarConfig::default());
        let r = terminates_within_bound(&prog, 5);
        prop_assert!(r.is_ok(), "{}", r.err().unwrap_or_default());
    }

    #[test]
    fn spawn_programs_terminate_within_their_bound(seed in any::<u64>()) {
        let cfg = GrammarConfig::default().with_spawns(2);
        let prog = generate(&mut Xoshiro256::seeded(seed), &cfg);
        let r = terminates_within_bound(&prog, 4);
        prop_assert!(r.is_ok(), "{}", r.err().unwrap_or_default());
    }

    /// The bound certificate survives minimizer edits too: any shrink of a
    /// generated program (which the minimizer could visit) still
    /// terminates within the *shrunk* program's own bound.
    #[test]
    fn bounds_shrink_with_the_program(seed in any::<u64>()) {
        let prog = generate(&mut Xoshiro256::seeded(seed), &GrammarConfig::default());
        // Minimize against a trivially-true predicate with a small budget:
        // this walks real minimizer edit chains.
        let min = msc_fuzz::minimize(&prog, |_| true, 24);
        prop_assert!(min.program.cycle_bound() <= prog.cycle_bound());
        let r = terminates_within_bound(&min.program, 5);
        prop_assert!(r.is_ok(), "{}", r.err().unwrap_or_default());
    }
}
