//! Offline shim for the `crossbeam` API surface this workspace uses,
//! backed by `std::thread::scope` (stable since Rust 1.63).
//!
//! The build environment has no registry access, so the real crate cannot
//! be vendored. Provided here: scoped threads with the crossbeam calling
//! convention (`scope(|s| s.spawn(|_| ...))`) and `utils::CachePadded`.

pub use thread::scope;

pub mod thread {
    //! Scoped threads in the crossbeam style: spawn closures receive the
    //! scope handle so they can spawn further threads.

    use std::any::Any;

    /// Handle for spawning threads inside a [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result or panic
        /// payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// handle (crossbeam convention) so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&me)),
            }
        }
    }

    /// Create a scope; all threads spawned inside are joined before it
    /// returns. Panics of child threads surface as `Err` (crossbeam
    /// convention) rather than propagating.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let sc = Scope { inner: s };
                f(&sc)
            })
        }))
    }
}

pub mod utils {
    //! Small utilities.

    /// Pads a value to a cache line (64 bytes on the targets we care
    /// about) to avoid false sharing between adjacent shards.
    #[derive(Debug, Default, Clone, Copy)]
    #[repr(align(64))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wrap a value.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwrap.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_via_scope_handle() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn cache_padded_is_aligned() {
        let p = super::utils::CachePadded::new(7u8);
        assert_eq!(std::mem::align_of_val(&p), 64);
        assert_eq!(*p, 7);
    }
}
