//! Value-generation strategies: the shim's core trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type. Unlike real proptest there
/// is no shrinking tree — `generate` draws a single value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Build recursive structures: `self` generates leaves; `expand` maps a
    /// strategy for subtrees to a strategy for branch nodes. Recursion
    /// depth is bounded by `depth`, choosing leaf or branch at each level.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = expand(current).boxed();
            current = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        current
    }
}

/// Type-erased strategy handle. Clonable (shared), so recursive strategies
/// can reference themselves.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among several strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from type-erased options. Panics when empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() as usize) % self.options.len();
        self.options[i].generate(rng)
    }
}

/// Function-backed strategy (the `any::<T>()` backend).
#[derive(Clone)]
pub struct AnyStrategy<T> {
    f: fn(&mut TestRng) -> T,
}

impl<T> AnyStrategy<T> {
    /// Wrap a generator function.
    pub fn new(f: fn(&mut TestRng) -> T) -> Self {
        AnyStrategy { f }
    }
}

impl<T> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (-8i64..16).generate(&mut r);
            assert!((-8..16).contains(&v));
            let u = (3u32..7).generate(&mut r);
            assert!((3..7).contains(&u));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut r = rng();
        let s = ((0u32..4), (10u32..14)).prop_map(|(a, b)| a + b);
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!((10..18).contains(&v));
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let mut r = rng();
        let s = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let s = (0u8..4)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut r = rng();
        let mut saw_node = false;
        for _ in 0..100 {
            let t = s.generate(&mut r);
            assert!(depth(&t) <= 4);
            if matches!(t, Tree::Node(..)) {
                saw_node = true;
            }
        }
        assert!(saw_node);
    }
}
