//! Offline shim for the `proptest` API subset this workspace uses.
//!
//! The build environment has no registry access, so the real crate cannot
//! be vendored. This shim keeps the same *surface* — `proptest!`,
//! `Strategy`, `BoxedStrategy`, `prop_oneof!`, `Just`, `any`,
//! `prop::collection::{vec, hash_set}`, `ProptestConfig`, `TestCaseError`,
//! `prop_assert*` — but generates cases with a deterministic PRNG and does
//! **not** shrink failures. Failing cases are reported with the assertion
//! message; determinism means a failure reproduces on every run.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::{AnyStrategy, Strategy};
    use crate::test_runner::TestRng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub fn any<T: Arbitrary>() -> impl Strategy<Value = T> {
        AnyStrategy::new(T::arbitrary_value)
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `hash_set`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `HashSet`s of `element` with a size in `size`.
    /// Retries duplicates a bounded number of times, so very narrow element
    /// domains may yield sets smaller than requested.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 16 + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! Everything tests import.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declare property tests. Supported form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0u32..10, mut v in prop::collection::vec(any::<u64>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} for `{}` failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Choose uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    l,
                    r
                ),
            ));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  both: {:?}", format!($($fmt)+), l),
            ));
        }
    }};
}
