//! Test configuration, the deterministic PRNG, and case failure type.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for API compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for API compatibility; failures are not persisted.
    pub failure_persistence: Option<()>,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            failure_persistence: None,
        }
    }
}

/// Why a generated case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion or explicit failure.
    Fail(String),
    /// The case asked to be discarded (accepted for API compatibility).
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Discard the case.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 PRNG. Seeded from the test name so every test
/// gets an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a label (typically the test fn name).
    pub fn deterministic(label: &str) -> Self {
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for b in label.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn config_defaults() {
        let c = ProptestConfig::default();
        assert!(c.cases > 0);
        let c2 = ProptestConfig {
            cases: 24,
            ..ProptestConfig::default()
        };
        assert_eq!(c2.cases, 24);
    }

    #[test]
    fn error_display() {
        assert_eq!(TestCaseError::fail("boom").to_string(), "boom");
    }
}
