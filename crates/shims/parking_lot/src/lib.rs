//! Offline shim for the `parking_lot` API, backed by `std::sync`.
//!
//! The build environment has no registry access, so the real crate cannot
//! be vendored. This shim reproduces the subset of the API this workspace
//! uses: guards are returned directly (no poisoning — a poisoned std lock
//! is recovered transparently, matching parking_lot's panic-neutral
//! semantics closely enough for our single-process use).

use std::fmt;
use std::sync;

/// A mutex that hands out guards without a poison layer.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock without a poison layer.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable with the parking_lot calling convention
/// (`wait(&mut MutexGuard)`).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes the guard; move it out and back in. Sound
        // because `wait` returns a guard for the same mutex and any poison
        // is stripped immediately (no unwinding between read and write).
        unsafe {
            let inner = std::ptr::read(&guard.inner);
            let new = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(&mut guard.inner, new);
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
