//! Offline shim for the `criterion` API subset this workspace uses.
//!
//! The build environment has no registry access, so the real crate cannot
//! be vendored. This shim keeps the bench sources compiling unchanged and
//! actually *measures*: each benchmark is warmed up, auto-scaled to a
//! sensible iteration count, sampled `sample_size` times, and reported as
//! `name ... median x ns/iter (min y, max z)` on stdout. No statistical
//! regression analysis, HTML reports, or plotting.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work; benches here mostly
/// use `std::hint::black_box` directly.
pub use std::hint::black_box;

/// Identifier of one parameterized benchmark (`group/function/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id from a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Measure `routine` repeatedly; the shim picks the iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a per-iteration time to auto-scale.
        let warmup_start = Instant::now();
        black_box(routine());
        let one = warmup_start.elapsed();
        let target = Duration::from_millis(10);
        let iters = if one.is_zero() {
            1000
        } else {
            (target.as_nanos() / one.as_nanos().max(1)).clamp(1, 100_000) as u64
        };
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let mut per_iter: Vec<u128> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() / self.iters_per_sample.max(1) as u128)
            .collect();
        per_iter.sort_unstable();
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = *per_iter.last().unwrap();
        println!(
            "{label:<48} median {median:>10} ns/iter (min {min}, max {max}, {} iters x {} samples)",
            self.iters_per_sample,
            self.samples.len()
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; the shim auto-scales instead.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Run one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// End the group (prints nothing extra in the shim).
    pub fn finish(&mut self) {}
}

/// Top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_count: 10,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Declare the bench entry list (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare `main` running the groups (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-self-test");
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_with_input(BenchmarkId::new("count", 5), &5u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).sum::<u64>()
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
