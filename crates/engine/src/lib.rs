//! # msc-engine — throughput-oriented compilation service
//!
//! `msc-core` answers "how do I convert one MIMD graph"; this crate
//! answers "how do I run many conversions fast, repeatedly, without
//! recomputing what I already know". Three pieces:
//!
//! * [`parallel`] — frontier-parallel meta-state conversion over a sharded
//!   state-set interner, bit-identical to the sequential converter after
//!   canonical BFS renumbering (see the module docs for the scheme);
//! * [`cache`] — a content-addressed compile cache keyed by the hash of
//!   (source, conversion options, codegen options, IR passes), with a
//!   bounded in-memory LRU and an optional on-disk layer;
//! * [`Engine`] — the service wrapper: [`Engine::compile`] for one job,
//!   [`Engine::compile_many`] for a batch over a worker pool with per-job
//!   cooperative timeouts and panic capture (one poisoned job yields one
//!   errored slot, never a sunk batch).
//!
//! ```
//! use msc_engine::{Engine, EngineOptions, Job};
//!
//! let engine = Engine::new(EngineOptions::default());
//! let job = Job::new("demo", "main() { poly int x; x = pe_id(); return(x); }");
//! let out = engine.compile(&job).unwrap();
//! assert!(out.artifact.meta_states > 0);
//! // Same job again: served from the cache without reconverting.
//! let again = engine.compile(&job).unwrap();
//! assert_eq!(again.provenance, msc_engine::Provenance::Memory);
//! ```

pub mod cache;
pub mod flight;
pub mod parallel;

pub use cache::{cache_key, content_key, CacheKey, CacheLayer, CacheStats, CompileCache};
pub use flight::{Flight, Singleflight};
pub use msc_cache::{BreakerState, PeerConfig, PeerStatus, TierStatus};
pub use parallel::{convert_parallel, convert_parallel_deadline, ParallelError};

use msc_codegen::{generate, GenError, GenOptions};
use msc_core::{ConvertError, ConvertOptions, ConvertStats, MetaAutomaton};
use msc_lang::{compile, CompileError, Program};
use msc_simd::SimdProgram;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock cost of each pipeline phase of one fresh compile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Front end (parse + lower + optional IR passes).
    pub compile: Duration,
    /// Meta-state conversion.
    pub convert: Duration,
    /// SIMD code generation.
    pub codegen: Duration,
}

/// Everything one compilation produced. Artifacts restored from the disk
/// cache carry the executable program and summary data but not the
/// in-memory IR ([`automaton`](Self::automaton) /
/// [`compiled`](Self::compiled) are `None` for them).
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The executable SIMD program.
    pub simd: SimdProgram,
    /// Conversion statistics.
    pub stats: ConvertStats,
    /// Meta states in the final automaton.
    pub meta_states: usize,
    /// Per-phase wall-clock timings of the compile that produced this
    /// artifact (not of the cache hit that returned it).
    pub timings: PhaseTimings,
    /// Where `main`'s return value lands, if it returns one.
    pub ret_addr: Option<msc_ir::Addr>,
    /// Text rendering of the automaton (always available, even from disk).
    pub automaton_text: String,
    /// The meta-state automaton (`None` when restored from disk).
    pub automaton: Option<MetaAutomaton>,
    /// Front-end output (`None` when restored from disk).
    pub compiled: Option<Program>,
}

/// One compilation request.
#[derive(Debug, Clone)]
pub struct Job {
    /// Label used in errors and batch reports (usually the file name).
    pub name: String,
    /// MIMDC source text.
    pub source: String,
    /// Conversion options.
    pub convert: ConvertOptions,
    /// Code-generation options.
    pub gen: GenOptions,
    /// Peephole-optimize blocks before conversion.
    pub optimize: bool,
    /// Merge bisimilar MIMD states before conversion.
    pub minimize: bool,
}

impl Job {
    /// A job with default options (base-mode conversion, CSI on).
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        Job {
            name: name.into(),
            source: source.into(),
            convert: ConvertOptions::base(),
            gen: GenOptions::default(),
            optimize: false,
            minimize: false,
        }
    }
}

/// How a compilation was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Compiled from scratch this call.
    Fresh,
    /// Served from the in-memory cache.
    Memory,
    /// Reloaded from the on-disk cache.
    Disk,
    /// Fetched (verified) from a peer daemon's cache.
    Peer,
    /// Coalesced onto a concurrent identical compile (singleflight): this
    /// request waited for the in-flight compilation and shares its
    /// artifact.
    Coalesced,
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Provenance::Fresh => write!(f, "fresh compile"),
            Provenance::Memory => write!(f, "cache hit (memory)"),
            Provenance::Disk => write!(f, "cache hit (disk)"),
            Provenance::Peer => write!(f, "cache hit (peer)"),
            Provenance::Coalesced => write!(f, "coalesced (shared in-flight compile)"),
        }
    }
}

/// A successful [`Engine::compile`].
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The artifact (shared with the cache).
    pub artifact: Arc<Artifact>,
    /// Whether it was fresh or a cache hit.
    pub provenance: Provenance,
}

/// One slot of [`Engine::compile_many_with_metrics`]: the job's outcome
/// plus a per-job metrics bundle (cache provenance, conversion counters,
/// phase timings, failure flags) assembled by the engine regardless of
/// whether a global [`msc_obs`] subscriber is installed.
#[derive(Debug)]
pub struct BatchOutcome {
    /// The job's result — identical to the matching
    /// [`Engine::compile_many`] slot.
    pub result: Result<Compiled, EngineError>,
    /// Metrics for this job alone.
    pub metrics: msc_obs::MetricsSnapshot,
}

/// Failures of [`Engine::compile`] / one slot of [`Engine::compile_many`].
#[derive(Debug)]
pub enum EngineError {
    /// Front end failed.
    Compile(CompileError),
    /// Meta-state conversion failed.
    Convert(ConvertError),
    /// SIMD code generation failed.
    Gen(GenError),
    /// The job's cooperative deadline passed.
    TimedOut {
        /// The job's label.
        job: String,
        /// The configured timeout.
        timeout: Duration,
    },
    /// The job panicked; the panic was contained to this slot.
    Panicked {
        /// The job's label.
        job: String,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// This request coalesced onto a concurrent identical compile, and
    /// that shared compile failed. The message is the leader's rendered
    /// error (the leader's own slot carries the structured one).
    CoalescedFailed {
        /// The job's label.
        job: String,
        /// The shared compile's failure, rendered.
        message: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Compile(e) => write!(f, "compile: {e}"),
            EngineError::Convert(e) => write!(f, "convert: {e}"),
            EngineError::Gen(e) => write!(f, "codegen: {e}"),
            EngineError::TimedOut { job, timeout } => {
                write!(f, "job `{job}` exceeded its {timeout:?} timeout")
            }
            EngineError::Panicked { job, message } => {
                write!(f, "job `{job}` panicked: {message}")
            }
            EngineError::CoalescedFailed { job, message } => {
                write!(
                    f,
                    "job `{job}` coalesced onto a compile that failed: {message}"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CompileError> for EngineError {
    fn from(e: CompileError) -> Self {
        EngineError::Compile(e)
    }
}

impl From<GenError> for EngineError {
    fn from(e: GenError) -> Self {
        EngineError::Gen(e)
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker threads for conversion and batches (0 = all available).
    pub threads: usize,
    /// In-memory cache capacity in artifacts (0 disables it).
    pub cache_capacity: usize,
    /// On-disk cache directory (None disables the disk layer).
    pub cache_dir: Option<PathBuf>,
    /// Per-job cooperative timeout, checked at phase boundaries and
    /// between frontier expansions (None = unbounded).
    pub job_timeout: Option<Duration>,
    /// Sibling daemons (`host:port` each) to consult for artifacts
    /// before compiling locally (empty disables the peer tier).
    pub peers: Vec<String>,
    /// Peer-tier tunables (deadlines, retry, breaker thresholds).
    pub peer: PeerConfig,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            threads: 0,
            cache_capacity: 128,
            cache_dir: None,
            job_timeout: None,
            peers: Vec::new(),
            peer: PeerConfig::default(),
        }
    }
}

/// The compilation service: parallel conversion + cache + batch driver.
pub struct Engine {
    opts: EngineOptions,
    cache: CompileCache,
    jobs_compiled: AtomicU64,
    coalesced: AtomicU64,
    /// Singleflight table: cache key → the in-flight compile to join.
    /// Outcomes cross as `Result<Arc<Artifact>, String>` because the
    /// structured error types are not `Clone`.
    flights: Singleflight<CacheKey, Arc<Artifact>>,
}

impl Engine {
    /// Build an engine from options.
    pub fn new(opts: EngineOptions) -> Self {
        let cache = CompileCache::with_peers(
            opts.cache_capacity,
            opts.cache_dir.clone(),
            opts.peers.clone(),
            opts.peer.clone(),
        );
        Engine {
            opts,
            cache,
            jobs_compiled: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            flights: Singleflight::new(),
        }
    }

    /// Resolved worker-thread count.
    pub fn threads(&self) -> usize {
        if self.opts.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.opts.threads
        }
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Jobs compiled from scratch (cache hits excluded).
    pub fn jobs_compiled(&self) -> u64 {
        self.jobs_compiled.load(Ordering::Relaxed)
    }

    /// Requests that coalesced onto a concurrent identical compile
    /// instead of compiling or hitting the cache themselves.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Serialize a locally cached artifact for `GET /artifact/{key}`.
    /// `None` when neither memory nor disk has it — serving a peer must
    /// never trigger a compile, and never consults our own peers.
    pub fn export_artifact(&self, key: CacheKey) -> Option<String> {
        self.cache.export(key)
    }

    /// Status of every configured cache tier, fastest first (for
    /// `/healthz` and the breaker gauges on `/metrics`).
    pub fn tier_status(&self) -> Vec<TierStatus> {
        self.cache.tier_status()
    }

    /// Compile one job, using every engine thread for the conversion.
    pub fn compile(&self, job: &Job) -> Result<Compiled, EngineError> {
        self.compile_with_threads(job, self.threads())
    }

    /// Compile a batch. Jobs are distributed over a pool of up to
    /// [`threads`](Self::threads) workers (conversion threads are divided
    /// among concurrent jobs); each slot carries its own job's outcome —
    /// an error or panic in one job never affects its neighbours.
    pub fn compile_many(&self, jobs: &[Job]) -> Vec<Result<Compiled, EngineError>> {
        self.compile_many_with_metrics(jobs)
            .into_iter()
            .map(|o| o.result)
            .collect()
    }

    /// [`compile_many`](Self::compile_many), additionally returning a
    /// per-job [`msc_obs::MetricsSnapshot`] alongside each result. A job
    /// that panics is contained to its slot and shows up with an
    /// `engine.job_failed` (and `engine.job_panicked`) count instead of
    /// poisoning the pool; the same counters are emitted to the global
    /// [`msc_obs`] subscriber when one is installed.
    pub fn compile_many_with_metrics(&self, jobs: &[Job]) -> Vec<BatchOutcome> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let pool = self.threads().min(jobs.len()).max(1);
        let per_job_threads = (self.threads() / pool).max(1);
        let next = AtomicUsize::new(0);
        let results: Vec<parking_lot::Mutex<Option<BatchOutcome>>> =
            jobs.iter().map(|_| parking_lot::Mutex::new(None)).collect();
        crossbeam::thread::scope(|s| {
            for _ in 0..pool {
                s.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        return;
                    }
                    let job = &jobs[i];
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        self.compile_with_threads(job, per_job_threads)
                    }))
                    .unwrap_or_else(|payload| {
                        msc_obs::count("engine.job_panicked", 1);
                        Err(EngineError::Panicked {
                            job: job.name.clone(),
                            message: panic_message(payload.as_ref()),
                        })
                    });
                    if result.is_err() {
                        msc_obs::count("engine.job_failed", 1);
                    }
                    let metrics = job_metrics(&result);
                    *results[i].lock() = Some(BatchOutcome { result, metrics });
                });
            }
        })
        .expect("batch workers contain their panics");
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("every job slot filled"))
            .collect()
    }

    fn compile_with_threads(&self, job: &Job, threads: usize) -> Result<Compiled, EngineError> {
        // Deliberate panic site for the batch isolation tests: no natural
        // input panics the pipeline, so the tests opt in by job name.
        #[cfg(test)]
        if job.name == "__panic_for_test__" {
            panic!("injected test panic");
        }
        let key = job_key(job);
        let as_hit = |(artifact, layer): (Arc<Artifact>, CacheLayer)| Compiled {
            artifact,
            provenance: match layer {
                CacheLayer::Memory => Provenance::Memory,
                CacheLayer::Disk => Provenance::Disk,
                CacheLayer::Peer => Provenance::Peer,
            },
        };
        if let Some(hit) = self.cache.probe(key, &job.gen.costs) {
            return Ok(as_hit(hit));
        }
        // Singleflight: elect a leader, re-probing the cache under the
        // flight-table lock. A leader inserts its artifact into the cache
        // *before* its guard retires the table entry — so every concurrent
        // identical request either joins the flight or sees the cache hit;
        // exactly one request per key ever compiles.
        let leader = match self
            .flights
            .begin(key, || self.cache.probe(key, &job.gen.costs))
        {
            Flight::Hit(hit) => return Ok(as_hit(hit)),
            Flight::Join(follower) => {
                // Follower: wait for the leader's outcome and share it.
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                msc_obs::count("engine.coalesced", 1);
                return match follower.wait() {
                    Ok(artifact) => Ok(Compiled {
                        artifact,
                        provenance: Provenance::Coalesced,
                    }),
                    Err(message) => Err(EngineError::CoalescedFailed {
                        job: job.name.clone(),
                        message,
                    }),
                };
            }
            Flight::Lead(leader) => leader,
        };
        // Leader: first try the fleet. The fetch runs outside the
        // flight-table lock but inside the flight, so N coalesced cold
        // requests cost at most one peer round-trip; a verified peer hit
        // is promoted into the local tiers and is *not* a miss.
        if let Some(artifact) = self.cache.fetch_remote(key, &job.gen.costs) {
            leader.publish(Ok(Arc::clone(&artifact)));
            drop(leader);
            return Ok(Compiled {
                artifact,
                provenance: Provenance::Peer,
            });
        }
        // No peer had it: this request is the one that compiles (and the
        // one that counts the miss for the whole coalesced group).
        self.cache.note_miss();
        let result = self.compile_fresh(job, key, threads);
        leader.publish(match &result {
            Ok(c) => Ok(Arc::clone(&c.artifact)),
            Err(e) => Err(e.to_string()),
        });
        drop(leader);
        result
    }

    /// The actual pipeline run for a cache-missed job. Inserts the
    /// artifact into the cache on success.
    fn compile_fresh(
        &self,
        job: &Job,
        key: CacheKey,
        threads: usize,
    ) -> Result<Compiled, EngineError> {
        // Deliberate slow/panic sites for the singleflight tests:
        // overlapping identical jobs need a compile that reliably outlives
        // the followers' arrival.
        #[cfg(test)]
        if job.name.starts_with("__slow_for_test__") {
            std::thread::sleep(Duration::from_millis(150));
        }
        #[cfg(test)]
        if job.name.starts_with("__panic_in_flight_for_test__") {
            std::thread::sleep(Duration::from_millis(150));
            panic!("injected in-flight test panic");
        }
        let deadline = self.opts.job_timeout.map(|t| Instant::now() + t);
        let timed_out = || EngineError::TimedOut {
            job: job.name.clone(),
            timeout: self.opts.job_timeout.unwrap_or_default(),
        };

        let t0 = Instant::now();
        let mut compiled = compile(&job.source)?;
        if job.optimize {
            compiled.graph.peephole();
            compiled.graph.normalize();
        }
        if job.minimize {
            compiled.graph.minimize();
            compiled.graph.normalize();
        }
        let t1 = Instant::now();
        if deadline.is_some_and(|d| t1 > d) {
            return Err(timed_out());
        }

        let (automaton, stats) =
            convert_parallel_deadline(&compiled.graph, &job.convert, threads, deadline).map_err(
                |e| match e {
                    ParallelError::Convert(e) => EngineError::Convert(e),
                    ParallelError::TimedOut => timed_out(),
                },
            )?;
        let t2 = Instant::now();

        let simd = generate(
            &automaton,
            compiled.layout.poly_words,
            compiled.layout.mono_words,
            &job.gen,
        )?;
        let t3 = Instant::now();
        if deadline.is_some_and(|d| t3 > d) {
            return Err(timed_out());
        }

        let artifact = Arc::new(Artifact {
            simd,
            stats,
            meta_states: automaton.len(),
            timings: PhaseTimings {
                compile: t1 - t0,
                convert: t2 - t1,
                codegen: t3 - t2,
            },
            ret_addr: compiled.layout.main_ret,
            automaton_text: automaton.text(),
            automaton: Some(automaton),
            compiled: Some(compiled),
        });
        self.jobs_compiled.fetch_add(1, Ordering::Relaxed);
        self.cache.insert(key, Arc::clone(&artifact));
        Ok(Compiled {
            artifact,
            provenance: Provenance::Fresh,
        })
    }
}

/// The content-addressed cache key a job compiles under — the same key
/// [`Engine::compile`] uses, exposed so callers (the serve layer, peer
/// fetches) can name the artifact without compiling anything.
pub fn job_key(job: &Job) -> CacheKey {
    cache_key(
        &job.source,
        &job.convert,
        &job.gen,
        job.optimize,
        job.minimize,
    )
}

/// Assemble a job's private metrics bundle from data the engine already
/// holds: cache provenance, the artifact's conversion counters, and the
/// phase timings of the compile that produced it. Failures are flagged
/// with `engine.job_failed` / `engine.job_panicked` counts.
fn job_metrics(result: &Result<Compiled, EngineError>) -> msc_obs::MetricsSnapshot {
    use msc_obs::Event;
    let reg = msc_obs::Registry::new();
    match result {
        Ok(c) => {
            let provenance = match c.provenance {
                Provenance::Fresh => "cache.miss",
                Provenance::Memory => "cache.hit",
                Provenance::Disk => "cache.disk_hit",
                Provenance::Peer => "cache.peer_hit",
                Provenance::Coalesced => "engine.coalesced",
            };
            reg.record(&Event::Count {
                name: provenance,
                delta: 1,
            });
            let s = &c.artifact.stats;
            for (name, v) in [
                ("convert.restarts", s.restarts as u64),
                ("convert.splits", s.splits as u64),
                ("convert.subsumed", s.subsumed as u64),
                ("convert.successor_sets", s.successor_sets_enumerated),
            ] {
                reg.record(&Event::Count { name, delta: v });
            }
            if c.provenance == Provenance::Fresh {
                let t = &c.artifact.timings;
                for (name, d) in [
                    ("engine.phase.compile", t.compile),
                    ("engine.phase.convert", t.convert),
                    ("engine.phase.codegen", t.codegen),
                ] {
                    reg.record(&Event::Span {
                        name,
                        nanos: d.as_nanos() as u64,
                    });
                }
            }
        }
        Err(e) => {
            reg.record(&Event::Count {
                name: "engine.job_failed",
                delta: 1,
            });
            if matches!(e, EngineError::Panicked { .. }) {
                reg.record(&Event::Count {
                    name: "engine.job_panicked",
                    delta: 1,
                });
            }
        }
    }
    reg.snapshot()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = "main() { poly int x; x = pe_id() * 2 + 1; return(x); }";

    #[test]
    fn compile_then_hit() {
        let engine = Engine::new(EngineOptions::default());
        let job = Job::new("p", PROG);
        let first = engine.compile(&job).unwrap();
        assert_eq!(first.provenance, Provenance::Fresh);
        assert!(first.artifact.automaton.is_some());
        let second = engine.compile(&job).unwrap();
        assert_eq!(second.provenance, Provenance::Memory);
        assert!(
            Arc::ptr_eq(&first.artifact, &second.artifact),
            "hit shares the artifact"
        );
        assert_eq!(engine.jobs_compiled(), 1, "the hit did not recompile");
        let s = engine.cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn option_changes_miss() {
        let engine = Engine::new(EngineOptions::default());
        let job = Job::new("p", PROG);
        engine.compile(&job).unwrap();
        let mut job2 = job.clone();
        job2.convert = ConvertOptions::compressed();
        let out = engine.compile(&job2).unwrap();
        assert_eq!(out.provenance, Provenance::Fresh);
        assert_eq!(engine.jobs_compiled(), 2);
    }

    #[test]
    fn batch_isolates_poisoned_jobs() {
        let engine = Engine::new(EngineOptions {
            threads: 4,
            ..EngineOptions::default()
        });
        let jobs = vec![
            Job::new("good-1", PROG),
            Job::new("bad-syntax", "main() { y = 1; }"),
            Job::new("good-2", "main() { poly int v; v = 3; return(v); }"),
            Job::new(
                "bad-explosion",
                "main() { poly int x; if (pe_id()) { x = 1; } else { x = 2; } return(x); }",
            )
            .tap(|j| j.convert.max_meta_states = 1),
        ];
        let results = engine.compile_many(&jobs);
        assert_eq!(results.len(), 4);
        assert!(results[0].is_ok(), "{:?}", results[0].as_ref().err());
        assert!(matches!(results[1], Err(EngineError::Compile(_))));
        assert!(results[2].is_ok());
        assert!(matches!(results[3], Err(EngineError::Convert(_))));
    }

    impl Job {
        fn tap(mut self, f: impl FnOnce(&mut Job)) -> Job {
            f(&mut self);
            self
        }
    }

    #[test]
    fn batch_shares_the_cache() {
        let engine = Engine::new(EngineOptions {
            threads: 4,
            ..EngineOptions::default()
        });
        let jobs: Vec<Job> = (0..6).map(|_| Job::new("same", PROG)).collect();
        let results = engine.compile_many(&jobs);
        assert!(results.iter().all(|r| r.is_ok()));
        // Identical jobs race on the first compile; at least the repeats
        // after the first insertion must hit.
        assert!(engine.cache_stats().hits >= 1);
        let a0 = results[0].as_ref().unwrap().artifact.automaton_text.clone();
        for r in &results {
            assert_eq!(r.as_ref().unwrap().artifact.automaton_text, a0);
        }
    }

    #[test]
    fn batch_panic_isolated_and_emits_job_failed_metric() {
        let registry = Arc::new(msc_obs::Registry::new());
        let outcomes = {
            let _guard = msc_obs::install(registry.clone());
            let engine = Engine::new(EngineOptions {
                threads: 4,
                ..EngineOptions::default()
            });
            let jobs = vec![
                Job::new("good-1", PROG),
                Job::new("__panic_for_test__", PROG),
                Job::new("good-2", "main() { poly int v; v = 3; return(v); }"),
            ];
            engine.compile_many_with_metrics(&jobs)
        };
        // The panicking job is contained to its slot...
        assert!(outcomes[0].result.is_ok());
        assert!(
            matches!(&outcomes[1].result, Err(EngineError::Panicked { job, .. })
                if job == "__panic_for_test__")
        );
        assert!(outcomes[2].result.is_ok());
        // ...and flagged in its own metrics bundle, not its neighbours'.
        assert_eq!(outcomes[1].metrics.counter("engine.job_failed"), 1);
        assert_eq!(outcomes[1].metrics.counter("engine.job_panicked"), 1);
        assert_eq!(outcomes[0].metrics.counter("engine.job_failed"), 0);
        assert_eq!(
            outcomes[0].metrics.counter("cache.miss"),
            1,
            "fresh compile"
        );
        assert!(outcomes[0].metrics.span("engine.phase.convert").is_some());
        // The global subscriber saw the failure too (>=: other tests in
        // this process may run failing batches concurrently).
        let snap = registry.snapshot();
        assert!(snap.counter("engine.job_failed") >= 1);
        assert!(snap.counter("engine.job_panicked") >= 1);
    }

    #[test]
    fn zero_timeout_times_out() {
        let engine = Engine::new(EngineOptions {
            job_timeout: Some(Duration::ZERO),
            ..EngineOptions::default()
        });
        let err = engine.compile(&Job::new("t", PROG)).unwrap_err();
        assert!(matches!(err, EngineError::TimedOut { .. }), "{err:?}");
    }

    /// Start a leader compiling `job` (whose `__slow_for_test__` /
    /// `__panic_in_flight_for_test__` name keeps it in flight for
    /// ~150ms), give it `lead_ms` of head start, then run `followers`
    /// concurrent identical requests. Returns (leader result, follower
    /// results); the head start guarantees the followers arrive while
    /// the leader's in-flight entry is registered.
    type LeaderOutcome = std::thread::Result<Result<Compiled, EngineError>>;

    fn race_identical(
        engine: &Engine,
        job: &Job,
        followers: usize,
    ) -> (LeaderOutcome, Vec<Result<Compiled, EngineError>>) {
        std::thread::scope(|s| {
            let leader = s.spawn(|| catch_unwind(AssertUnwindSafe(|| engine.compile(job))));
            std::thread::sleep(Duration::from_millis(40));
            let handles: Vec<_> = (0..followers)
                .map(|_| s.spawn(|| engine.compile(job)))
                .collect();
            let follower_results = handles.into_iter().map(|h| h.join().unwrap()).collect();
            (leader.join().unwrap(), follower_results)
        })
    }

    #[test]
    fn concurrent_identical_jobs_compile_exactly_once() {
        let registry = Arc::new(msc_obs::Registry::new());
        let _guard = msc_obs::install(registry.clone());
        let engine = Engine::new(EngineOptions {
            threads: 2,
            ..EngineOptions::default()
        });
        let job = Job::new("__slow_for_test__ok", PROG);
        let (leader, followers) = race_identical(&engine, &job, 3);
        let leader = leader.expect("slow leader does not panic").unwrap();
        assert_eq!(leader.provenance, Provenance::Fresh);
        for f in &followers {
            let f = f.as_ref().unwrap();
            assert_eq!(f.provenance, Provenance::Coalesced);
            assert!(
                Arc::ptr_eq(&leader.artifact, &f.artifact),
                "coalesced requests share the leader's artifact"
            );
        }
        assert_eq!(engine.jobs_compiled(), 1, "the burst compiled exactly once");
        assert_eq!(engine.coalesced(), 3);
        let s = engine.cache_stats();
        assert_eq!(
            (s.misses, s.hits, s.insertions),
            (1, 0, 1),
            "one miss for the whole group: {s:?}"
        );
        assert_eq!(registry.snapshot().counter("engine.coalesced"), 3);
        // After the flight lands, the same job is an ordinary memory hit.
        assert_eq!(engine.compile(&job).unwrap().provenance, Provenance::Memory);
    }

    #[test]
    fn coalesced_requests_share_the_leaders_failure() {
        let engine = Engine::new(EngineOptions::default());
        // Slow so the follower reliably coalesces; bad source so the
        // leader's compile fails after the flight is joined.
        let job = Job::new("__slow_for_test__bad", "main() { y = 1; }");
        let (leader, followers) = race_identical(&engine, &job, 1);
        let leader_err = leader.expect("slow leader does not panic").unwrap_err();
        assert!(
            matches!(leader_err, EngineError::Compile(_)),
            "{leader_err:?}"
        );
        match &followers[0] {
            Err(EngineError::CoalescedFailed { job, message }) => {
                assert_eq!(job, "__slow_for_test__bad");
                assert!(!message.is_empty());
            }
            other => panic!("expected CoalescedFailed, got {other:?}"),
        }
        // A failed flight caches nothing and leaves nothing in flight:
        // the next identical request compiles (and fails) on its own.
        assert_eq!(engine.cache_stats().insertions, 0);
        assert!(engine.flights.is_empty());
    }

    #[test]
    fn panicking_leader_releases_its_followers() {
        let engine = Engine::new(EngineOptions::default());
        let job = Job::new("__panic_in_flight_for_test__", PROG);
        let (leader, followers) = race_identical(&engine, &job, 1);
        assert!(leader.is_err(), "leader panics mid-flight");
        match &followers[0] {
            Err(EngineError::CoalescedFailed { message, .. }) => {
                assert!(
                    message.contains("panicked"),
                    "guard publishes the panic: {message}"
                );
            }
            other => panic!("expected CoalescedFailed, got {other:?}"),
        }
        assert!(
            engine.flights.is_empty(),
            "the leader's guard cleans up even on panic"
        );
        // The engine is still fully usable afterwards.
        let ok = engine.compile(&Job::new("after", PROG)).unwrap();
        assert_eq!(ok.provenance, Provenance::Fresh);
    }

    /// A minimal fleet sibling: serves `GET /artifact/{key}` out of a
    /// warm donor engine over real TCP (404 on anything it lacks),
    /// counting requests. The thread leaks with the test process.
    fn artifact_server(donor: Arc<Engine>, requests: Arc<AtomicU64>) -> String {
        use std::io::{Read as _, Write as _};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            while let Ok((mut stream, _)) = listener.accept() {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 1024];
                while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
                    match stream.read(&mut chunk) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                }
                requests.fetch_add(1, Ordering::Relaxed);
                let path = std::str::from_utf8(&buf)
                    .ok()
                    .and_then(|t| t.split_whitespace().nth(1))
                    .unwrap_or("");
                let body = path
                    .strip_prefix("/artifact/")
                    .and_then(CacheKey::from_hex)
                    .and_then(|key| {
                        donor
                            .export_artifact(key)
                            .map(|text| msc_cache::wire::envelope(key, &text).render())
                    });
                let resp = match body {
                    Some(b) => format!(
                        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{b}",
                        b.len()
                    ),
                    None => {
                        "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
                            .to_string()
                    }
                };
                let _ = stream.write_all(resp.as_bytes());
            }
        });
        addr
    }

    #[test]
    fn peer_hit_avoids_local_compile_and_promotes() {
        let donor = Arc::new(Engine::new(EngineOptions::default()));
        let job = Job::new("fleet", PROG);
        let compiled = donor.compile(&job).unwrap();
        let requests = Arc::new(AtomicU64::new(0));
        let addr = artifact_server(Arc::clone(&donor), Arc::clone(&requests));

        let node_b = Engine::new(EngineOptions {
            peers: vec![addr],
            ..EngineOptions::default()
        });
        let got = node_b.compile(&job).unwrap();
        assert_eq!(got.provenance, Provenance::Peer);
        assert_eq!(node_b.jobs_compiled(), 0, "node B never compiled");
        assert_eq!(
            got.artifact.automaton_text,
            compiled.artifact.automaton_text
        );
        assert_eq!(got.artifact.meta_states, compiled.artifact.meta_states);
        assert!(
            got.artifact.automaton.is_none(),
            "peer artifacts are partial, like disk reloads"
        );
        let s = node_b.cache_stats();
        assert_eq!((s.peer_hits, s.misses), (1, 0), "{s:?}");
        // The fetched artifact was promoted: the repeat is a memory hit,
        // no second round-trip.
        assert_eq!(node_b.compile(&job).unwrap().provenance, Provenance::Memory);
        assert_eq!(requests.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cold_burst_on_one_node_costs_one_peer_round_trip() {
        let donor = Arc::new(Engine::new(EngineOptions::default()));
        let job = Job::new("burst", PROG);
        donor.compile(&job).unwrap();
        let requests = Arc::new(AtomicU64::new(0));
        let addr = artifact_server(Arc::clone(&donor), Arc::clone(&requests));

        let node_b = Engine::new(EngineOptions {
            peers: vec![addr],
            threads: 2,
            ..EngineOptions::default()
        });
        let results: Vec<Result<Compiled, EngineError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(|| node_b.compile(&job))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &results {
            assert!(r.is_ok(), "{:?}", r.as_ref().err());
        }
        assert_eq!(node_b.jobs_compiled(), 0, "nothing compiled locally");
        assert_eq!(
            requests.load(Ordering::Relaxed),
            1,
            "singleflight collapses the cold burst onto one peer fetch"
        );
        let s = node_b.cache_stats();
        assert_eq!((s.peer_hits, s.misses), (1, 0), "{s:?}");
    }

    #[test]
    fn dead_peers_degrade_to_a_bounded_local_compile() {
        // A port that refuses connections: bind, note the addr, drop.
        let refused = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let peer = PeerConfig {
            connect_timeout: Duration::from_millis(100),
            read_timeout: Duration::from_millis(200),
            total_deadline: Duration::from_millis(600),
            backoff: Duration::from_millis(1),
            ..PeerConfig::default()
        };
        let engine = Engine::new(EngineOptions {
            peers: vec![refused.clone(), refused],
            peer,
            ..EngineOptions::default()
        });
        let start = Instant::now();
        let out = engine.compile(&Job::new("deadfleet", PROG)).unwrap();
        assert_eq!(out.provenance, Provenance::Fresh, "compiled locally");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "a dead fleet costs at most one peer deadline: {:?}",
            start.elapsed()
        );
        let s = engine.cache_stats();
        assert_eq!((s.peer_hits, s.misses), (0, 1), "{s:?}");
        // The dead peers' breakers show up in tier status.
        let status = engine.tier_status();
        assert!(status.iter().any(|t| matches!(t, TierStatus::Peers { .. })));
    }
}
