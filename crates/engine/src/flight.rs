//! Generic singleflight: coalesce concurrent identical computations.
//!
//! A [`Singleflight`] table maps a key to the one in-flight computation
//! for that key. The first arrival becomes the *leader* and computes;
//! concurrent arrivals with the same key become *followers* and share the
//! leader's outcome instead of recomputing. Extracted from the engine's
//! compile path so other content-addressed services (the regex front-end's
//! pattern compiler) can reuse the exact same discipline.
//!
//! Correctness hinges on one ordering rule, enforced by running the
//! caller's cache probe **under the table lock**: a leader must insert
//! its result into the caller's cache *before* its [`Leader`] guard drops
//! (which removes the table entry). Every concurrent identical request
//! then either sees the in-flight entry and joins it, or probes the cache
//! after the removal and hits — exactly one computation per key, no gap.
//!
//! Outcomes cross threads as `Result<V, String>` because callers' error
//! types are generally not `Clone`. A leader that unwinds without
//! publishing fails its followers with a "panicked" message rather than
//! leaving them blocked forever.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

/// Shared slot the leader publishes into and followers wait on.
struct Slot<V> {
    cell: Mutex<Option<Result<V, String>>>,
    done: Condvar,
}

impl<V: Clone> Slot<V> {
    fn new() -> Self {
        Slot {
            cell: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// First publish wins; later calls are no-ops.
    fn publish(&self, result: Result<V, String>) {
        let mut cell = self.cell.lock().unwrap_or_else(|p| p.into_inner());
        if cell.is_none() {
            *cell = Some(result);
        }
        self.done.notify_all();
    }

    fn wait(&self) -> Result<V, String> {
        let mut cell = self.cell.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = cell.as_ref() {
                return result.clone();
            }
            cell = self.done.wait(cell).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// How [`Singleflight::begin`] classified this request.
pub enum Flight<'a, K: Eq + Hash + Clone, V: Clone, P> {
    /// The probe hit (cache already has the value) — nothing in flight.
    Hit(P),
    /// Another request is computing this key; [`Follower::wait`] for it.
    Join(Follower<V>),
    /// This request computes; publish through the guard.
    Lead(Leader<'a, K, V>),
}

/// A follower's handle on the leader's outcome.
pub struct Follower<V> {
    slot: Arc<Slot<V>>,
}

impl<V: Clone> Follower<V> {
    /// Block until the leader publishes (or unwinds) and share the result.
    pub fn wait(self) -> Result<V, String> {
        self.slot.wait()
    }
}

/// The leader's guard. Dropping it removes the in-flight entry and — if
/// nothing was published, i.e. the leader unwound — fails the followers
/// with a "panicked" error instead of leaving them blocked.
pub struct Leader<'a, K: Eq + Hash + Clone, V: Clone> {
    table: &'a Mutex<HashMap<K, Arc<Slot<V>>>>,
    key: K,
    slot: Arc<Slot<V>>,
}

impl<K: Eq + Hash + Clone, V: Clone> Leader<'_, K, V> {
    /// Publish the outcome to every follower. Idempotent; the guard must
    /// still be dropped afterwards to retire the table entry.
    pub fn publish(&self, result: Result<V, String>) {
        self.slot.publish(result);
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for Leader<'_, K, V> {
    fn drop(&mut self) {
        self.table
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&self.key);
        // No-op when the leader already published; otherwise (panic
        // unwind) fail the followers cleanly.
        self.slot
            .publish(Err("shared in-flight computation panicked".to_string()));
    }
}

/// The coalescing table. `K` is the content-addressed key, `V` the shared
/// outcome (typically an `Arc`).
pub struct Singleflight<K: Eq + Hash + Clone, V: Clone> {
    table: Mutex<HashMap<K, Arc<Slot<V>>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for Singleflight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Singleflight<K, V> {
    /// An empty table.
    pub fn new() -> Self {
        Singleflight {
            table: Mutex::new(HashMap::new()),
        }
    }

    /// Classify one request. `probe` is the caller's cache lookup; it
    /// runs **under the table lock** (keep it cheap), which closes the
    /// insert-into-cache → retire-entry race described in the module docs.
    pub fn begin<P>(&self, key: K, mut probe: impl FnMut() -> Option<P>) -> Flight<'_, K, V, P> {
        let mut table = self.table.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(hit) = probe() {
            return Flight::Hit(hit);
        }
        match table.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => Flight::Join(Follower {
                slot: Arc::clone(e.get()),
            }),
            std::collections::hash_map::Entry::Vacant(e) => {
                let slot = Arc::new(Slot::new());
                e.insert(Arc::clone(&slot));
                Flight::Lead(Leader {
                    table: &self.table,
                    key,
                    slot,
                })
            }
        }
    }

    /// True when nothing is in flight (used by tests to assert cleanup).
    pub fn is_empty(&self) -> bool {
        self.table
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn hit_short_circuits() {
        let sf: Singleflight<u32, Arc<String>> = Singleflight::new();
        match sf.begin(1, || Some("cached")) {
            Flight::Hit(v) => assert_eq!(v, "cached"),
            _ => panic!("probe hit must win"),
        }
        assert!(sf.is_empty());
    }

    #[test]
    fn followers_share_one_computation() {
        let sf: Singleflight<u32, Arc<String>> = Singleflight::new();
        let computed = AtomicUsize::new(0);
        // The leader holds the flight open until every thread has called
        // begin(), so all four deterministically share one computation.
        let arrived = AtomicUsize::new(0);
        let results: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let flight = sf.begin(7, || None::<Arc<String>>);
                        arrived.fetch_add(1, Ordering::SeqCst);
                        match flight {
                            Flight::Hit(v) => v.as_ref().clone(),
                            Flight::Join(f) => f.wait().unwrap().as_ref().clone(),
                            Flight::Lead(leader) => {
                                while arrived.load(Ordering::SeqCst) < 4 {
                                    std::thread::yield_now();
                                }
                                computed.fetch_add(1, Ordering::Relaxed);
                                let v = Arc::new("value".to_string());
                                leader.publish(Ok(Arc::clone(&v)));
                                v.as_ref().clone()
                            }
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(computed.load(Ordering::Relaxed), 1, "exactly one leader");
        assert!(results.iter().all(|r| r == "value"));
        assert!(sf.is_empty(), "entry retired after the flight");
    }

    #[test]
    fn unwinding_leader_fails_followers_with_panic_message() {
        let sf: Arc<Singleflight<u32, Arc<String>>> = Arc::new(Singleflight::new());
        let (leading_tx, leading_rx) = std::sync::mpsc::channel();
        let (joined_tx, joined_rx) = std::sync::mpsc::channel::<()>();
        std::thread::scope(|s| {
            let sf2 = Arc::clone(&sf);
            s.spawn(move || {
                let flight = sf2.begin(9, || None::<Arc<String>>);
                assert!(matches!(flight, Flight::Lead(_)));
                leading_tx.send(()).unwrap();
                // Hold the flight open until the follower has joined,
                // then drop the leader without publishing — the unwind
                // path.
                let _ = joined_rx.recv_timeout(Duration::from_secs(5));
            });
            leading_rx.recv().unwrap();
            match sf.begin(9, || None::<Arc<String>>) {
                Flight::Join(f) => {
                    joined_tx.send(()).unwrap();
                    let err = f.wait().unwrap_err();
                    assert!(err.contains("panicked"), "{err}");
                }
                _ => panic!("second arrival must join the flight"),
            }
        });
        assert!(sf.is_empty());
    }

    #[test]
    fn probe_runs_under_lock_after_retirement() {
        // After a flight retires, the next begin() probes and can hit.
        let sf: Singleflight<u32, u64> = Singleflight::new();
        match sf.begin(3, || None::<u64>) {
            Flight::Lead(leader) => leader.publish(Ok(42)),
            _ => panic!("first arrival leads"),
        }
        match sf.begin(3, || Some(42u64)) {
            Flight::Hit(v) => assert_eq!(v, 42),
            _ => panic!("entry was retired, probe hits"),
        };
    }
}
