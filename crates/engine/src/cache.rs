//! Content-addressed compile cache.
//!
//! A cache key is a 128-bit SipHash-2-4 fingerprint of everything that
//! determines the compiled output: the MIMDC source text, the conversion
//! options, the code-generation options, and the optional IR passes. The
//! two output words come from SipHash's genuinely independent 128-bit
//! finalization (not two seeded runs of a weak mixer), so accidental
//! collision of distinct inputs is vanishingly unlikely for a cache
//! (this is an integrity shortcut, not a security boundary — the key is
//! fixed, not secret).
//!
//! The in-memory layer is a bounded LRU of [`Artifact`]s behind a
//! [`parking_lot::Mutex`]. The optional on-disk layer persists one text
//! file per key — the SIMD program via the reloadable assembly format
//! (`msc_simd::asm`), plus conversion stats and the automaton rendering —
//! so repeated `mscc` invocations reuse artifacts across processes. Disk
//! artifacts reload the executable program but not the full automaton or
//! front-end IR, so [`Artifact::automaton`] / [`Artifact::compiled`] are
//! `None` for them.

use crate::{Artifact, PhaseTimings};
use msc_codegen::GenOptions;
use msc_core::{ConvertOptions, ConvertStats};
use msc_ir::util::FxHashMap;
use msc_ir::{Addr, CostModel};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A 128-bit content fingerprint (the two words of a SipHash-2-4-128).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    hi: u64,
    lo: u64,
}

impl CacheKey {
    /// Hex rendering, used as the on-disk file stem.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Fingerprint one compilation request. Options are folded in through
/// their `Debug` rendering: every field participates, and adding a field
/// to either options struct automatically invalidates old keys. The
/// `0xfe` separators cannot occur inside the UTF-8 fields, so the
/// encoding is unambiguous.
pub fn cache_key(
    source: &str,
    convert: &ConvertOptions,
    gen: &GenOptions,
    optimize: bool,
    minimize: bool,
) -> CacheKey {
    let mut msg = Vec::with_capacity(source.len() + 256);
    msg.extend_from_slice(source.as_bytes());
    msg.push(0xfe);
    msg.extend_from_slice(format!("{convert:?}").as_bytes());
    msg.push(0xfe);
    msg.extend_from_slice(format!("{gen:?}").as_bytes());
    msg.push(optimize as u8);
    msg.push(minimize as u8);
    let (hi, lo) = siphash128(0x9e37_79b9_7f4a_7c15, 0xd1b5_4a32_d192_ed03, &msg);
    CacheKey { hi, lo }
}

/// Fingerprint arbitrary content for a non-MIMDC domain (e.g. the regex
/// front-end keys compiled patterns by `content_key("regex", ...)`). The
/// domain tag and a length prefix per part make the encoding unambiguous
/// and keep every domain's keyspace disjoint from [`cache_key`]'s —
/// its `0xfe`-separated encoding never starts with an `0xff` byte, and
/// this one always does.
pub fn content_key(domain: &str, parts: &[&[u8]]) -> CacheKey {
    let mut msg = Vec::with_capacity(64 + parts.iter().map(|p| p.len() + 8).sum::<usize>());
    msg.push(0xff);
    msg.extend_from_slice(&(domain.len() as u64).to_le_bytes());
    msg.extend_from_slice(domain.as_bytes());
    for part in parts {
        msg.extend_from_slice(&(part.len() as u64).to_le_bytes());
        msg.extend_from_slice(part);
    }
    let (hi, lo) = siphash128(0x9e37_79b9_7f4a_7c15, 0xd1b5_4a32_d192_ed03, &msg);
    CacheKey { hi, lo }
}

/// SipHash-2-4 with 128-bit output (reference construction from the
/// SipHash paper / `siphash.c`). Vendored because the cache needs a
/// fingerprint whose two words mix independently — deriving two 64-bit
/// lanes by reseeding a non-seed-robust hash (Fx) leaves them correlated
/// — and the container has no 128-bit hash crate to lean on.
fn siphash128(k0: u64, k1: u64, data: &[u8]) -> (u64, u64) {
    #[inline]
    fn round(v: &mut [u64; 4]) {
        v[0] = v[0].wrapping_add(v[1]);
        v[1] = v[1].rotate_left(13);
        v[1] ^= v[0];
        v[0] = v[0].rotate_left(32);
        v[2] = v[2].wrapping_add(v[3]);
        v[3] = v[3].rotate_left(16);
        v[3] ^= v[2];
        v[0] = v[0].wrapping_add(v[3]);
        v[3] = v[3].rotate_left(21);
        v[3] ^= v[0];
        v[2] = v[2].wrapping_add(v[1]);
        v[1] = v[1].rotate_left(17);
        v[1] ^= v[2];
        v[2] = v[2].rotate_left(32);
    }
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d ^ 0xee, // 128-bit output variant marker
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("exact 8-byte chunk"));
        v[3] ^= m;
        round(&mut v);
        round(&mut v);
        v[0] ^= m;
    }
    let rem = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rem.len()].copy_from_slice(rem);
    last[7] = data.len() as u8;
    let m = u64::from_le_bytes(last);
    v[3] ^= m;
    round(&mut v);
    round(&mut v);
    v[0] ^= m;
    v[2] ^= 0xee;
    for _ in 0..4 {
        round(&mut v);
    }
    let hi = v[0] ^ v[1] ^ v[2] ^ v[3];
    v[1] ^= 0xdd;
    for _ in 0..4 {
        round(&mut v);
    }
    let lo = v[0] ^ v[1] ^ v[2] ^ v[3];
    (hi, lo)
}

/// Where a cache hit came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLayer {
    /// In-memory LRU.
    Memory,
    /// On-disk artifact, reloaded (and promoted into memory).
    Disk,
}

/// Counter snapshot for `--stats` output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// In-memory hits.
    pub hits: u64,
    /// Disk hits (artifact reloaded and promoted to memory).
    pub disk_hits: u64,
    /// Lookups that found nothing anywhere.
    pub misses: u64,
    /// Artifacts inserted after a fresh compile.
    pub insertions: u64,
    /// LRU evictions from the memory layer.
    pub evictions: u64,
}

struct Entry {
    artifact: Arc<Artifact>,
    last_used: u64,
}

struct Inner {
    map: FxHashMap<CacheKey, Entry>,
    tick: u64,
}

/// Bounded, thread-safe artifact cache with an optional disk layer.
pub struct CompileCache {
    capacity: usize,
    disk_dir: Option<PathBuf>,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl CompileCache {
    /// A cache holding at most `capacity` artifacts in memory (0 disables
    /// the memory layer), persisting to `disk_dir` when given (the
    /// directory is created on first use; I/O failures degrade to misses).
    pub fn new(capacity: usize, disk_dir: Option<PathBuf>) -> Self {
        CompileCache {
            capacity,
            disk_dir,
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up `key`, consulting memory then disk. `costs` is needed to
    /// reparse a disk artifact's assembly (the key already pins it).
    pub fn lookup(&self, key: CacheKey, costs: &CostModel) -> Option<(Arc<Artifact>, CacheLayer)> {
        let hit = self.probe(key, costs);
        if hit.is_none() {
            self.note_miss();
        }
        hit
    }

    /// [`lookup`](Self::lookup) without recording a miss (hits are still
    /// counted). The engine's singleflight layer probes first and only
    /// charges a miss to the one request that actually compiles, so a
    /// burst of N identical requests reads as 1 miss + N−1 hits/coalesced
    /// rather than N misses.
    pub fn probe(&self, key: CacheKey, costs: &CostModel) -> Option<(Arc<Artifact>, CacheLayer)> {
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(e) = inner.map.get_mut(&key) {
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                msc_obs::count("cache.hit", 1);
                return Some((Arc::clone(&e.artifact), CacheLayer::Memory));
            }
        }
        if let Some(dir) = &self.disk_dir {
            if let Some(artifact) = read_disk_artifact(&disk_path(dir, key), costs) {
                let artifact = Arc::new(artifact);
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                msc_obs::count("cache.disk_hit", 1);
                self.put_memory(key, Arc::clone(&artifact));
                return Some((artifact, CacheLayer::Disk));
            }
        }
        None
    }

    /// Record one miss. Paired with [`probe`](Self::probe): the
    /// singleflight leader calls this exactly once per coalesced group.
    pub fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        msc_obs::count("cache.miss", 1);
    }

    /// Insert a freshly compiled artifact into both layers.
    pub fn insert(&self, key: CacheKey, artifact: Arc<Artifact>) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
        msc_obs::count("cache.insert", 1);
        if let Some(dir) = &self.disk_dir {
            // Best effort: a full disk or read-only dir must not fail the
            // compile that produced the artifact. Write to a unique temp
            // file and rename into place — rename is atomic on POSIX, so a
            // concurrent reader (another `mscc` sharing the cache dir) sees
            // either the old artifact or the complete new one, never a torn
            // write, and concurrent writers cannot interleave.
            let _ = std::fs::create_dir_all(dir);
            static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
            let tmp = dir.join(format!(
                "{}.tmp.{}.{}",
                key.hex(),
                std::process::id(),
                TMP_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            if std::fs::write(&tmp, write_disk_artifact(key, &artifact)).is_ok() {
                if std::fs::rename(&tmp, disk_path(dir, key)).is_ok() {
                    msc_obs::count("cache.disk_write", 1);
                } else {
                    let _ = std::fs::remove_file(&tmp);
                }
            } else {
                let _ = std::fs::remove_file(&tmp);
            }
        }
        self.put_memory(key, artifact);
    }

    /// Current counter values.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of artifacts currently in memory.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when the memory layer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn put_memory(&self, key: CacheKey, artifact: Arc<Artifact>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            Entry {
                artifact,
                last_used: tick,
            },
        );
        while inner.map.len() > self.capacity {
            // O(n) victim scan; capacities are small (a cache of whole
            // compiled programs, not of cache lines).
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty map has a minimum");
            inner.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            msc_obs::count("cache.evict", 1);
        }
    }
}

fn disk_path(dir: &Path, key: CacheKey) -> PathBuf {
    dir.join(format!("{}.mscache", key.hex()))
}

/// On-disk artifact: a small line-oriented header followed by the
/// automaton rendering and the reloadable assembly, each length-prefixed
/// by line count.
fn write_disk_artifact(key: CacheKey, artifact: &Artifact) -> String {
    use std::fmt::Write as _;
    let asm = msc_simd::asm::serialize(&artifact.simd);
    let mut out = String::new();
    let _ = writeln!(out, "mscache v1");
    let _ = writeln!(out, "key {}", key.hex());
    let _ = writeln!(out, "meta_states {}", artifact.meta_states);
    let s = &artifact.stats;
    let _ = writeln!(
        out,
        "stats {} {} {} {}",
        s.restarts, s.splits, s.subsumed, s.successor_sets_enumerated
    );
    let t = &artifact.timings;
    let _ = writeln!(
        out,
        "timings_ns {} {} {}",
        t.compile.as_nanos(),
        t.convert.as_nanos(),
        t.codegen.as_nanos()
    );
    match artifact.ret_addr {
        Some(a) => {
            let _ = writeln!(out, "ret {} {}", a.space, a.index);
        }
        None => {
            let _ = writeln!(out, "ret none");
        }
    }
    let _ = writeln!(out, "automaton {}", artifact.automaton_text.lines().count());
    out.push_str(&artifact.automaton_text);
    if !artifact.automaton_text.ends_with('\n') && !artifact.automaton_text.is_empty() {
        out.push('\n');
    }
    let _ = writeln!(out, "asm {}", asm.lines().count());
    out.push_str(&asm);
    out
}

/// Parse a disk artifact; any malformation yields `None` (treated as a
/// miss — the artifact is simply rebuilt).
fn read_disk_artifact(path: &Path, costs: &CostModel) -> Option<Artifact> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    if lines.next()? != "mscache v1" {
        return None;
    }
    let _key = lines.next()?.strip_prefix("key ")?;
    let meta_states: usize = lines.next()?.strip_prefix("meta_states ")?.parse().ok()?;
    let stats_line = lines.next()?.strip_prefix("stats ")?;
    let mut it = stats_line.split_whitespace();
    let stats = ConvertStats {
        restarts: it.next()?.parse().ok()?,
        splits: it.next()?.parse().ok()?,
        subsumed: it.next()?.parse().ok()?,
        successor_sets_enumerated: it.next()?.parse().ok()?,
    };
    let timings_line = lines.next()?.strip_prefix("timings_ns ")?;
    let mut it = timings_line.split_whitespace();
    let mut dur =
        || -> Option<Duration> { it.next()?.parse::<u64>().ok().map(Duration::from_nanos) };
    let timings = PhaseTimings {
        compile: dur()?,
        convert: dur()?,
        codegen: dur()?,
    };
    let ret_line = lines.next()?.strip_prefix("ret ")?;
    let ret_addr = match ret_line {
        "none" => None,
        other => {
            let mut it = other.split_whitespace();
            let space = it.next()?;
            let index: u32 = it.next()?.parse().ok()?;
            Some(match space {
                "poly" => Addr::poly(index),
                "mono" => Addr::mono(index),
                _ => return None,
            })
        }
    };
    let n_auto: usize = lines.next()?.strip_prefix("automaton ")?.parse().ok()?;
    let mut automaton_text = String::new();
    for _ in 0..n_auto {
        automaton_text.push_str(lines.next()?);
        automaton_text.push('\n');
    }
    let n_asm: usize = lines.next()?.strip_prefix("asm ")?.parse().ok()?;
    let mut asm = String::new();
    for _ in 0..n_asm {
        asm.push_str(lines.next()?);
        asm.push('\n');
    }
    let simd = msc_simd::asm::parse(&asm, costs.clone()).ok()?;
    Some(Artifact {
        simd,
        stats,
        meta_states,
        timings,
        ret_addr,
        automaton_text,
        automaton: None,
        compiled: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> (ConvertOptions, GenOptions) {
        (ConvertOptions::base(), GenOptions::default())
    }

    #[test]
    fn siphash128_matches_reference_vectors() {
        // `vectors_sip128` from the SipHash reference implementation,
        // key = 00 01 02 .. 0f, read as two little-endian words.
        let k0 = 0x0706_0504_0302_0100;
        let k1 = 0x0f0e_0d0c_0b0a_0908;
        assert_eq!(
            siphash128(k0, k1, &[]),
            (0xe6a8_25ba_047f_81a3, 0x9302_55c7_1472_f66d)
        );
        assert_eq!(
            siphash128(k0, k1, &[0x00]),
            (0x44af_996b_d8c1_87da, 0x45fc_229b_1159_7634)
        );
        let msg: Vec<u8> = (0..15).collect(); // crosses the 8-byte block edge
        assert_eq!(
            siphash128(k0, k1, &msg),
            (0x11a8_b033_99e9_9354, 0xd9c3_cf97_0fec_087e)
        );
    }

    #[test]
    fn key_is_stable_and_content_sensitive() {
        let (c, g) = opts();
        let k1 = cache_key("main() {}", &c, &g, false, false);
        let k2 = cache_key("main() {}", &c, &g, false, false);
        assert_eq!(k1, k2);
        assert_ne!(k1, cache_key("main() { }", &c, &g, false, false));
        assert_ne!(k1, cache_key("main() {}", &c, &g, true, false));
        let mut c2 = c.clone();
        c2.max_meta_states = 7;
        assert_ne!(k1, cache_key("main() {}", &c2, &g, false, false));
        let g2 = GenOptions { csi: false, ..g };
        assert_ne!(k1, cache_key("main() {}", &c, &g2, false, false));
    }

    fn dummy_artifact(tag: usize) -> Arc<Artifact> {
        // A real (tiny) artifact, so the disk round-trip exercises the
        // actual assembly serializer.
        let program =
            msc_lang::compile("main() { poly int x; x = pe_id(); return(x); }").expect("compiles");
        let (automaton, stats) =
            msc_core::convert_with_stats(&program.graph, &ConvertOptions::base()).unwrap();
        let simd = msc_codegen::generate(
            &automaton,
            program.layout.poly_words,
            program.layout.mono_words,
            &GenOptions::default(),
        )
        .unwrap();
        Arc::new(Artifact {
            automaton_text: automaton.text(),
            meta_states: automaton.len() + tag, // tag distinguishes entries
            stats,
            timings: PhaseTimings::default(),
            ret_addr: program.layout.main_ret,
            simd,
            automaton: Some(automaton),
            compiled: Some(program),
        })
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (c, g) = opts();
        let cache = CompileCache::new(2, None);
        let keys: Vec<CacheKey> = (0..3)
            .map(|i| cache_key(&format!("src{i}"), &c, &g, false, false))
            .collect();
        cache.insert(keys[0], dummy_artifact(0));
        cache.insert(keys[1], dummy_artifact(1));
        // Touch key 0 so key 1 becomes the LRU victim.
        assert!(cache.lookup(keys[0], &c.costs).is_some());
        cache.insert(keys[2], dummy_artifact(2));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(keys[0], &c.costs).is_some());
        assert!(cache.lookup(keys[1], &c.costs).is_none());
        assert!(cache.lookup(keys[2], &c.costs).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 3);
    }

    #[test]
    fn disk_layer_round_trips() {
        let (c, g) = opts();
        let dir =
            std::env::temp_dir().join(format!("msc-engine-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = cache_key("disk", &c, &g, false, false);
        let art = dummy_artifact(0);
        {
            let cache = CompileCache::new(4, Some(dir.clone()));
            cache.insert(key, Arc::clone(&art));
        }
        // A fresh cache (cold memory) must reload from disk.
        let cache = CompileCache::new(4, Some(dir.clone()));
        let (reloaded, layer) = cache.lookup(key, &c.costs).expect("disk hit");
        assert_eq!(layer, CacheLayer::Disk);
        assert_eq!(reloaded.meta_states, art.meta_states);
        assert_eq!(reloaded.automaton_text, art.automaton_text);
        assert_eq!(reloaded.ret_addr, art.ret_addr);
        assert_eq!(
            msc_simd::asm::serialize(&reloaded.simd),
            msc_simd::asm::serialize(&art.simd),
            "assembly round-trips exactly"
        );
        assert!(reloaded.automaton.is_none(), "disk artifacts are partial");
        // Second lookup is served from memory (promotion happened).
        let (_, layer) = cache.lookup(key, &c.costs).expect("memory hit");
        assert_eq!(layer, CacheLayer::Memory);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_disk_artifact_degrades_to_miss() {
        // A real artifact cut off mid-file (torn write, full disk, manual
        // meddling) must read back as a miss, never a panic.
        let (c, g) = opts();
        let dir =
            std::env::temp_dir().join(format!("msc-engine-cache-truncated-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = cache_key("truncated", &c, &g, false, false);
        {
            let cache = CompileCache::new(4, Some(dir.clone()));
            cache.insert(key, dummy_artifact(0));
        }
        let path = disk_path(&dir, key);
        let full = std::fs::read(&path).unwrap();
        // Probe representative cuts that each lose real content: inside
        // the header, and mid automaton/asm. (Cutting only the final
        // newline loses nothing and may legitimately still parse.)
        for cut in [1, 16, full.len() / 3, full.len() / 2, full.len() * 3 / 4] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let cache = CompileCache::new(4, Some(dir.clone()));
            assert!(
                cache.lookup(key, &c.costs).is_none(),
                "truncation at {cut}/{} bytes must be a miss",
                full.len()
            );
            assert_eq!(cache.stats().misses, 1);
        }
        // Arbitrary garbage bytes (not even UTF-8) likewise.
        std::fs::write(&path, [0xff, 0x00, 0xfe, 0x80, 0x80]).unwrap();
        let cache = CompileCache::new(4, Some(dir.clone()));
        assert!(cache.lookup(key, &c.costs).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_artifact_degrades_to_miss() {
        let (c, g) = opts();
        let dir =
            std::env::temp_dir().join(format!("msc-engine-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let key = cache_key("corrupt", &c, &g, false, false);
        std::fs::write(
            dir.join(format!("{}.mscache", key.hex())),
            "not an artifact",
        )
        .unwrap();
        let cache = CompileCache::new(4, Some(dir.clone()));
        assert!(cache.lookup(key, &c.costs).is_none());
        assert_eq!(cache.stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
