//! The engine's view of the tiered compile cache.
//!
//! The tier machinery itself — the key/fingerprint algebra, the
//! in-memory LRU, the atomic on-disk layer, and the peer-fetch tier
//! with its breakers and deadlines — lives in the `msc-cache` crate,
//! generic over the artifact type. This module binds it to
//! [`Artifact`]: `ArtifactCodec` implements the `mscache v1`
//! interchange format (the SIMD program via the reloadable assembly
//! format `msc_simd::asm`, plus conversion stats and the automaton
//! rendering), and [`CompileCache`] wraps `TieredCache<Artifact>` with
//! the engine-facing API the rest of the workspace already speaks.
//!
//! Disk and peer artifacts reload the executable program but not the
//! full automaton or front-end IR, so [`Artifact::automaton`] /
//! [`Artifact::compiled`] are `None` for them.

use crate::{Artifact, PhaseTimings};
use msc_cache::{Codec, PeerConfig, TierStatus, TieredCache};
use msc_core::ConvertStats;
use msc_ir::{Addr, CostModel};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

pub use msc_cache::{cache_key, content_key, CacheKey, CacheLayer, CacheStats};

/// The `mscache v1` (de)serializer for [`Artifact`]s. Decoding reparses
/// the assembly, which needs the request's [`CostModel`]; the cache key
/// already pins it, so borrowing it per call is sound.
pub(crate) struct ArtifactCodec<'a> {
    pub costs: &'a CostModel,
}

impl ArtifactCodec<'_> {
    /// Codec for paths that only encode (insert, export): encoding
    /// never reads the cost model.
    pub fn encode_only() -> ArtifactCodec<'static> {
        static DEFAULT: std::sync::OnceLock<CostModel> = std::sync::OnceLock::new();
        ArtifactCodec {
            costs: DEFAULT.get_or_init(CostModel::default),
        }
    }
}

impl Codec<Artifact> for ArtifactCodec<'_> {
    fn encode(&self, key: CacheKey, artifact: &Artifact) -> String {
        write_disk_artifact(key, artifact)
    }

    fn decode(&self, text: &str) -> Option<Artifact> {
        read_disk_artifact(text, self.costs)
    }
}

/// Bounded, thread-safe artifact cache: memory LRU, optional disk
/// layer, optional peer-daemon layer.
pub struct CompileCache {
    tiers: TieredCache<Artifact>,
}

impl CompileCache {
    /// A cache holding at most `capacity` artifacts in memory (0 disables
    /// the memory layer), persisting to `disk_dir` when given (the
    /// directory is created on first use; I/O failures degrade to misses).
    pub fn new(capacity: usize, disk_dir: Option<PathBuf>) -> Self {
        CompileCache {
            tiers: TieredCache::new(capacity, disk_dir),
        }
    }

    /// [`new`](Self::new) plus a peer tier fetching from sibling
    /// daemons (`host:port` each; an empty list disables the tier).
    pub fn with_peers(
        capacity: usize,
        disk_dir: Option<PathBuf>,
        peers: Vec<String>,
        cfg: PeerConfig,
    ) -> Self {
        CompileCache {
            tiers: TieredCache::with_peers(capacity, disk_dir, peers, cfg),
        }
    }

    /// Look up `key`, consulting memory then disk. `costs` is needed to
    /// reparse a disk artifact's assembly (the key already pins it).
    pub fn lookup(&self, key: CacheKey, costs: &CostModel) -> Option<(Arc<Artifact>, CacheLayer)> {
        let hit = self.probe(key, costs);
        if hit.is_none() {
            self.note_miss();
        }
        hit
    }

    /// [`lookup`](Self::lookup) without recording a miss (hits are still
    /// counted). The engine's singleflight layer probes first and only
    /// charges a miss to the one request that actually compiles, so a
    /// burst of N identical requests reads as 1 miss + N−1 hits/coalesced
    /// rather than N misses. Local tiers only — never the network.
    pub fn probe(&self, key: CacheKey, costs: &CostModel) -> Option<(Arc<Artifact>, CacheLayer)> {
        self.tiers.probe(key, &ArtifactCodec { costs })
    }

    /// Consult the peer tier (if configured) for `key`; a verified hit
    /// is promoted into memory and disk. Called by the singleflight
    /// leader only, so N coalesced cold requests cost at most one peer
    /// round-trip.
    pub fn fetch_remote(&self, key: CacheKey, costs: &CostModel) -> Option<Arc<Artifact>> {
        self.tiers.fetch_remote(key, &ArtifactCodec { costs })
    }

    /// Record one miss. Paired with [`probe`](Self::probe): the
    /// singleflight leader calls this exactly once per coalesced group.
    pub fn note_miss(&self) {
        self.tiers.note_miss();
    }

    /// Insert a freshly compiled artifact into the local tiers.
    pub fn insert(&self, key: CacheKey, artifact: Arc<Artifact>) {
        self.tiers
            .insert(key, artifact, &ArtifactCodec::encode_only());
    }

    /// Serialize a locally cached artifact for `GET /artifact/{key}`:
    /// memory first, else the raw disk file. `None` when this node has
    /// nothing — serving a peer must never trigger a compile, and never
    /// consults *our* peers (no fetch recursion across the fleet).
    pub fn export(&self, key: CacheKey) -> Option<String> {
        self.tiers.export(key, &ArtifactCodec::encode_only())
    }

    /// True when a peer tier is configured.
    pub fn has_peers(&self) -> bool {
        self.tiers.has_peers()
    }

    /// Status of every configured tier, fastest first (for `/healthz`).
    pub fn tier_status(&self) -> Vec<TierStatus> {
        self.tiers.tier_status()
    }

    /// Current counter values.
    pub fn stats(&self) -> CacheStats {
        self.tiers.stats()
    }

    /// Number of artifacts currently in memory.
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// True when the memory layer is empty.
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }
}

/// On-disk artifact: a small line-oriented header followed by the
/// automaton rendering and the reloadable assembly, each length-prefixed
/// by line count.
fn write_disk_artifact(key: CacheKey, artifact: &Artifact) -> String {
    use std::fmt::Write as _;
    let asm = msc_simd::asm::serialize(&artifact.simd);
    let mut out = String::new();
    let _ = writeln!(out, "mscache v1");
    let _ = writeln!(out, "key {}", key.hex());
    let _ = writeln!(out, "meta_states {}", artifact.meta_states);
    let s = &artifact.stats;
    let _ = writeln!(
        out,
        "stats {} {} {} {}",
        s.restarts, s.splits, s.subsumed, s.successor_sets_enumerated
    );
    let t = &artifact.timings;
    let _ = writeln!(
        out,
        "timings_ns {} {} {}",
        t.compile.as_nanos(),
        t.convert.as_nanos(),
        t.codegen.as_nanos()
    );
    match artifact.ret_addr {
        Some(a) => {
            let _ = writeln!(out, "ret {} {}", a.space, a.index);
        }
        None => {
            let _ = writeln!(out, "ret none");
        }
    }
    let _ = writeln!(out, "automaton {}", artifact.automaton_text.lines().count());
    out.push_str(&artifact.automaton_text);
    if !artifact.automaton_text.ends_with('\n') && !artifact.automaton_text.is_empty() {
        out.push('\n');
    }
    let _ = writeln!(out, "asm {}", asm.lines().count());
    out.push_str(&asm);
    out
}

/// Parse an artifact from interchange text; any malformation yields
/// `None` (treated as a miss — the artifact is simply rebuilt).
fn read_disk_artifact(text: &str, costs: &CostModel) -> Option<Artifact> {
    let mut lines = text.lines();
    if lines.next()? != "mscache v1" {
        return None;
    }
    let _key = lines.next()?.strip_prefix("key ")?;
    let meta_states: usize = lines.next()?.strip_prefix("meta_states ")?.parse().ok()?;
    let stats_line = lines.next()?.strip_prefix("stats ")?;
    let mut it = stats_line.split_whitespace();
    let stats = ConvertStats {
        restarts: it.next()?.parse().ok()?,
        splits: it.next()?.parse().ok()?,
        subsumed: it.next()?.parse().ok()?,
        successor_sets_enumerated: it.next()?.parse().ok()?,
    };
    let timings_line = lines.next()?.strip_prefix("timings_ns ")?;
    let mut it = timings_line.split_whitespace();
    let mut dur =
        || -> Option<Duration> { it.next()?.parse::<u64>().ok().map(Duration::from_nanos) };
    let timings = PhaseTimings {
        compile: dur()?,
        convert: dur()?,
        codegen: dur()?,
    };
    let ret_line = lines.next()?.strip_prefix("ret ")?;
    let ret_addr = match ret_line {
        "none" => None,
        other => {
            let mut it = other.split_whitespace();
            let space = it.next()?;
            let index: u32 = it.next()?.parse().ok()?;
            Some(match space {
                "poly" => Addr::poly(index),
                "mono" => Addr::mono(index),
                _ => return None,
            })
        }
    };
    let n_auto: usize = lines.next()?.strip_prefix("automaton ")?.parse().ok()?;
    let mut automaton_text = String::new();
    for _ in 0..n_auto {
        automaton_text.push_str(lines.next()?);
        automaton_text.push('\n');
    }
    let n_asm: usize = lines.next()?.strip_prefix("asm ")?.parse().ok()?;
    let mut asm = String::new();
    for _ in 0..n_asm {
        asm.push_str(lines.next()?);
        asm.push('\n');
    }
    let simd = msc_simd::asm::parse(&asm, costs.clone()).ok()?;
    Some(Artifact {
        simd,
        stats,
        meta_states,
        timings,
        ret_addr,
        automaton: None,
        automaton_text,
        compiled: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_codegen::GenOptions;
    use msc_core::ConvertOptions;
    use std::path::Path;

    fn opts() -> (ConvertOptions, GenOptions) {
        (ConvertOptions::base(), GenOptions::default())
    }

    fn disk_path(dir: &Path, key: CacheKey) -> PathBuf {
        dir.join(format!("{}.mscache", key.hex()))
    }

    pub(crate) fn dummy_artifact(tag: usize) -> Arc<Artifact> {
        // A real (tiny) artifact, so the disk round-trip exercises the
        // actual assembly serializer.
        let program =
            msc_lang::compile("main() { poly int x; x = pe_id(); return(x); }").expect("compiles");
        let (automaton, stats) =
            msc_core::convert_with_stats(&program.graph, &ConvertOptions::base()).unwrap();
        let simd = msc_codegen::generate(
            &automaton,
            program.layout.poly_words,
            program.layout.mono_words,
            &GenOptions::default(),
        )
        .unwrap();
        Arc::new(Artifact {
            automaton_text: automaton.text(),
            meta_states: automaton.len() + tag, // tag distinguishes entries
            stats,
            timings: PhaseTimings::default(),
            ret_addr: program.layout.main_ret,
            simd,
            automaton: Some(automaton),
            compiled: Some(program),
        })
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (c, g) = opts();
        let cache = CompileCache::new(2, None);
        let keys: Vec<CacheKey> = (0..3)
            .map(|i| cache_key(&format!("src{i}"), &c, &g, false, false))
            .collect();
        cache.insert(keys[0], dummy_artifact(0));
        cache.insert(keys[1], dummy_artifact(1));
        // Touch key 0 so key 1 becomes the LRU victim.
        assert!(cache.lookup(keys[0], &c.costs).is_some());
        cache.insert(keys[2], dummy_artifact(2));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(keys[0], &c.costs).is_some());
        assert!(cache.lookup(keys[1], &c.costs).is_none());
        assert!(cache.lookup(keys[2], &c.costs).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 3);
    }

    #[test]
    fn disk_layer_round_trips() {
        let (c, g) = opts();
        let dir =
            std::env::temp_dir().join(format!("msc-engine-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = cache_key("disk", &c, &g, false, false);
        let art = dummy_artifact(0);
        {
            let cache = CompileCache::new(4, Some(dir.clone()));
            cache.insert(key, Arc::clone(&art));
        }
        // A fresh cache (cold memory) must reload from disk.
        let cache = CompileCache::new(4, Some(dir.clone()));
        let (reloaded, layer) = cache.lookup(key, &c.costs).expect("disk hit");
        assert_eq!(layer, CacheLayer::Disk);
        assert_eq!(reloaded.meta_states, art.meta_states);
        assert_eq!(reloaded.automaton_text, art.automaton_text);
        assert_eq!(reloaded.ret_addr, art.ret_addr);
        assert_eq!(
            msc_simd::asm::serialize(&reloaded.simd),
            msc_simd::asm::serialize(&art.simd),
            "assembly round-trips exactly"
        );
        assert!(reloaded.automaton.is_none(), "disk artifacts are partial");
        // Second lookup is served from memory (promotion happened).
        let (_, layer) = cache.lookup(key, &c.costs).expect("memory hit");
        assert_eq!(layer, CacheLayer::Memory);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_disk_artifact_degrades_to_miss() {
        // A real artifact cut off mid-file (torn write, full disk, manual
        // meddling) must read back as a miss, never a panic.
        let (c, g) = opts();
        let dir =
            std::env::temp_dir().join(format!("msc-engine-cache-truncated-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = cache_key("truncated", &c, &g, false, false);
        {
            let cache = CompileCache::new(4, Some(dir.clone()));
            cache.insert(key, dummy_artifact(0));
        }
        let path = disk_path(&dir, key);
        let full = std::fs::read(&path).unwrap();
        // Probe representative cuts that each lose real content: inside
        // the header, and mid automaton/asm. (Cutting only the final
        // newline loses nothing and may legitimately still parse.)
        for cut in [1, 16, full.len() / 3, full.len() / 2, full.len() * 3 / 4] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let cache = CompileCache::new(4, Some(dir.clone()));
            assert!(
                cache.lookup(key, &c.costs).is_none(),
                "truncation at {cut}/{} bytes must be a miss",
                full.len()
            );
            assert_eq!(cache.stats().misses, 1);
        }
        // Arbitrary garbage bytes (not even UTF-8) likewise.
        std::fs::write(&path, [0xff, 0x00, 0xfe, 0x80, 0x80]).unwrap();
        let cache = CompileCache::new(4, Some(dir.clone()));
        assert!(cache.lookup(key, &c.costs).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_artifact_degrades_to_miss() {
        let (c, g) = opts();
        let dir =
            std::env::temp_dir().join(format!("msc-engine-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let key = cache_key("corrupt", &c, &g, false, false);
        std::fs::write(
            dir.join(format!("{}.mscache", key.hex())),
            "not an artifact",
        )
        .unwrap();
        let cache = CompileCache::new(4, Some(dir.clone()));
        assert!(cache.lookup(key, &c.costs).is_none());
        assert_eq!(cache.stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_accounting_invariant_across_probe_note_miss_split() {
        // Every *resolved* lookup — a `lookup` call, or a `probe`
        // settled by either a hit or a paired `note_miss` — lands in
        // exactly one bucket, so the buckets must always sum back to
        // the number of resolved lookups. This pins the probe/note_miss
        // split the singleflight layer leans on: the leader probes,
        // fetches remotely, then charges the one miss itself.
        let (c, g) = opts();
        let dir =
            std::env::temp_dir().join(format!("msc-engine-cache-invariant-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CompileCache::new(2, Some(dir.clone()));
        let keys: Vec<CacheKey> = (0..4)
            .map(|i| cache_key(&format!("inv{i}"), &c, &g, false, false))
            .collect();
        let mut resolved = 0u64;

        // Cold lookups (memory+disk miss).
        for &k in &keys {
            assert!(cache.lookup(k, &c.costs).is_none());
            resolved += 1;
        }
        // The singleflight shape: probe (miss), then note_miss once for
        // the whole coalesced group, then insert.
        for (i, &k) in keys.iter().enumerate() {
            assert!(cache.probe(k, &c.costs).is_none());
            cache.note_miss();
            resolved += 1;
            cache.insert(k, dummy_artifact(i));
        }
        // Warm probes, each key twice: the first resolves from memory
        // or disk (cycling the capacity-2 LRU), the immediate repeat is
        // always a memory hit on the just-promoted entry — hits are
        // counted by probe itself, no note_miss.
        for &k in &keys {
            for _ in 0..2 {
                assert!(cache.probe(k, &c.costs).is_some());
                resolved += 1;
            }
        }
        // Followers that probed and hit after the leader published do
        // not call note_miss; leaders that missed do. Interleave a few
        // more rounds to shake the split.
        for round in 0..3 {
            for &k in &keys {
                match cache.probe(k, &c.costs) {
                    Some(_) => {}
                    None => cache.note_miss(),
                }
                resolved += 1;
            }
            let fresh = cache_key(&format!("inv-fresh-{round}"), &c, &g, false, false);
            assert!(cache.lookup(fresh, &c.costs).is_none());
            resolved += 1;
        }

        let s = cache.stats();
        assert_eq!(
            s.hits + s.disk_hits + s.peer_hits + s.misses,
            resolved,
            "every resolved lookup lands in exactly one stats bucket: {s:?}"
        );
        assert!(s.hits > 0 && s.disk_hits > 0 && s.misses > 0, "{s:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_disk_insert_evict_never_surfaces_partial_artifact() {
        // Two writers hammer the same keys through the temp+rename path
        // while a reader (cold memory every time: capacity 1 with two
        // keys means constant eviction) reloads from disk. Atomic
        // rename means every read parses completely — a torn write
        // would surface as a spurious miss or a half-written automaton.
        let (c, g) = opts();
        let dir = std::env::temp_dir().join(format!(
            "msc-engine-cache-concurrent-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let keys = [
            cache_key("conc0", &c, &g, false, false),
            cache_key("conc1", &c, &g, false, false),
        ];
        let artifacts = [dummy_artifact(0), dummy_artifact(1)];
        let expected_meta: Vec<usize> = artifacts.iter().map(|a| a.meta_states).collect();
        let expected_text = artifacts[0].automaton_text.clone();
        let cache = Arc::new(CompileCache::new(1, Some(dir.clone())));
        // Seed both keys so the reader never races a not-yet-written file.
        cache.insert(keys[0], Arc::clone(&artifacts[0]));
        cache.insert(keys[1], Arc::clone(&artifacts[1]));

        std::thread::scope(|scope| {
            for w in 0..2 {
                let cache = Arc::clone(&cache);
                let artifacts = artifacts.clone();
                scope.spawn(move || {
                    for i in 0..150 {
                        // Both writers alternate over both keys, offset
                        // by one so they collide on the same key often.
                        let which = (i + w) % 2;
                        cache.insert(keys[which], Arc::clone(&artifacts[which]));
                    }
                });
            }
            let cache = Arc::clone(&cache);
            let costs = c.costs.clone();
            scope.spawn(move || {
                for i in 0..300 {
                    let which = i % 2;
                    let (artifact, _) = cache
                        .lookup(keys[which], &costs)
                        .expect("concurrent rewrite must never read as a miss");
                    assert_eq!(
                        artifact.meta_states, expected_meta[which],
                        "complete artifact, never a blend"
                    );
                    if which == 0 {
                        assert_eq!(artifact.automaton_text, expected_text);
                    }
                }
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
