//! Frontier-parallel meta-state conversion.
//!
//! The sequential converter in `msc-core` is a worklist algorithm: pop a
//! meta state, enumerate its successor sets, intern each one, repeat. The
//! expansion of one meta state depends only on `(graph, members, latent,
//! options)` — never on converter-global state — so independent frontier
//! entries can be expanded on different threads. This module does exactly
//! that:
//!
//! * a **sharded interner** maps member sets to meta-state ids. Each shard
//!   is a [`parking_lot::Mutex`]-guarded Fx hash map, sharded by the set's
//!   Fx hash, so interning contention scales with shard count rather than
//!   serializing on one table;
//! * a **shared worklist** with condvar-based idle/termination detection
//!   feeds the frontier to a [`crossbeam::thread::scope`] worker pool;
//! * **latent barrier widening** (§2.6 of the paper) is handled with a
//!   per-record version counter: a worker that expanded a meta state under
//!   a since-widened latent set detects the stale version when it goes to
//!   publish its successors and re-enqueues the record instead.
//!
//! Discovery order — and therefore raw meta-state numbering — is
//! nondeterministic under parallel execution, and a stale expansion may
//! already have interned successor sets that the fresh re-expansion never
//! produces, leaving spurious records in the slab. The finished automaton
//! is therefore normalized in two steps: spurious/unreachable states are
//! dropped with [`MetaAutomaton::prune_unreachable`], then the survivors
//! are renumbered with [`MetaAutomaton::canonicalize`] (deterministic BFS
//! from the start state). The reachable fixpoint of subset construction is
//! unique, so after this normalization the automaton is **bit-identical**
//! regardless of thread count — including the single-threaded sequential
//! fallback. Subsumption, when requested, runs *after* normalization;
//! the subset fold is deterministic in its input order.
//!
//! Time splitting (§2.4) restarts the whole construction whenever any meta
//! state splits a MIMD state, which serializes the algorithm by design;
//! conversion with `time_split` enabled falls back to the sequential core
//! converter.

use msc_core::{
    apply_barrier, convert_with_stats, expand_frontier, fx_hash, subsume::subsume, ConvertError,
    ConvertOptions, ConvertStats, MetaAutomaton, MetaId, StateSet,
};
use msc_ir::util::{FxHashMap, FxHashSet};
use msc_ir::MimdGraph;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Failures of [`convert_parallel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParallelError {
    /// The underlying conversion failed (same errors as the sequential
    /// converter).
    Convert(ConvertError),
    /// The cooperative deadline passed before conversion finished.
    TimedOut,
}

impl std::fmt::Display for ParallelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelError::Convert(e) => write!(f, "{e}"),
            ParallelError::TimedOut => write!(f, "conversion deadline exceeded"),
        }
    }
}

impl std::error::Error for ParallelError {}

impl From<ConvertError> for ParallelError {
    fn from(e: ConvertError) -> Self {
        ParallelError::Convert(e)
    }
}

/// One interned meta state under construction.
struct Record {
    /// Visible members (immutable once interned — identity of the record).
    members: StateSet,
    /// Mutable construction state: latent waiters + widening version.
    state: Mutex<RecordState>,
    /// Published successor ids (global interner ids, dedup in order).
    succs: Mutex<Vec<u32>>,
}

struct RecordState {
    /// Latent barrier waiters (§2.6) accumulated from every path in.
    latent: StateSet,
    /// Bumped on every latent widening; lets a worker detect that the
    /// expansion it just computed used a stale latent set.
    version: u64,
    /// True while the record sits in the worklist (O(1) re-enqueue check).
    queued: bool,
}

/// Shared worklist with idle-aware termination: the pool is done when the
/// queue is empty *and* no worker is mid-expansion (a busy worker may still
/// push new work).
struct WorkQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
}

struct QueueInner {
    deque: VecDeque<u32>,
    active: usize,
    stopped: bool,
}

impl WorkQueue {
    fn new() -> Self {
        WorkQueue {
            inner: Mutex::new(QueueInner {
                deque: VecDeque::new(),
                active: 0,
                stopped: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn push(&self, id: u32) {
        let mut g = self.inner.lock();
        g.deque.push_back(id);
        self.cv.notify_one();
    }

    /// Pop the next record id, blocking while other workers may still
    /// produce work. Returns `None` on termination (or abort).
    fn pop(&self) -> Option<u32> {
        let mut g = self.inner.lock();
        loop {
            if g.stopped {
                return None;
            }
            if let Some(id) = g.deque.pop_front() {
                g.active += 1;
                return Some(id);
            }
            if g.active == 0 {
                g.stopped = true;
                self.cv.notify_all();
                return None;
            }
            self.cv.wait(&mut g);
        }
    }

    /// Abort: wake everyone and refuse further pops.
    fn stop(&self) {
        let mut g = self.inner.lock();
        g.stopped = true;
        self.cv.notify_all();
    }
}

/// Marks the current expansion finished when dropped (pairs with a
/// successful [`WorkQueue::pop`]). Running the bookkeeping in `Drop` keeps
/// the `active` count correct even when the expansion panics: without it,
/// the other workers would block forever in `pop`'s condvar wait and the
/// thread scope would hang instead of propagating the panic. A panicking
/// holder additionally stops the whole queue, since the construction can
/// no longer complete.
struct TaskGuard<'a>(&'a WorkQueue);

impl Drop for TaskGuard<'_> {
    fn drop(&mut self) {
        let mut g = self.0.inner.lock();
        g.active -= 1;
        let idle = g.active == 0 && g.deque.is_empty();
        if std::thread::panicking() || idle {
            g.stopped = true;
            self.0.cv.notify_all();
        }
    }
}

/// The sharded interner plus the record slab.
///
/// Each shard maps the member set's Fx hash to the interned ids carrying
/// that hash (almost always exactly one); equality is checked against the
/// slab records. This keeps the member set stored once — in the record —
/// so an intern hit allocates nothing and a miss *moves* the set in. The
/// shard index is derived from the same hash, so identical sets land on
/// the same shard on every thread.
struct Interner {
    shards: Vec<Mutex<FxHashMap<u64, Vec<u32>>>>,
    /// Records addressed by global id (creation order).
    slab: RwLock<Vec<Arc<Record>>>,
}

impl Interner {
    fn new(n_shards: usize) -> Self {
        Interner {
            shards: (0..n_shards)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            slab: RwLock::new(Vec::new()),
        }
    }

    fn resolve(&self, id: u32) -> Arc<Record> {
        Arc::clone(&self.slab.read()[id as usize])
    }

    fn len(&self) -> usize {
        self.slab.read().len()
    }

    /// Intern `(members, latent)`: create the record (enqueued) if the
    /// member set is new, otherwise widen the existing record's latent set,
    /// re-enqueueing it if the widening invalidated published successors.
    fn intern(&self, members: StateSet, latent: StateSet, queue: &WorkQueue) -> u32 {
        let hash = fx_hash(&members);
        let shard = (hash as usize) & (self.shards.len() - 1);
        // Uncontended shards take the fast path; a failed try_lock means
        // another worker holds this shard right now — that is the
        // contention signal the `engine.shard_contention` counter tracks.
        let mut map = match self.shards[shard].try_lock() {
            Some(g) => g,
            None => {
                msc_obs::count("engine.shard_contention", 1);
                self.shards[shard].lock()
            }
        };
        msc_obs::count("engine.intern", 1);
        let hit = map.get(&hash).and_then(|bucket| {
            let slab = self.slab.read();
            bucket
                .iter()
                .copied()
                .find(|&id| slab[id as usize].members == members)
        });
        if let Some(id) = hit {
            drop(map);
            let rec = self.resolve(id);
            let mut st = rec.state.lock();
            if !latent.is_subset(&st.latent) {
                st.latent = st.latent.union(&latent);
                st.version += 1;
                if !st.queued {
                    st.queued = true;
                    drop(st);
                    queue.push(id);
                }
            }
            return id;
        }
        // New meta state: allocate a global id while still holding the
        // shard lock so the map and slab stay consistent (lock order is
        // always shard -> slab).
        let mut slab = self.slab.write();
        let id = slab.len() as u32;
        slab.push(Arc::new(Record {
            members,
            state: Mutex::new(RecordState {
                latent,
                version: 0,
                queued: true,
            }),
            succs: Mutex::new(Vec::new()),
        }));
        drop(slab);
        map.entry(hash).or_default().push(id);
        drop(map);
        queue.push(id);
        id
    }
}

/// Convert `graph` with up to `threads` worker threads, normalizing the
/// result so it is bit-identical across thread counts (see module docs).
/// `threads == 0` selects the machine's available parallelism.
pub fn convert_parallel(
    graph: &MimdGraph,
    opts: &ConvertOptions,
    threads: usize,
) -> Result<(MetaAutomaton, ConvertStats), ConvertError> {
    convert_parallel_deadline(graph, opts, threads, None).map_err(|e| match e {
        ParallelError::Convert(e) => e,
        // Unreachable without a deadline; keep the error total anyway.
        ParallelError::TimedOut => ConvertError::TooManyMetaStates { limit: 0 },
    })
}

/// [`convert_parallel`] with a cooperative deadline, checked between
/// frontier expansions (the sequential time-split fallback checks only at
/// the end, since the core converter has no cancellation hook).
pub fn convert_parallel_deadline(
    graph: &MimdGraph,
    opts: &ConvertOptions,
    threads: usize,
    deadline: Option<Instant>,
) -> Result<(MetaAutomaton, ConvertStats), ParallelError> {
    let threads = effective_threads(threads);
    // Time splitting restarts the construction on every split — inherently
    // sequential — and a single worker gains nothing from the machinery.
    if threads <= 1 || opts.time_split.is_some() {
        return convert_sequential_canonical(graph, opts, deadline);
    }
    graph.validate().map_err(ConvertError::from)?;

    // Construction runs with subsumption off; the fold is applied after
    // canonicalization so its input order is thread-count-independent.
    let mut build_opts = opts.clone();
    build_opts.subsumption = false;

    let n_shards = (threads * 4).next_power_of_two().min(64);
    let interner = Interner::new(n_shards);
    let queue = WorkQueue::new();
    let enumerated = AtomicU64::new(0);
    let failure: Mutex<Option<ParallelError>> = Mutex::new(None);

    let start_set = apply_barrier(graph, StateSet::singleton(graph.start), opts);
    let start_id = interner.intern(start_set, StateSet::empty(), &queue);
    debug_assert_eq!(start_id, 0);

    let fail = |e: ParallelError| {
        let mut slot = failure.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        queue.stop();
    };

    let scope_result = crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| {
                // One span per worker covering its whole steal/expand/intern
                // loop; total across workers ≈ pool busy time.
                let _worker_span = msc_obs::span("engine.worker");
                while let Some(id) = queue.pop() {
                    // Dropped at the end of each iteration — and on panic,
                    // where it also stops the queue so the pool unwinds
                    // instead of deadlocking (see `TaskGuard`).
                    let _task = TaskGuard(&queue);
                    if deadline.is_some_and(|d| Instant::now() > d) {
                        fail(ParallelError::TimedOut);
                        return;
                    }
                    let rec = interner.resolve(id);
                    let (latent, version) = {
                        let mut st = rec.state.lock();
                        st.queued = false;
                        (st.latent.clone(), st.version)
                    };
                    let expansion = expand_frontier(graph, &rec.members, &latent, &build_opts);
                    let (targets, n_enum) = match expansion {
                        Ok(x) => x,
                        Err(e) => {
                            fail(e.into());
                            return;
                        }
                    };
                    enumerated.fetch_add(n_enum, Ordering::Relaxed);
                    msc_obs::count("engine.expand", 1);
                    let mut out: Vec<u32> = Vec::with_capacity(targets.len());
                    let mut out_seen: FxHashSet<u32> = FxHashSet::default();
                    for (t, l) in targets {
                        let sid = interner.intern(t, l, &queue);
                        if out_seen.insert(sid) {
                            out.push(sid);
                        }
                    }
                    if interner.len() > opts.max_meta_states {
                        fail(
                            ConvertError::TooManyMetaStates {
                                limit: opts.max_meta_states,
                            }
                            .into(),
                        );
                        return;
                    }
                    // Publish unless the latent set widened underneath us —
                    // then the expansion is stale and the record must go
                    // around again.
                    let mut st = rec.state.lock();
                    if st.version == version {
                        *rec.succs.lock() = out;
                    } else {
                        msc_obs::count("engine.stale_requeue", 1);
                        if !st.queued {
                            st.queued = true;
                            drop(st);
                            queue.push(id);
                        }
                    }
                }
            });
        }
    });
    if let Err(payload) = scope_result {
        // Re-raise a worker's panic with its original payload so callers
        // (e.g. the batch API's per-job `catch_unwind`) see the real
        // message rather than a generic join error.
        std::panic::resume_unwind(payload);
    }

    if let Some(e) = failure.lock().take() {
        return Err(e);
    }

    let records = std::mem::take(&mut *interner.slab.write());
    let mut automaton = MetaAutomaton {
        graph: graph.clone(),
        sets: records.iter().map(|r| r.members.clone()).collect(),
        start: MetaId(0),
        succs: records
            .iter()
            .map(|r| r.succs.lock().iter().map(|&i| MetaId(i)).collect())
            .collect(),
    };
    let mut stats = ConvertStats {
        successor_sets_enumerated: enumerated.load(Ordering::Relaxed),
        ..ConvertStats::default()
    };
    finish(&mut automaton, &mut stats, opts);
    Ok((automaton, stats))
}

/// Sequential path producing the same normal form as the parallel one:
/// core conversion with subsumption deferred, then canonicalize + fold.
fn convert_sequential_canonical(
    graph: &MimdGraph,
    opts: &ConvertOptions,
    deadline: Option<Instant>,
) -> Result<(MetaAutomaton, ConvertStats), ParallelError> {
    let mut build_opts = opts.clone();
    build_opts.subsumption = false;
    let (mut automaton, mut stats) = convert_with_stats(graph, &build_opts)?;
    if deadline.is_some_and(|d| Instant::now() > d) {
        return Err(ParallelError::TimedOut);
    }
    finish(&mut automaton, &mut stats, opts);
    Ok((automaton, stats))
}

/// Normalize into the engine's canonical form: drop unreachable states
/// (stale expansions can intern successor sets the fresh re-expansion
/// never produces — those spurious records must not survive into the
/// automaton), BFS-renumber the reachable remainder, then run the
/// (deterministic) subsumption fold if requested and renumber again since
/// the fold compacts ids.
fn finish(automaton: &mut MetaAutomaton, stats: &mut ConvertStats, opts: &ConvertOptions) {
    automaton.prune_unreachable();
    automaton.canonicalize();
    if opts.subsumption {
        stats.subsumed += subsume(automaton);
        automaton.canonicalize();
    }
}

fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msc_core::ConvertMode;
    use msc_ir::{MimdState, Terminator};

    /// A chain of n conditional branches: 2^n reachable subsets in base
    /// mode — enough meta states to exercise real contention.
    fn branch_chain(n: usize) -> MimdGraph {
        let mut g = MimdGraph::new();
        let halt = g.add(MimdState::new(vec![], Terminator::Halt));
        let mut next = halt;
        for _ in 0..n {
            let f = g.add(MimdState::new(vec![], Terminator::Halt));
            let s = g.add(MimdState::new(vec![], Terminator::Branch { t: next, f }));
            g.state_mut(f).term = Terminator::Jump(next);
            next = s;
        }
        g.start = next;
        g
    }

    fn barrier_diamond() -> MimdGraph {
        let mut g = MimdGraph::new();
        let end = g.add(MimdState::new(vec![], Terminator::Halt));
        let mut wait = MimdState::new(vec![], Terminator::Jump(end));
        wait.barrier = true;
        let w = g.add(wait);
        let a = g.add(MimdState::new(vec![], Terminator::Jump(w)));
        let b = g.add(MimdState::new(vec![], Terminator::Jump(w)));
        let start = g.add(MimdState::new(vec![], Terminator::Branch { t: a, f: b }));
        g.start = start;
        g
    }

    fn check_equal_across_threads(graph: &MimdGraph, opts: &ConvertOptions) {
        let (seq, _) = convert_parallel(graph, opts, 1).expect("sequential converts");
        seq.validate().expect("sequential output valid");
        for threads in [2, 4, 8] {
            let (par, _) = convert_parallel(graph, opts, threads).expect("parallel converts");
            assert_eq!(par.sets, seq.sets, "sets differ at {threads} threads");
            assert_eq!(par.succs, seq.succs, "succs differ at {threads} threads");
            assert_eq!(par.start, seq.start);
        }
    }

    #[test]
    fn parallel_matches_sequential_base_mode() {
        let mut opts = ConvertOptions::base();
        opts.costs = Default::default();
        check_equal_across_threads(&branch_chain(6), &opts);
    }

    #[test]
    fn parallel_matches_sequential_compressed_with_subsumption() {
        let opts = ConvertOptions {
            mode: ConvertMode::Compressed,
            ..ConvertOptions::compressed()
        };
        check_equal_across_threads(&branch_chain(6), &opts);
    }

    #[test]
    fn parallel_handles_barriers() {
        check_equal_across_threads(&barrier_diamond(), &ConvertOptions::base());
    }

    #[test]
    fn parallel_respects_meta_state_guard() {
        let opts = ConvertOptions {
            max_meta_states: 4,
            ..ConvertOptions::base()
        };
        let err = convert_parallel(&branch_chain(8), &opts, 4).unwrap_err();
        assert!(
            matches!(err, ConvertError::TooManyMetaStates { limit: 4 }),
            "{err:?}"
        );
    }

    #[test]
    fn deadline_in_the_past_times_out() {
        let past = Instant::now() - std::time::Duration::from_secs(1);
        let err =
            convert_parallel_deadline(&branch_chain(10), &ConvertOptions::base(), 4, Some(past))
                .unwrap_err();
        assert_eq!(err, ParallelError::TimedOut);
    }

    #[test]
    fn matches_core_converter_modulo_canonicalization() {
        // The engine's normal form must be the core converter's output
        // canonicalized (subsumption off isolates the construction).
        let g = branch_chain(5);
        let opts = ConvertOptions::base();
        let (mut core, _) = convert_with_stats(&g, &opts).unwrap();
        core.prune_unreachable();
        core.canonicalize();
        let (par, _) = convert_parallel(&g, &opts, 4).unwrap();
        assert_eq!(par.sets, core.sets);
        assert_eq!(par.succs, core.succs);
    }

    #[test]
    fn finish_drops_spurious_slab_records() {
        // Simulate the slab a stale expansion leaves behind: record 2 was
        // interned by an expansion that latent widening later invalidated,
        // so no fresh expansion references it. It must not survive into
        // the normalized automaton.
        let mut graph = MimdGraph::new();
        let a = graph.add(MimdState::new(vec![], Terminator::Halt));
        let b = graph.add(MimdState::new(vec![], Terminator::Halt));
        let c = graph.add(MimdState::new(vec![], Terminator::Halt));
        graph.state_mut(a).term = Terminator::Jump(b);
        graph.start = a;
        let mut automaton = MetaAutomaton {
            graph,
            sets: vec![
                StateSet::singleton(a),
                StateSet::singleton(b),
                StateSet::singleton(c), // spurious
            ],
            start: MetaId(0),
            succs: vec![vec![MetaId(1)], vec![], vec![MetaId(1)]],
        };
        let mut stats = ConvertStats::default();
        finish(&mut automaton, &mut stats, &ConvertOptions::base());
        assert_eq!(automaton.len(), 2, "spurious record pruned");
        assert!(automaton.sets.iter().all(|s| !s.contains(c)));
        assert_eq!(automaton.validate(), Ok(()));
    }

    #[test]
    fn panicking_worker_releases_the_pool() {
        // One worker panics mid-expansion; the other must terminate (pop
        // returns None) rather than block forever on the condvar.
        let queue = WorkQueue::new();
        queue.push(0);
        queue.push(1);
        let worker = |q: &WorkQueue| {
            while let Some(id) = q.pop() {
                let _task = TaskGuard(q);
                if id == 0 {
                    panic!("boom");
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        };
        let (r1, r2) = std::thread::scope(|s| {
            let h1 = s.spawn(|| worker(&queue));
            let h2 = s.spawn(|| worker(&queue));
            (h1.join(), h2.join())
        });
        assert_eq!(
            [r1.is_err(), r2.is_err()].iter().filter(|&&e| e).count(),
            1,
            "exactly one worker panicked, the other exited cleanly"
        );
    }
}
