//! Property tests for the parallel sharded scan.
//!
//! The load-bearing claim of the SFA-style matcher is *exactness*:
//! matching N shards with speculative parallel scans plus stitching must
//! equal matching the concatenated input sequentially — including
//! matches that span shard boundaries — at every thread count. The same
//! inputs are also checked against the independent naive engine, closing
//! the loop between all three implementations.

use msc_regex::{parser, Regex};
use proptest::prelude::*;

/// Random syntactically valid pattern over a 3-letter alphabet, built
/// constructively so every generated case exercises the matcher (not the
/// parser's error paths). Anchors only at the ends, where they are valid.
fn arb_pattern() -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just(".".to_string()),
        Just("[ab]".to_string()),
        Just("[^c]".to_string()),
        Just("ab".to_string()),
    ];
    let body = leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a}{b}")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}|{b})")),
            inner.clone().prop_map(|a| format!("({a})*")),
            inner.clone().prop_map(|a| format!("({a})+")),
            inner.prop_map(|a| format!("({a})?")),
        ]
    });
    (0u8..4, body)
        .prop_map(|(anchors, b)| {
            let head = if anchors & 1 != 0 { "^" } else { "" };
            let tail = if anchors & 2 != 0 { "$" } else { "" };
            format!("{head}{b}{tail}")
        })
        .boxed()
}

/// Cut `input` into shards at sorted positions derived from `cuts`.
fn shard<'a>(input: &'a [u8], cuts: &[usize]) -> Vec<&'a [u8]> {
    let mut points: Vec<usize> = cuts.iter().map(|&c| c % (input.len() + 1)).collect();
    points.sort_unstable();
    points.dedup();
    let mut shards = Vec::new();
    let mut prev = 0;
    for p in points {
        shards.push(&input[prev..p]);
        prev = p;
    }
    shards.push(&input[prev..]);
    shards
}

proptest! {
    /// Sharded matching at every thread count equals sequential matching
    /// of the concatenation, which equals the naive reference engine.
    #[test]
    fn sharded_equals_concatenated_equals_naive(
        pat in arb_pattern(),
        input in prop::collection::vec(0u8..6, 0..40),
        cuts in prop::collection::vec(0usize..64, 0..6),
    ) {
        // Map the small byte range onto the pattern alphabet plus noise.
        let input: Vec<u8> = input
            .into_iter()
            .map(|b| b"abcxy\n"[b as usize])
            .collect();
        let re = match Regex::new(&pat) {
            Ok(re) => re,
            // A generated pattern can still blow the meta-state cap.
            Err(_) => return Ok(()),
        };
        let sequential = re.find_all(&input);
        prop_assert_eq!(
            re.naive_find_all(&input),
            sequential.iter().map(|m| (m.start, m.end)).collect::<Vec<_>>(),
            "naive vs DFA on pattern {:?}",
            &pat
        );
        let shards = shard(&input, &cuts);
        for threads in [1, 2, 3, 8] {
            prop_assert_eq!(
                re.find_sharded(&shards, threads),
                sequential.clone(),
                "threads={} pattern={:?} cuts at {:?}",
                threads,
                &pat,
                shards.iter().map(|s| s.len()).collect::<Vec<_>>()
            );
        }
    }
}

/// Deterministic regression cases for boundary-spanning matches, kept
/// alongside the property so a proptest seed change cannot lose them.
#[test]
fn boundary_spanning_regressions() {
    for (pat, text, cuts) in [
        ("ab", "xaby", vec![2]),         // match split 1|1
        ("a+b", "aaab", vec![1, 2, 3]),  // greedy run over three cuts
        ("a.*b", "a xx b", vec![3]),     // wildcard across the cut
        ("(ab|ba)+", "abbaab", vec![3]), // alternation re-sync
        ("ab$", "ab", vec![1]),          // end anchor on final shard
        ("^ab", "ab", vec![1]),          // start anchor on first shard
    ] {
        let re = Regex::new(pat).unwrap();
        let shards = shard(text.as_bytes(), &cuts);
        for threads in [1, 2, 8] {
            assert_eq!(
                re.find_sharded(&shards, threads),
                re.find_all(text.as_bytes()),
                "pattern {pat:?} text {text:?} cuts {cuts:?} threads {threads}"
            );
        }
    }
}

/// The parser rejects what it should, end to end through `Regex::new`.
#[test]
fn public_error_surface() {
    for bad in ["a(", "[a", "a**", "*a", "\\"] {
        assert!(Regex::new(bad).is_err(), "{bad:?} must be rejected");
    }
    assert!(parser::parse("a|b|c").is_ok());
}
